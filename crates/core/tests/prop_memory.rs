//! Property tests for the speculative memory machinery: store-forwarding
//! chains (`lsq`) against a byte-level model, and MDB reuse invalidation —
//! a recycled load must never reuse a value a store may have clobbered.

use multipath_core::ids::InstTag;
use multipath_core::lsq::{load_value, StoreEntry, StoreQueue};
use multipath_core::reuse::Mdb;
use multipath_mem::{Asid, Memory};
use multipath_testkit::{prop_assert, prop_assert_eq, prop_test, TestRng};

/// The address window the generators draw from. Small enough that stores
/// and loads collide constantly, far enough from u64::MAX that the model
/// needs no wrap handling.
const BASE: u64 = 0x1000;
const WINDOW: u64 = 48;

fn gen_store(rng: &mut TestRng, tag: u64) -> StoreEntry {
    StoreEntry {
        tag: InstTag(tag),
        addr: BASE + rng.below(WINDOW),
        width: *rng.pick(&[1u8, 4, 8]),
        value: rng.next_u64(),
    }
}

/// Byte-level model of `load_value`: for each loaded byte, the first queue
/// in the chain (self first, then ancestors) holding a visible store that
/// covers the byte wins, and within a queue the youngest such store wins.
/// Otherwise the byte comes from committed memory.
fn model_load(memory: &Memory, chain: &[(&StoreQueue, InstTag)], addr: u64, width: u8) -> u64 {
    let mut bytes = [0u8; 8];
    memory.read_bytes(addr, &mut bytes[..width as usize]);
    for i in 0..width as u64 {
        let byte_addr = addr + i;
        'queues: for &(queue, bound) in chain {
            let mut hit: Option<&StoreEntry> = None;
            for store in queue.older_than(bound) {
                let covers = byte_addr >= store.addr && byte_addr < store.addr + store.width as u64;
                if covers && hit.is_none_or(|h| store.tag > h.tag) {
                    hit = Some(store);
                }
            }
            if let Some(store) = hit {
                bytes[i as usize] = store.value.to_le_bytes()[(byte_addr - store.addr) as usize];
                break 'queues;
            }
        }
    }
    u64::from_le_bytes(bytes)
}

prop_test! {
    /// Random fork chains of up to three store queues, with random age
    /// bounds, forward exactly what the byte-level model predicts for
    /// loads of every width at every offset in the window.
    fn forwarding_chain_matches_byte_model(
        params in |rng: &mut TestRng| (rng.next_u64(), rng.len_in(1..4), rng.len_in(0..10)),
        cases = 32,
    ) {
        let (seed, queues, stores_per_queue) = params;
        let mut rng = TestRng::new(seed);
        let mut memory = Memory::new();
        for i in 0..WINDOW {
            memory.write_u8(BASE + i, rng.next_u64() as u8);
        }
        // Older queues get older tags, like real fork ancestry.
        let mut tag = 0u64;
        let mut sqs: Vec<(StoreQueue, InstTag)> = Vec::new();
        for _ in 0..queues {
            let mut sq = StoreQueue::new();
            for _ in 0..stores_per_queue {
                tag += 1 + rng.below(3);
                sq.insert(gen_store(&mut rng, tag));
            }
            // The visibility bound may cut anywhere in the queue.
            let bound = InstTag(rng.below(tag.max(1) + 4));
            sqs.push((sq, bound));
        }
        // `chain` is self-first; ancestors (older tags) go last.
        let chain: Vec<(&StoreQueue, InstTag)> =
            sqs.iter().rev().map(|(q, b)| (q, *b)).collect();
        for offset in 0..WINDOW - 8 {
            for width in [1u8, 4, 8] {
                let addr = BASE + offset;
                prop_assert_eq!(
                    load_value(&memory, &chain, addr, width),
                    model_load(&memory, &chain, addr, width),
                    "addr {:#x} width {}", addr, width
                );
            }
        }
    }

    /// Squashing a store queue removes exactly the young entries: no
    /// squashed store is ever forwarded, and surviving stores still are.
    fn squashed_stores_never_forward(
        params in |rng: &mut TestRng| (rng.next_u64(), rng.len_in(1..12)),
        cases = 32,
    ) {
        let (seed, n) = params;
        let mut rng = TestRng::new(seed);
        let memory = Memory::new();
        let mut sq = StoreQueue::new();
        let mut tags = Vec::new();
        let mut tag = 0u64;
        for _ in 0..n {
            tag += 1 + rng.below(3);
            tags.push(tag);
            sq.insert(gen_store(&mut rng, tag));
        }
        let cut = InstTag(rng.below(tag + 2));
        sq.squash_from(cut);
        let surviving: Vec<u64> = sq.older_than(InstTag(u64::MAX)).map(|e| e.tag.0).collect();
        let expected: Vec<u64> = tags.iter().copied().filter(|&t| t < cut.0).collect();
        prop_assert_eq!(surviving, expected);
        // Forwarding after the squash equals a queue never holding them.
        let mut clean = StoreQueue::new();
        for e in sq.older_than(InstTag(u64::MAX)) {
            clean.insert(*e);
        }
        for offset in 0..WINDOW - 8 {
            let addr = BASE + offset;
            prop_assert_eq!(
                load_value(&memory, &[(&sq, InstTag(u64::MAX))], addr, 8),
                load_value(&memory, &[(&clean, InstTag(u64::MAX))], addr, 8)
            );
        }
    }

    /// The MDB agrees with a map model under random load/store
    /// interleavings: a load is reusable iff its PC's latest recorded
    /// address matches and no overlapping store intervened. This is the
    /// recycling-safety invariant — a recycled load must never reuse a
    /// value that a store may have changed.
    fn mdb_tracks_model_under_interleaving(
        params in |rng: &mut TestRng| (rng.next_u64(), rng.len_in(1..40)),
        cases = 48,
    ) {
        let (seed, ops) = params;
        let mut rng = TestRng::new(seed);
        // Capacity above the op count: FIFO eviction only ever *drops*
        // reuse opportunities (safe), so the model here checks the exact
        // no-eviction behaviour.
        let mut mdb = Mdb::new(64);
        let asid = Asid(0);
        let pcs: Vec<u64> = (0..6).map(|i| 0x4000 + 4 * i).collect();
        let mut model: Vec<(u64, u64)> = Vec::new(); // (pc, addr), latest wins
        for _ in 0..ops {
            if rng.chance(0.6) {
                let pc = *rng.pick(&pcs);
                let addr = BASE + rng.below(WINDOW);
                mdb.record_load(asid, pc, addr);
                model.retain(|&(p, _)| p != pc);
                model.push((pc, addr));
            } else {
                let addr = BASE + rng.below(WINDOW);
                let width = *rng.pick(&[1u8, 4, 8]);
                mdb.store_invalidate(asid, addr, width);
                // A load entry is an 8-byte window starting at its address.
                model.retain(|&(_, la)| {
                    addr + width as u64 <= la || la + 8 <= addr
                });
            }
            for &pc in &pcs {
                for probe in [BASE, BASE + rng.below(WINDOW)] {
                    let expected = model.iter().any(|&(p, a)| p == pc && a == probe);
                    prop_assert_eq!(
                        mdb.reusable(asid, pc, probe),
                        expected,
                        "pc {:#x} probe {:#x}", pc, probe
                    );
                }
            }
        }
    }

    /// Any store overlapping a recorded load's window kills reuse for that
    /// load, whatever the widths and relative alignment.
    fn overlapping_store_always_kills_reuse(
        params in |rng: &mut TestRng| {
            (rng.below(WINDOW), *rng.pick(&[1u8, 4, 8]), rng.in_irange(-9..10))
        },
        cases = 64,
    ) {
        let (load_off, store_width, skew) = params;
        let load_addr = BASE + load_off;
        let store_addr = load_addr.wrapping_add_signed(skew);
        let mut mdb = Mdb::new(8);
        let asid = Asid(0);
        mdb.record_load(asid, 0x5000, load_addr);
        mdb.store_invalidate(asid, store_addr, store_width);
        let overlaps = store_addr < load_addr + 8 && load_addr < store_addr + store_width as u64;
        prop_assert_eq!(
            mdb.reusable(asid, 0x5000, load_addr),
            !overlaps,
            "load {:#x} store {:#x}+{}", load_addr, store_addr, store_width
        );
        if overlaps {
            prop_assert!(mdb.is_empty());
        }
    }
}
