//! Lock-step architectural validation: the committed instruction stream of
//! every configuration must exactly match the reference emulator.

use multipath_core::{Features, ProgId, SimConfig, Simulator};
use multipath_workload::{kernels, Benchmark};

fn lockstep(bench: Benchmark, features: Features, commits: u64) {
    let mut sim = Simulator::new(
        SimConfig::big_2_16().with_features(features),
        vec![kernels::build(bench, 1)],
    );
    sim.attach_reference(ProgId(0));
    let stats = sim.run(commits, commits * 50);
    assert!(
        stats.committed >= commits,
        "{bench}/{}: starved ({} committed in {} cycles)",
        features.label(),
        stats.committed,
        stats.cycles
    );
}

#[test]
fn lockstep_all_kernels_full_architecture() {
    for bench in Benchmark::ALL {
        lockstep(bench, Features::rec_rs_ru(), 4_000);
    }
}

#[test]
fn lockstep_all_features_on_branchy_kernels() {
    for features in Features::all_six() {
        lockstep(Benchmark::Go, features, 4_000);
        lockstep(Benchmark::Vortex, features, 4_000);
    }
}

#[test]
fn lockstep_rec_without_respawn() {
    lockstep(Benchmark::Compress, Features::rec(), 6_000);
    lockstep(Benchmark::Li, Features::rec_ru(), 6_000);
}
