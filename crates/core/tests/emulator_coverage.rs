//! Reference-emulator coverage: every ISA operation class executes
//! correctly in isolation, checked against hand-computed results. The
//! differential tests then extend this trust to the pipeline.

use multipath_core::emulator::Emulator;
use multipath_isa::regs::*;
use multipath_workload::{Assembler, DataBuilder, Program};

fn run(build: impl FnOnce(&mut Assembler, &mut DataBuilder)) -> Emulator {
    let mut a = Assembler::new();
    let mut d = DataBuilder::new(0x20_0000);
    build(&mut a, &mut d);
    let program = Program {
        name: "cov".to_owned(),
        text_base: 0x1_0000,
        text: a.assemble(0x1_0000).unwrap(),
        data: vec![d.build()],
        entry: 0x1_0000,
        initial_sp: 0x7f_0000,
    };
    let mut emu = Emulator::new(&program);
    let mut steps = 0;
    while !emu.halted() {
        emu.step();
        steps += 1;
        assert!(steps < 100_000, "runaway");
    }
    emu
}

#[test]
fn byte_and_word_memory_ops() {
    let emu = run(|a, d| {
        d.u64_array("x", [0x1122_3344_5566_7788]);
        let x = d.address_of("x") as i32;
        a.li(R16, x);
        a.ldbu(R1, 0, R16); // 0x88
        a.ldbu(R2, 7, R16); // 0x11
        a.ldl(R3, 4, R16); // 0x11223344
        a.stb(R1, 8, R16);
        a.ldbu(R4, 8, R16); // 0x88 back
        a.stl(R3, 16, R16);
        a.ldl(R5, 16, R16);
        a.halt();
    });
    assert_eq!(emu.int_reg(1), 0x88);
    assert_eq!(emu.int_reg(2), 0x11);
    assert_eq!(emu.int_reg(3), 0x1122_3344);
    assert_eq!(emu.int_reg(4), 0x88);
    assert_eq!(emu.int_reg(5), 0x1122_3344);
}

#[test]
fn floating_point_pipeline() {
    let emu = run(|a, d| {
        d.f64_array("v", [2.5, -4.0, 0.5]);
        let v = d.address_of("v") as i32;
        a.li(R16, v);
        a.ldt(F1, 0, R16);
        a.ldt(F2, 8, R16);
        a.ldt(F3, 16, R16);
        a.addt(F4, F1, F2); // -1.5
        a.mult(F5, F4, F3); // -0.75
        a.subt(F6, F5, F2); // 3.25
        a.divt(F7, F6, F3); // 6.5
        a.stt(F7, 24, R16);
        a.cmptlt(R1, F5, F6); // -0.75 < 3.25 → 1
        a.cmpteq(R2, F3, F3); // 1
        a.cmptle(R3, F6, F5); // 0
        a.cvttq(R4, F7); // 6
        a.cvtqt(F8, R4);
        a.stt(F8, 32, R16);
        a.halt();
    });
    assert_eq!(emu.int_reg(1), 1);
    assert_eq!(emu.int_reg(2), 1);
    assert_eq!(emu.int_reg(3), 0);
    assert_eq!(emu.int_reg(4), 6);
    assert_eq!(emu.memory().read_f64(0x20_0000 + 24), 6.5);
    assert_eq!(emu.memory().read_f64(0x20_0000 + 32), 6.0);
}

#[test]
fn indirect_jump_through_register() {
    let emu = run(|a, _| {
        a.li(R1, 0); // result flag
                     // Compute the address of "target" and jump to it.
        a.li(R2, 0x1_0000 + 6 * 4); // instruction index 6 (the label below)
        a.jmp(R2);
        a.li(R1, 111); // skipped
        a.halt(); //     skipped
                  // index 6:
        a.li(R1, 222);
        a.halt();
    });
    assert_eq!(emu.int_reg(1), 222);
}

#[test]
fn nested_calls_preserve_linkage() {
    let emu = run(|a, d| {
        d.zeros_u64("out", 1);
        let out = d.address_of("out") as i32;
        a.li(R16, out);
        a.li(R30, 0x7f_0000);
        a.li(R9, 0);
        a.jsr("outer");
        a.stq(R9, 0, R16);
        a.halt();
        a.label("outer");
        a.subi(R30, R30, 8);
        a.stq(R26, 0, R30);
        a.addi(R9, R9, 1);
        a.jsr("inner");
        a.addi(R9, R9, 100); // after inner returns
        a.ldq(R26, 0, R30);
        a.addi(R30, R30, 8);
        a.ret();
        a.label("inner");
        a.addi(R9, R9, 10);
        a.ret();
    });
    assert_eq!(emu.int_reg(9), 111);
    assert_eq!(emu.memory().read_u64(0x20_0000), 111);
}

#[test]
fn zero_register_semantics() {
    let emu = run(|a, _| {
        // Writes to r31 vanish; reads are zero.
        a.li(R1, 55);
        a.add(R31, R1, R1); // discarded
        a.add(R2, R31, R31); // 0
        a.addi(R3, R31, 42); // 42
        a.halt();
    });
    assert_eq!(emu.int_reg(31), 0);
    assert_eq!(emu.int_reg(2), 0);
    assert_eq!(emu.int_reg(3), 42);
}

#[test]
fn retired_counts_and_pc_tracking() {
    let mut a = Assembler::new();
    a.li(R1, 3);
    a.label("l");
    a.subi(R1, R1, 1);
    a.bne(R1, "l");
    a.halt();
    let program = Program {
        name: "pc".to_owned(),
        text_base: 0x1_0000,
        text: a.assemble(0x1_0000).unwrap(),
        data: vec![],
        entry: 0x1_0000,
        initial_sp: 0,
    };
    let mut emu = Emulator::new(&program);
    assert_eq!(emu.pc(), 0x1_0000);
    while !emu.halted() {
        emu.step();
    }
    // li + 3×(subi+bne) + halt = 8 retired.
    assert_eq!(emu.retired(), 8);
}
