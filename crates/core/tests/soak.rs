// One-off soak: long runs under debug assertions (register conservation
// checked every 4096 cycles).
use multipath_core::{Features, SimConfig, Simulator};
use multipath_workload::{kernels, mix, Benchmark};

#[test]
#[ignore]
fn soak() {
    for b in Benchmark::ALL {
        let mut sim = Simulator::new(
            SimConfig::big_2_16().with_features(Features::rec_rs_ru()),
            vec![kernels::build(b, 99)],
        );
        let s = sim.run(150_000, 4_000_000);
        println!(
            "{b}: {} committed in {} cycles (IPC {:.2})",
            s.committed,
            s.cycles,
            s.ipc()
        );
        assert!(s.committed >= 150_000, "{b} starved");
    }
    let mut sim = Simulator::new(
        SimConfig::big_2_16().with_features(Features::rec_rs_ru()),
        mix::programs(&Benchmark::ALL, 3),
    );
    let s = sim.run(400_000, 4_000_000);
    println!(
        "8-program soak: {} committed (IPC {:.2})",
        s.committed,
        s.ipc()
    );
    assert!(s.committed >= 400_000);
}
