//! Regression tests for address-space wrap-around in store-to-load
//! forwarding. Wrong-path code computes wild addresses, including ones
//! near `u64::MAX` where `start + width` overflows; these used to panic
//! in debug builds or silently skip overlap in release builds.

use multipath_core::lsq::{load_value, StoreEntry, StoreQueue};
use multipath_core::InstTag;
use multipath_mem::Memory;

fn st(tag: u64, addr: u64, width: u8, value: u64) -> StoreEntry {
    StoreEntry {
        tag: InstTag(tag),
        addr,
        width,
        value,
    }
}

#[test]
fn wild_address_load_near_u64_max_does_not_panic() {
    let mem = Memory::new();
    let mut sq = StoreQueue::new();
    sq.insert(st(1, u64::MAX - 1, 8, 0x1122_3344_5566_7788));
    // A wrong-path load whose 8-byte window ends past u64::MAX. The store
    // starts two bytes into the window and wraps with it: six of its
    // bytes land at offsets 2..8, the rest fall outside.
    let v = load_value(&mem, &[(&sq, InstTag(9))], u64::MAX - 3, 8);
    assert_eq!(v, 0x3344_5566_7788_0000);
}

#[test]
fn store_at_exact_top_of_address_space() {
    let mem = Memory::new();
    let mut sq = StoreQueue::new();
    sq.insert(st(1, u64::MAX, 1, 0xab));
    let v = load_value(&mem, &[(&sq, InstTag(9))], u64::MAX - 7, 8);
    assert_eq!(v, 0xab00_0000_0000_0000);
}

#[test]
fn wrapping_store_aliases_low_addresses_like_memory() {
    // Addresses wrap per byte, matching `Memory::write_bytes`: a store
    // whose range crosses u64::MAX writes its tail at the bottom of the
    // address space, and speculative forwarding must see the same bytes
    // the store would commit.
    let mut sq = StoreQueue::new();
    sq.insert(st(1, u64::MAX - 2, 8, u64::MAX));
    let forwarded = load_value(&Memory::new(), &[(&sq, InstTag(9))], 0, 8);

    let mut mem = Memory::new();
    mem.write_bytes(u64::MAX - 2, &u64::MAX.to_le_bytes());
    let committed = load_value(&mem, &[], 0, 8);

    assert_eq!(forwarded, committed);
    assert_eq!(forwarded, 0x0000_00ff_ffff_ffff);
}
