//! Integration tests for the observability layer: the Chrome-trace
//! (Perfetto) exporter, the bounded event ring, per-interval time series
//! on a real kernel, and the zero-cost `NullSink` path.
//!
//! The exported JSON is validated by actually parsing it with the
//! workspace's own `multipath_testkit::Json` parser — the same guarantee
//! an external viewer gets, with no external crates involved.

use multipath_core::{
    Event, EventFilter, EventKind, Features, NullSink, ProbeConfig, ProbeSink, RingSink, SimConfig,
    Simulator, Stats,
};
use multipath_testkit::Json;
use multipath_workload::{kernels, Benchmark};
use std::collections::BTreeMap;

fn traced_run(bench: Benchmark, commits: u64) -> Simulator {
    let program = kernels::build(bench, 1);
    let mut sim = Simulator::new(
        SimConfig::big_2_16().with_features(Features::rec_rs_ru()),
        vec![program],
    );
    sim.enable_probes(ProbeConfig {
        ring: Some(256),
        interval: Some(50),
        spans: true,
        explain: true,
        filter: EventFilter::all(),
    });
    sim.run(commits, commits * 200);
    sim.finish_probes();
    sim
}

#[test]
fn chrome_trace_parses_and_covers_every_context() {
    let mut sim = traced_run(Benchmark::Compress, 2_000);
    let contexts = sim.config().contexts;
    let probes = sim.take_probes().expect("probes enabled");
    let text = probes
        .spans
        .as_ref()
        .expect("span recorder on")
        .chrome_trace_json(contexts);

    let doc = Json::parse(&text).expect("exporter emits valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    // Track naming metadata: every context gets a role track and a
    // recycle-stream track, named up front.
    let names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
        .filter_map(|e| e.get("args").and_then(|a| a.get("name")))
        .filter_map(Json::as_str)
        .collect();
    for ctx in 0..contexts {
        assert!(names.iter().any(|n| *n == format!("ctx{ctx} role")));
        assert!(names.iter().any(|n| *n == format!("ctx{ctx} stream")));
    }

    // A busy recycling run exercises both span tracks and instants.
    let phases: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("ph").and_then(Json::as_str))
        .collect();
    assert!(phases.contains(&"X"), "no complete spans emitted");
    assert!(phases.contains(&"i"), "no instant events emitted");
}

#[test]
fn chrome_trace_spans_are_monotone_and_disjoint_per_track() {
    let mut sim = traced_run(Benchmark::Go, 2_000);
    let contexts = sim.config().contexts;
    let probes = sim.take_probes().expect("probes enabled");
    let text = probes
        .spans
        .as_ref()
        .expect("span recorder on")
        .chrome_trace_json(contexts);
    let doc = Json::parse(&text).expect("valid JSON");
    let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();

    // Group complete spans by track id; each track is one context's role
    // (or stream) lane, so its spans must tile time without overlapping.
    let mut tracks: BTreeMap<u64, Vec<(u64, u64)>> = BTreeMap::new();
    for e in events {
        if e.get("ph").and_then(Json::as_str) != Some("X") {
            continue;
        }
        let tid = e.get("tid").and_then(Json::as_u64).expect("tid");
        let ts = e.get("ts").and_then(Json::as_u64).expect("ts");
        let dur = e.get("dur").and_then(Json::as_u64).expect("dur");
        assert!(dur > 0, "zero-length span on track {tid} at {ts}");
        tracks.entry(tid).or_default().push((ts, ts + dur));
    }
    assert!(!tracks.is_empty());
    for (tid, spans) in &tracks {
        for w in spans.windows(2) {
            let ((s0, e0), (s1, _)) = (w[0], w[1]);
            assert!(
                s0 <= s1,
                "track {tid}: span starts go backwards ({s0} after {s1})"
            );
            assert!(
                e0 <= s1,
                "track {tid}: spans overlap ([{s0},{e0}) and [{s1},..))"
            );
        }
    }

    // Instants carry the scope marker Perfetto expects and sit inside the
    // traced window.
    let horizon = tracks
        .values()
        .flat_map(|s| s.iter().map(|&(_, e)| e))
        .max()
        .unwrap();
    for e in events {
        if e.get("ph").and_then(Json::as_str) != Some("i") {
            continue;
        }
        assert_eq!(e.get("s").and_then(Json::as_str), Some("t"));
        let ts = e.get("ts").and_then(Json::as_u64).expect("ts");
        assert!(
            ts <= horizon,
            "instant at {ts} beyond span horizon {horizon}"
        );
    }
}

#[test]
fn ring_sink_is_bounded_and_respects_the_filter() {
    // Only commit events pass the filter; the ring keeps the newest 32.
    let filter = EventFilter::parse("commit").expect("valid spec");
    let mut ring = RingSink::new(32, filter);
    let stats = Stats::default();
    for cycle in 0..500u64 {
        let kind = if cycle % 2 == 0 {
            EventKind::Commit {
                class: multipath_core::InstClass::IntAlu,
            }
        } else {
            EventKind::PregStall
        };
        ring.event(&Event {
            cycle,
            ctx: 0,
            pc: 0x1000 + cycle,
            kind,
        });
        ring.cycle_end(cycle, &stats, &[]);
    }
    assert_eq!(ring.len(), 32);
    assert_eq!(ring.dropped, 250 - 32);
    for ev in ring.events() {
        assert!(matches!(ev.kind, EventKind::Commit { .. }));
        // Newest-32 window of the 250 accepted events.
        assert!(ev.cycle >= 436 && ev.cycle % 2 == 0);
    }
}

#[test]
fn interval_series_matches_final_stats_on_a_kernel() {
    let mut sim = traced_run(Benchmark::Vortex, 3_000);
    let finals = sim.stats().counters();
    let probes = sim.take_probes().expect("probes enabled");
    let series = probes.interval.as_ref().expect("interval sink on");
    assert!(series.intervals().len() > 2, "run too short to test tiling");
    assert_eq!(series.counter_sums(), finals);

    // The class histograms agree with the aggregate counters they split.
    let stats = sim.stats();
    let sum = |f: fn(&multipath_core::Interval) -> &[u64; 7]| -> u64 {
        series.intervals().iter().flat_map(|iv| f(iv).iter()).sum()
    };
    assert_eq!(sum(|iv| &iv.renamed_by_class), stats.renamed);
    assert_eq!(sum(|iv| &iv.recycled_by_class), stats.recycled);
    assert_eq!(sum(|iv| &iv.reused_by_class), stats.reused);
    assert_eq!(sum(|iv| &iv.committed_by_class), stats.committed);
}

#[test]
fn disabled_probes_change_nothing_and_null_sink_is_inert() {
    // Two identical runs, one with probes on: simulated behaviour must be
    // bit-for-bit identical (probes observe, never perturb).
    let run = |probed: bool| {
        let program = kernels::build(Benchmark::Li, 1);
        let mut sim = Simulator::new(
            SimConfig::big_2_16().with_features(Features::rec_rs_ru()),
            vec![program],
        );
        if probed {
            sim.enable_probes(ProbeConfig::default());
        }
        sim.run(1_500, 150_000);
        sim.finish_probes();
        sim.stats().counters()
    };
    assert_eq!(run(false), run(true));

    // The NullSink accepts everything and records nothing, by type.
    let mut sink = NullSink;
    sink.event(&Event {
        cycle: 1,
        ctx: 0,
        pc: 0,
        kind: EventKind::PregStall,
    });
    sink.cycle_end(1, &Stats::default(), &[]);
}
