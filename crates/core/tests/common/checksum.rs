use multipath_isa::regs::*;
use multipath_workload::{Assembler, DataBuilder, Program, SplitMix64};

/// A branchy, memory-heavy checksum kernel with hard-to-predict hammocks,
/// a small inner loop (to exercise backward-branch recycling), and
/// call/return (to exercise the RAS) — then halts.
fn checksum_program(seed: u64) -> Program {
    let mut rng = SplitMix64::new(seed);
    let mut data = DataBuilder::new(0x10_0000);
    data.u64_array("input", (0..256).map(|_| rng.next_u64()));
    data.zeros_u64("out", 64);
    let input = data.address_of("input") as i32;
    let out = data.address_of("out") as i32;

    let mut a = Assembler::new();
    a.li(R16, input);
    a.li(R17, out);
    a.li(R30, 0x7f_0000);
    a.li(R9, 0); // checksum
    a.li(R2, 0); // index
    a.br("main");

    // mix(r4) -> r4: a little function with an internal branch.
    a.label("mix");
    a.andi(R5, R4, 1);
    a.beq(R5, "mix_even");
    a.muli(R4, R4, 31);
    a.ret();
    a.label("mix_even");
    a.srli(R4, R4, 1);
    a.addi(R4, R4, 17);
    a.ret();

    a.label("main");
    a.li(R3, 512); // iterations

    a.label("loop");
    a.andi(R4, R2, 255);
    a.slli(R4, R4, 3);
    a.add(R5, R16, R4);
    a.ldq(R4, 0, R5);
    // Hard hammock on a data bit.
    a.andi(R6, R4, 4);
    a.beq(R6, "low");
    a.xor(R9, R9, R4);
    a.jsr("mix");
    a.add(R9, R9, R4);
    a.br("join");
    a.label("low");
    a.add(R9, R9, R4);
    a.slli(R7, R9, 1);
    a.xor(R9, R9, R7);
    a.label("join");
    // Second biased branch: periodic spill.
    a.andi(R6, R2, 7);
    a.bne(R6, "no_spill");
    a.andi(R7, R2, 63);
    a.slli(R7, R7, 3);
    a.add(R7, R17, R7);
    a.stq(R9, 0, R7);
    a.label("no_spill");
    a.addi(R2, R2, 1);
    a.subi(R3, R3, 1);
    a.bne(R3, "loop");

    // Final: store the checksum at out[63].
    a.stq(R9, 63 * 8, R17);
    a.halt();

    let text = a.assemble(0x1_0000).expect("assembles");
    Program {
        name: "checksum".to_owned(),
        text_base: 0x1_0000,
        text,
        data: vec![data.build()],
        entry: 0x1_0000,
        initial_sp: 0x7f_0000,
    }
}

