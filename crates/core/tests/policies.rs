//! Alternate-path policy semantics (Section 5.2), observed end to end.

use multipath_core::{AltPolicy, Features, SimConfig, Simulator, Stats};
use multipath_workload::{kernels, micro, Benchmark};

fn run(policy: AltPolicy, commits: u64) -> Stats {
    let config = SimConfig::big_2_16()
        .with_features(Features::rec_rs_ru())
        .with_alt_policy(policy);
    let mut sim = Simulator::new(config, vec![kernels::build(Benchmark::Go, 4)]);
    sim.run(commits, commits * 200).clone()
}

#[test]
fn policy_labels_round_trip_semantics() {
    assert_eq!(AltPolicy::Stop(8).limit(), 8);
    assert!(!AltPolicy::Stop(8).fetch_after_resolve());
    assert!(!AltPolicy::Stop(8).execute_after_resolve());
    assert!(AltPolicy::FetchOnly(16).fetch_after_resolve());
    assert!(!AltPolicy::FetchOnly(16).execute_after_resolve());
    assert!(AltPolicy::NoStop(32).fetch_after_resolve());
    assert!(AltPolicy::NoStop(32).execute_after_resolve());
}

#[test]
fn larger_limits_fetch_more_alternate_instructions() {
    let small = run(AltPolicy::Stop(8), 10_000);
    let large = run(AltPolicy::NoStop(32), 10_000);
    // More alternate work in flight ⇒ more instructions renamed that never
    // commit.
    let waste = |s: &Stats| (s.renamed - s.committed) as f64 / s.committed as f64;
    assert!(
        waste(&large) > waste(&small),
        "nostop-32 waste {:.2} should exceed stop-8 waste {:.2}",
        waste(&large),
        waste(&small)
    );
}

#[test]
fn fetch_only_builds_traces_without_executing() {
    // fetch-N renames post-resolution instructions but never dispatches
    // them; they are still legitimate recycle fodder, so recycling stays
    // healthy while wrong-path *execution* falls relative to nostop-N.
    let fetch = run(AltPolicy::FetchOnly(32), 10_000);
    let nostop = run(AltPolicy::NoStop(32), 10_000);
    assert!(fetch.recycled > 0);
    // Executed-but-never-committed work is strictly smaller under
    // fetch-only for the same limit; renamed totals are comparable.
    let executed_waste = |s: &Stats| s.squashed + (s.renamed - s.committed - s.squashed) / 2;
    assert!(
        executed_waste(&fetch) <= executed_waste(&nostop),
        "fetch-32 should not execute more wrong-path work than nostop-32"
    );
}

#[test]
fn all_policies_preserve_architecture() {
    // The policy only shapes speculation; lock-step every policy briefly.
    for policy in AltPolicy::figure5_sweep() {
        let config = SimConfig::big_2_16()
            .with_features(Features::rec_rs_ru())
            .with_alt_policy(policy);
        let program = micro::build(
            &micro::MicroParams {
                loop_body: 24,
                ..Default::default()
            },
            9,
        );
        let mut sim = Simulator::new(config, vec![program]);
        sim.attach_reference(multipath_core::ProgId(0));
        let stats = sim.run(3_000, 600_000);
        assert!(stats.committed >= 3_000, "{}: starved", policy.label());
    }
}
