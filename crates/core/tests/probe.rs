use multipath_core::{Features, ProgId, SimConfig, Simulator};

include!("common/checksum.rs");

#[test]
#[ignore]
fn probe() {
    let mut sim = Simulator::new(
        SimConfig::big_2_16().with_features(Features::rec_ru()),
        vec![checksum_program(7)],
    );
    sim.attach_reference(ProgId(0));
    sim.run(u64::MAX, 400_000);
    assert!(sim.program_finished(ProgId(0)));
    println!("finished clean");
}
