//! Architectural correctness: every feature configuration must compute
//! exactly the same results as plain SMT. Speculation, multipath
//! execution, recycling, and reuse are microarchitectural — any difference
//! in committed memory state is a simulator bug.

use multipath_core::{Features, ProgId, SimConfig, Simulator};

include!("common/checksum.rs");

fn run_and_dump(features: Features, seed: u64) -> Vec<u64> {
    let mut sim = Simulator::new(
        SimConfig::big_2_16().with_features(features),
        vec![checksum_program(seed)],
    );
    sim.run(u64::MAX, 400_000);
    assert!(
        sim.program_finished(ProgId(0)),
        "{}: did not finish (cycle {})",
        features.label(),
        sim.cycle()
    );
    let mem = sim.program_memory(ProgId(0));
    (0..64)
        .map(|i| mem.read_u64(0x10_0000 + 256 * 8 + i * 8))
        .collect()
}

#[test]
fn all_configurations_compute_identical_results() {
    for seed in [1, 7] {
        let reference = run_and_dump(Features::smt(), seed);
        assert_ne!(reference[63], 0, "checksum must be non-trivial");
        for features in Features::all_six() {
            let got = run_and_dump(features, seed);
            assert_eq!(
                got,
                reference,
                "{} diverged from SMT (seed {seed})",
                features.label()
            );
        }
    }
}

#[test]
fn machine_models_compute_identical_results() {
    let reference = run_and_dump(Features::smt(), 3);
    for config in [
        SimConfig::big_1_8(),
        SimConfig::small_2_8(),
        SimConfig::small_1_8(),
    ] {
        let mut sim = Simulator::new(
            config.with_features(Features::rec_rs_ru()),
            vec![checksum_program(3)],
        );
        sim.run(u64::MAX, 600_000);
        assert!(sim.program_finished(ProgId(0)));
        let mem = sim.program_memory(ProgId(0));
        let got: Vec<u64> = (0..64)
            .map(|i| mem.read_u64(0x10_0000 + 256 * 8 + i * 8))
            .collect();
        assert_eq!(got, reference);
    }
}
