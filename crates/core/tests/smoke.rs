//! End-to-end smoke tests: kernels run to a commit budget under every
//! feature configuration, and basic sanity properties hold.

use multipath_core::{Features, SimConfig, Simulator};
use multipath_workload::{kernels, mix, Benchmark};

fn run(features: Features, bench: Benchmark, budget: u64) -> multipath_core::Stats {
    let program = kernels::build(bench, 1);
    let config = SimConfig::big_2_16().with_features(features);
    let mut sim = Simulator::new(config, vec![program]);
    sim.run(budget, 400_000).clone()
}

#[test]
fn compress_runs_under_all_six_configs() {
    for features in Features::all_six() {
        let stats = run(features, Benchmark::Compress, 5_000);
        assert!(
            stats.committed >= 5_000,
            "{}: committed {} in {} cycles",
            features.label(),
            stats.committed,
            stats.cycles
        );
        assert!(
            stats.ipc() > 0.1,
            "{}: ipc {}",
            features.label(),
            stats.ipc()
        );
    }
}

#[test]
fn every_kernel_runs_under_full_architecture() {
    for bench in Benchmark::ALL {
        let stats = run(Features::rec_rs_ru(), bench, 3_000);
        assert!(
            stats.committed >= 3_000,
            "{bench}: committed {} in {} cycles",
            stats.committed,
            stats.cycles
        );
    }
}

#[test]
fn recycling_stats_only_with_recycling_enabled() {
    let smt = run(Features::smt(), Benchmark::Compress, 3_000);
    assert_eq!(smt.recycled, 0);
    assert_eq!(smt.forks, 0);
    let tme = run(Features::tme(), Benchmark::Go, 3_000);
    assert_eq!(tme.recycled, 0);
    assert!(tme.forks > 0, "go must fork under TME");
    let rec = run(Features::rec_rs_ru(), Benchmark::Compress, 5_000);
    assert!(rec.recycled > 0, "compress must recycle");
}

#[test]
fn multiprogram_runs() {
    let programs = mix::programs(&[Benchmark::Compress, Benchmark::Gcc], 3);
    let config = SimConfig::big_2_16().with_features(Features::rec_rs_ru());
    let mut sim = Simulator::new(config, programs);
    let stats = sim.run(6_000, 400_000);
    assert!(stats.committed >= 6_000);
    assert!(
        stats.committed_per_program.iter().all(|&c| c > 0),
        "both programs progress"
    );
}
