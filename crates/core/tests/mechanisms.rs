//! Mechanism-level tests: each of the paper's hardware mechanisms is
//! exercised by a purpose-built program and observed through statistics.

use multipath_core::{AltPolicy, Features, ProgId, SimConfig, Simulator, Stats};
use multipath_isa::regs::*;
use multipath_workload::{Assembler, DataBuilder, Program, SplitMix64};

fn program_with(build: impl FnOnce(&mut Assembler, &mut DataBuilder)) -> Program {
    let mut asm = Assembler::new();
    let mut data = DataBuilder::new(0x10_0000);
    build(&mut asm, &mut data);
    Program {
        name: "mech".to_owned(),
        text_base: 0x1_0000,
        text: asm.assemble(0x1_0000).expect("assembles"),
        data: vec![data.build()],
        entry: 0x1_0000,
        initial_sp: 0x7f_0000,
    }
}

/// An endless loop with one genuinely unpredictable branch (random data)
/// and a short hammock that re-merges.
fn hard_hammock_loop(seed: u64) -> Program {
    let mut rng = SplitMix64::new(seed);
    program_with(|a, d| {
        d.u64_array("bits", (0..1024).map(|_| rng.next_u64()));
        let bits = d.address_of("bits") as i32;
        a.li(R16, bits);
        a.li(R2, 0);
        a.li(R9, 0);
        a.label("loop");
        a.andi(R4, R2, 1023);
        a.slli(R4, R4, 3);
        a.add(R4, R16, R4);
        a.ldq(R5, 0, R4);
        a.andi(R6, R5, 1);
        a.beq(R6, "other"); // ~50% taken, unlearnable
        a.add(R9, R9, R5);
        a.xori(R9, R9, 0x11);
        a.br("join");
        a.label("other");
        a.sub(R9, R9, R5);
        a.addi(R9, R9, 7);
        a.label("join");
        a.addi(R2, R2, 1);
        a.br("loop");
    })
}

fn run(p: Program, features: Features, policy: AltPolicy, commits: u64) -> Stats {
    let config = SimConfig::big_2_16()
        .with_features(features)
        .with_alt_policy(policy);
    let mut sim = Simulator::new(config, vec![p]);
    sim.run(commits, commits * 200).clone()
}

#[test]
fn tme_covers_mispredictions_on_unpredictable_branches() {
    let stats = run(
        hard_hammock_loop(3),
        Features::tme(),
        AltPolicy::Stop(8),
        10_000,
    );
    assert!(
        stats.forks > 100,
        "the hard branch must fork ({} forks)",
        stats.forks
    );
    assert!(stats.mispredicts > 100);
    assert!(
        stats.pct_miss_covered() > 40.0,
        "a single hot branch with seven spares should be covered often, got {:.1}%",
        stats.pct_miss_covered()
    );
    assert_eq!(stats.recycled, 0);
}

#[test]
fn smt_never_forks() {
    let stats = run(
        hard_hammock_loop(3),
        Features::smt(),
        AltPolicy::Stop(8),
        5_000,
    );
    assert_eq!(stats.forks, 0);
    assert_eq!(stats.mispredicts_covered, 0);
    assert_eq!(stats.merges, 0);
}

#[test]
fn backward_branch_recycling_kicks_in_on_tight_loops() {
    // A loop with no unpredictable branches at all: the only recycle
    // source is the thread's own previous iteration.
    let p = program_with(|a, d| {
        d.zeros_u64("out", 8);
        let out = d.address_of("out") as i32;
        a.li(R16, out);
        a.li(R9, 1);
        a.label("loop");
        a.addi(R9, R9, 3);
        a.slli(R4, R9, 1);
        a.xor(R9, R9, R4);
        a.andi(R9, R9, 0xfff);
        a.stq(R9, 0, R16);
        a.br("loop");
    });
    let stats = run(p, Features::rec_rs_ru(), AltPolicy::Stop(8), 10_000);
    assert!(
        stats.back_merges > 50,
        "tight loop should self-recycle: {}",
        stats.back_merges
    );
    assert!(
        stats.pct_recycled() > 30.0,
        "got {:.1}%",
        stats.pct_recycled()
    );
}

#[test]
fn respawning_reactivates_inactive_paths() {
    let stats = run(
        hard_hammock_loop(5),
        Features::rec_rs(),
        AltPolicy::Stop(8),
        15_000,
    );
    assert!(
        stats.respawns > 20,
        "hot single-site forking should respawn: {}",
        stats.respawns
    );
    assert!(stats.forks_respawned > 0);
    // Without RS the same workload respawns nothing.
    let no_rs = run(
        hard_hammock_loop(5),
        Features::rec(),
        AltPolicy::Stop(8),
        15_000,
    );
    assert_eq!(no_rs.respawns, 0);
    assert!(
        no_rs.forks_suppressed > 0,
        "REC must suppress duplicate-start forks instead"
    );
}

#[test]
fn reuse_fires_when_operands_are_genuinely_unchanged() {
    // The alternate side computes purely from a loop-invariant register,
    // so a later merge of that trace can reuse the values.
    let mut rng = SplitMix64::new(11);
    let p = program_with(|a, d| {
        d.u64_array("bits", (0..1024).map(|_| rng.next_u64()));
        let bits = d.address_of("bits") as i32;
        a.li(R16, bits);
        a.li(R17, 12345); // loop-invariant operand
        a.li(R2, 0);
        a.li(R9, 0);
        a.label("loop");
        a.andi(R4, R2, 1023);
        a.slli(R4, R4, 3);
        a.add(R4, R16, R4);
        a.ldq(R5, 0, R4);
        a.andi(R6, R5, 1);
        a.beq(R6, "other");
        // Taken side: invariant-only computation (reusable when this
        // trace is recycled).
        a.slli(R7, R17, 2);
        a.xori(R8, R17, 0x3c);
        a.add(R9, R9, R7);
        a.br("join");
        a.label("other");
        a.srli(R7, R17, 1);
        a.addi(R8, R17, 9);
        a.add(R9, R9, R8);
        a.label("join");
        a.addi(R2, R2, 1);
        a.br("loop");
    });
    let stats = run(p, Features::rec_rs_ru(), AltPolicy::Stop(8), 20_000);
    assert!(stats.reused > 0, "invariant hammock sides should be reused");
    // And reuse is indeed off without the RU feature.
    let no_ru = run(
        hard_hammock_loop(11),
        Features::rec_rs(),
        AltPolicy::Stop(8),
        10_000,
    );
    assert_eq!(no_ru.reused, 0);
}

#[test]
fn alternate_policies_bound_alternate_work() {
    // Under stop-8, each forked path holds at most 8 instructions, so the
    // wrong-path (squashed + never-committed) volume is bounded relative
    // to nostop-32 on the same workload.
    let stop = run(
        hard_hammock_loop(7),
        Features::tme(),
        AltPolicy::Stop(8),
        10_000,
    );
    let nostop = run(
        hard_hammock_loop(7),
        Features::tme(),
        AltPolicy::NoStop(32),
        10_000,
    );
    let waste = |s: &Stats| (s.renamed - s.committed) as f64 / s.committed as f64;
    assert!(
        waste(&stop) < waste(&nostop),
        "stop-8 waste {:.2} must undercut nostop-32 waste {:.2}",
        waste(&stop),
        waste(&nostop)
    );
}

#[test]
fn recycled_instructions_bypass_fetch() {
    // Fetch-per-renamed drops when recycling is enabled on a loopy
    // workload: the recycled fraction never touched the instruction cache.
    let p = |seed| hard_hammock_loop(seed);
    let tme = run(p(9), Features::tme(), AltPolicy::Stop(8), 15_000);
    let rec = run(p(9), Features::rec_rs_ru(), AltPolicy::Stop(8), 15_000);
    let fetch_per_renamed = |s: &Stats| s.fetched as f64 / s.renamed as f64;
    assert!(rec.recycled > 0);
    assert!(
        fetch_per_renamed(&rec) < fetch_per_renamed(&tme),
        "recycling must reduce fetch traffic: {:.2} vs {:.2}",
        fetch_per_renamed(&rec),
        fetch_per_renamed(&tme)
    );
}

#[test]
fn lockstep_mechanism_programs() {
    // The mechanism programs run forever; validate a window of commits in
    // lock-step against the reference emulator under the most aggressive
    // configuration.
    for seed in [3u64, 5, 7] {
        let config = SimConfig::big_2_16()
            .with_features(Features::rec_rs_ru())
            .with_alt_policy(AltPolicy::NoStop(32));
        let mut sim = Simulator::new(config, vec![hard_hammock_loop(seed)]);
        sim.attach_reference(ProgId(0));
        let stats = sim.run(8_000, 800_000);
        assert!(stats.committed >= 8_000, "seed {seed} starved");
    }
}
