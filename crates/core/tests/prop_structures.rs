//! Model-based property tests for the renaming structures: the circular
//! active list is checked against a straightforward `VecDeque` model, and
//! the register files against a reference-counting map.

use multipath_core::active_list::{ActiveList, AlEntry, EntryState};
use multipath_core::ids::{InstTag, PhysReg};
use multipath_core::regfile::RegFiles;
use proptest::prelude::*;
use std::collections::VecDeque;

fn entry(pc: u64, tag: u64) -> AlEntry {
    AlEntry {
        seq: 0,
        tag: InstTag(tag),
        pc,
        inst: multipath_isa::Inst::nop(),
        dest: None,
        new_preg: None,
        old_preg: None,
        srcs: [None; 2],
        state: EntryState::Pending,
        executed: false,
        recycled: false,
        reused: false,
        fetched_only: false,
        branch: None,
        mem: None,
        taken_path: None,
        regs_held: true,
    }
}

#[derive(Debug, Clone)]
enum AlOp {
    Insert(u64),
    Commit,
    SquashTail(u64),
}

fn al_ops() -> impl Strategy<Value = Vec<AlOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..0x1000).prop_map(AlOp::Insert),
            Just(AlOp::Commit),
            (0u64..8).prop_map(AlOp::SquashTail),
        ],
        1..120,
    )
}

proptest! {
    /// The active list's live region behaves exactly like a bounded deque,
    /// and retained entries stay readable until their slot is reused.
    #[test]
    fn active_list_matches_deque_model(ops in al_ops()) {
        const CAP: usize = 8;
        let mut al = ActiveList::new(CAP);
        // Model: deque of (seq, pc) for live entries.
        let mut model: VecDeque<(u64, u64)> = VecDeque::new();
        let mut next_tag = 0u64;
        for op in ops {
            match op {
                AlOp::Insert(pc) => {
                    if model.len() < CAP {
                        let seq = al.insert(entry(pc, next_tag));
                        model.push_back((seq, pc));
                        next_tag += 1;
                        prop_assert_eq!(al.at_seq(seq).unwrap().pc, pc);
                    } else {
                        prop_assert!(!al.has_space());
                    }
                }
                AlOp::Commit => {
                    if let Some((seq, pc)) = model.pop_front() {
                        let committed = al.commit_front();
                        prop_assert_eq!(committed, seq);
                        // Retained after commit until overwritten.
                        prop_assert_eq!(al.at_seq(seq).map(|e| e.pc), Some(pc));
                    } else {
                        prop_assert_eq!(al.live(), 0);
                    }
                }
                AlOp::SquashTail(n) => {
                    let keep = model.len().saturating_sub(n as usize);
                    let from_seq = model
                        .get(keep)
                        .map(|&(s, _)| s)
                        .unwrap_or(al.next_seq());
                    let squashed = al.squash_from(from_seq);
                    prop_assert_eq!(squashed.len(), model.len() - keep);
                    model.truncate(keep);
                }
            }
            // Invariants after every step.
            prop_assert_eq!(al.live(), model.len());
            for &(seq, pc) in &model {
                prop_assert!(al.is_live(seq));
                prop_assert_eq!(al.at_seq(seq).unwrap().pc, pc);
            }
            if let Some(&(seq, pc)) = model.front() {
                prop_assert_eq!(al.front().map(|e| (e.seq, e.pc)), Some((seq, pc)));
            } else {
                prop_assert!(al.front().is_none());
            }
        }
    }
}

#[derive(Debug, Clone)]
enum RfOp {
    Alloc(bool),
    AddRef(usize),
    Release(usize),
    Write(usize, u64),
}

fn rf_ops() -> impl Strategy<Value = Vec<RfOp>> {
    prop::collection::vec(
        prop_oneof![
            any::<bool>().prop_map(RfOp::Alloc),
            (0usize..16).prop_map(RfOp::AddRef),
            (0usize..16).prop_map(RfOp::Release),
            (0usize..16, any::<u64>()).prop_map(|(i, v)| RfOp::Write(i, v)),
        ],
        1..200,
    )
}

proptest! {
    /// Reference counting conserves registers under arbitrary interleaving
    /// of allocation, sharing, release, and writes; values survive while
    /// any reference remains.
    #[test]
    fn regfiles_conserve_under_random_ops(ops in rf_ops()) {
        let mut rf = RegFiles::new(12, 12);
        // Live registers we hold references on: (reg, refcount, value).
        let mut live: Vec<(PhysReg, u32, Option<u64>)> = Vec::new();
        for op in ops {
            match op {
                RfOp::Alloc(fp) => {
                    if let Some(reg) = rf.alloc(fp) {
                        prop_assert!(!rf.is_ready(reg), "fresh registers are not ready");
                        live.push((reg, 1, None));
                    } else {
                        // Exhaustion is only allowed when we truly hold
                        // all the capacity of that file.
                        let held: u32 =
                            live.iter().filter(|(r, ..)| r.fp == fp).map(|(_, c, _)| *c).sum();
                        let distinct =
                            live.iter().filter(|(r, ..)| r.fp == fp).count();
                        prop_assert!(distinct == 12, "spurious exhaustion ({held} refs)");
                    }
                }
                RfOp::AddRef(i) => {
                    if !live.is_empty() {
                        let idx = i % live.len();
                        rf.add_ref(live[idx].0);
                        live[idx].1 += 1;
                    }
                }
                RfOp::Release(i) => {
                    if !live.is_empty() {
                        let idx = i % live.len();
                        rf.release(live[idx].0);
                        live[idx].1 -= 1;
                        if live[idx].1 == 0 {
                            live.remove(idx);
                        }
                    }
                }
                RfOp::Write(i, v) => {
                    if !live.is_empty() {
                        let idx = i % live.len();
                        rf.write(live[idx].0, v);
                        live[idx].2 = Some(v);
                    }
                }
            }
            rf.check_conservation();
            for &(reg, count, value) in &live {
                prop_assert_eq!(rf.refcount(reg), count);
                if let Some(v) = value {
                    prop_assert!(rf.is_ready(reg));
                    prop_assert_eq!(rf.read(reg), v);
                }
            }
        }
    }
}
