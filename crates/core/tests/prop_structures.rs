//! Model-based property tests for the renaming structures: the circular
//! active list is checked against a straightforward `VecDeque` model, and
//! the register files against a reference-counting map.

use multipath_core::active_list::{ActiveList, AlEntry, EntryState};
use multipath_core::ids::{InstTag, PhysReg};
use multipath_core::regfile::RegFiles;
use multipath_testkit::{prop_assert, prop_assert_eq, prop_test, Shrink, TestRng};
use std::collections::VecDeque;

fn entry(pc: u64, tag: u64) -> AlEntry {
    AlEntry {
        seq: 0,
        tag: InstTag(tag),
        pc,
        inst: multipath_isa::Inst::nop(),
        dest: None,
        new_preg: None,
        old_preg: None,
        srcs: [None; 2],
        state: EntryState::Pending,
        executed: false,
        recycled: false,
        reused: false,
        fetched_only: false,
        branch: None,
        mem: None,
        taken_path: None,
        regs_held: true,
    }
}

#[derive(Debug, Clone)]
enum AlOp {
    Insert(u64),
    Commit,
    SquashTail(u64),
}

impl Shrink for AlOp {}

fn al_op(rng: &mut TestRng) -> AlOp {
    match rng.below(3) {
        0 => AlOp::Insert(rng.below(0x1000)),
        1 => AlOp::Commit,
        _ => AlOp::SquashTail(rng.below(8)),
    }
}

prop_test! {
    /// The active list's live region behaves exactly like a bounded deque,
    /// and retained entries stay readable until their slot is reused.
    fn active_list_matches_deque_model(ops in |rng: &mut TestRng| rng.vec(1..120, al_op)) {
        const CAP: usize = 8;
        let mut al = ActiveList::new(CAP);
        // Model: deque of (seq, pc) for live entries.
        let mut model: VecDeque<(u64, u64)> = VecDeque::new();
        let mut next_tag = 0u64;
        for op in ops {
            match op {
                AlOp::Insert(pc) => {
                    if model.len() < CAP {
                        let seq = al.insert(entry(pc, next_tag));
                        model.push_back((seq, pc));
                        next_tag += 1;
                        prop_assert_eq!(al.at_seq(seq).unwrap().pc, pc);
                    } else {
                        prop_assert!(!al.has_space());
                    }
                }
                AlOp::Commit => {
                    if let Some((seq, pc)) = model.pop_front() {
                        let committed = al.commit_front();
                        prop_assert_eq!(committed, seq);
                        // Retained after commit until overwritten.
                        prop_assert_eq!(al.at_seq(seq).map(|e| e.pc), Some(pc));
                    } else {
                        prop_assert_eq!(al.live(), 0);
                    }
                }
                AlOp::SquashTail(n) => {
                    let keep = model.len().saturating_sub(n as usize);
                    let from_seq = model
                        .get(keep)
                        .map(|&(s, _)| s)
                        .unwrap_or(al.next_seq());
                    let squashed = al.squash_from(from_seq);
                    let count = (squashed.end - squashed.start) as usize;
                    prop_assert_eq!(count, model.len() - keep);
                    model.truncate(keep);
                }
            }
            // Invariants after every step.
            prop_assert_eq!(al.live(), model.len());
            for &(seq, pc) in &model {
                prop_assert!(al.is_live(seq));
                prop_assert_eq!(al.at_seq(seq).unwrap().pc, pc);
            }
            if let Some(&(seq, pc)) = model.front() {
                prop_assert_eq!(al.front().map(|e| (e.seq, e.pc)), Some((seq, pc)));
            } else {
                prop_assert!(al.front().is_none());
            }
        }
    }
}

#[derive(Debug, Clone)]
enum RfOp {
    Alloc(bool),
    AddRef(usize),
    Release(usize),
    Write(usize, u64),
}

impl Shrink for RfOp {}

fn rf_op(rng: &mut TestRng) -> RfOp {
    match rng.below(4) {
        0 => RfOp::Alloc(rng.next_bool()),
        1 => RfOp::AddRef(rng.len_in(0..16)),
        2 => RfOp::Release(rng.len_in(0..16)),
        _ => RfOp::Write(rng.len_in(0..16), rng.next_u64()),
    }
}

prop_test! {
    /// Reference counting conserves registers under arbitrary interleaving
    /// of allocation, sharing, release, and writes; values survive while
    /// any reference remains.
    fn regfiles_conserve_under_random_ops(ops in |rng: &mut TestRng| rng.vec(1..200, rf_op)) {
        let mut rf = RegFiles::new(12, 12);
        // Live registers we hold references on: (reg, refcount, value).
        let mut live: Vec<(PhysReg, u32, Option<u64>)> = Vec::new();
        for op in ops {
            match op {
                RfOp::Alloc(fp) => {
                    if let Some(reg) = rf.alloc(fp) {
                        prop_assert!(!rf.is_ready(reg), "fresh registers are not ready");
                        live.push((reg, 1, None));
                    } else {
                        // Exhaustion is only allowed when we truly hold
                        // all the capacity of that file.
                        let held: u32 =
                            live.iter().filter(|(r, ..)| r.fp == fp).map(|(_, c, _)| *c).sum();
                        let distinct =
                            live.iter().filter(|(r, ..)| r.fp == fp).count();
                        prop_assert!(distinct == 12, "spurious exhaustion ({held} refs)");
                    }
                }
                RfOp::AddRef(i) => {
                    if !live.is_empty() {
                        let idx = i % live.len();
                        rf.add_ref(live[idx].0);
                        live[idx].1 += 1;
                    }
                }
                RfOp::Release(i) => {
                    if !live.is_empty() {
                        let idx = i % live.len();
                        rf.release(live[idx].0);
                        live[idx].1 -= 1;
                        if live[idx].1 == 0 {
                            live.remove(idx);
                        }
                    }
                }
                RfOp::Write(i, v) => {
                    if !live.is_empty() {
                        let idx = i % live.len();
                        rf.write(live[idx].0, v);
                        live[idx].2 = Some(v);
                    }
                }
            }
            rf.check_conservation();
            for &(reg, count, value) in &live {
                prop_assert_eq!(rf.refcount(reg), count);
                if let Some(v) = value {
                    prop_assert!(rf.is_ready(reg));
                    prop_assert_eq!(rf.read(reg), v);
                }
            }
        }
    }
}
