//! Functional semantics of the ISA.
//!
//! The timing simulator *is* the functional simulator: operand values flow
//! through physical registers, and these pure functions compute results at
//! issue time. Keeping them free of pipeline state makes the semantics
//! unit-testable in isolation.

use multipath_isa::{Inst, Opcode};

fn sext(imm: i32) -> u64 {
    imm as i64 as u64
}

fn f(bits: u64) -> f64 {
    f64::from_bits(bits)
}

fn b(value: f64) -> u64 {
    value.to_bits()
}

/// Computes the result of a non-memory, non-control instruction.
///
/// `a` and `b` are the values of `src1` and `src2` (zero when absent);
/// `pc` is the instruction's own address (calls produce `pc + 4`).
///
/// # Panics
///
/// Panics on memory or conditional-control opcodes — those are handled by
/// the load/store path and [`branch_taken`].
pub fn alu_result(inst: &Inst, a: u64, bb: u64, pc: u64) -> u64 {
    let imm = sext(inst.imm);
    match inst.op {
        Opcode::Add => a.wrapping_add(bb),
        Opcode::Sub => a.wrapping_sub(bb),
        Opcode::Mul => a.wrapping_mul(bb),
        Opcode::And => a & bb,
        Opcode::Or => a | bb,
        Opcode::Xor => a ^ bb,
        Opcode::Sll => a << (bb & 63),
        Opcode::Srl => a >> (bb & 63),
        Opcode::Sra => ((a as i64) >> (bb & 63)) as u64,
        Opcode::Cmpeq => (a == bb) as u64,
        Opcode::Cmplt => ((a as i64) < (bb as i64)) as u64,
        Opcode::Cmple => ((a as i64) <= (bb as i64)) as u64,
        Opcode::Cmpult => (a < bb) as u64,
        Opcode::Addi | Opcode::Lda => a.wrapping_add(imm),
        Opcode::Subi => a.wrapping_sub(imm),
        Opcode::Muli => a.wrapping_mul(imm),
        Opcode::Andi => a & imm,
        Opcode::Ori => a | imm,
        Opcode::Xori => a ^ imm,
        Opcode::Slli => a << (imm & 63),
        Opcode::Srli => a >> (imm & 63),
        Opcode::Srai => ((a as i64) >> (imm & 63)) as u64,
        Opcode::Cmpeqi => (a == imm) as u64,
        Opcode::Cmplti => ((a as i64) < (imm as i64)) as u64,
        Opcode::Cmplei => ((a as i64) <= (imm as i64)) as u64,
        Opcode::Cmpulti => (a < imm) as u64,
        Opcode::Ldih => a.wrapping_add(sext(inst.imm) << 16),
        Opcode::Jsr => pc.wrapping_add(multipath_isa::INST_BYTES),
        Opcode::Addt => b(f(a) + f(bb)),
        Opcode::Subt => b(f(a) - f(bb)),
        Opcode::Mult => b(f(a) * f(bb)),
        Opcode::Divt => b(f(a) / f(bb)),
        Opcode::Cmptlt => (f(a) < f(bb)) as u64,
        Opcode::Cmpteq => (f(a) == f(bb)) as u64,
        Opcode::Cmptle => (f(a) <= f(bb)) as u64,
        Opcode::Cvtqt => b(a as i64 as f64),
        Opcode::Cvttq => (f(a) as i64) as u64,
        Opcode::Nop | Opcode::Halt => 0,
        other => panic!("alu_result on non-ALU opcode {other}"),
    }
}

/// Whether the conditional branch is taken given its source value.
///
/// # Panics
///
/// Panics on non-conditional-branch opcodes.
pub fn branch_taken(inst: &Inst, a: u64) -> bool {
    let s = a as i64;
    match inst.op {
        Opcode::Beq => a == 0,
        Opcode::Bne => a != 0,
        Opcode::Blt => s < 0,
        Opcode::Ble => s <= 0,
        Opcode::Bgt => s > 0,
        Opcode::Bge => s >= 0,
        other => panic!("branch_taken on non-branch opcode {other}"),
    }
}

/// The effective address of a memory operation given the base value.
pub fn effective_address(inst: &Inst, base: u64) -> u64 {
    base.wrapping_add(sext(inst.imm))
}

#[cfg(test)]
mod tests {
    use super::*;
    use multipath_isa::{FpReg, IntReg};

    fn rrr(op: Opcode) -> Inst {
        Inst::rrr(op, IntReg::R1, IntReg::R2, IntReg::R3)
    }

    fn rri(op: Opcode, imm: i16) -> Inst {
        Inst::rri(op, IntReg::R1, IntReg::R2, imm)
    }

    #[test]
    fn integer_arithmetic() {
        assert_eq!(alu_result(&rrr(Opcode::Add), 3, 4, 0), 7);
        assert_eq!(alu_result(&rrr(Opcode::Sub), 3, 4, 0), u64::MAX);
        assert_eq!(
            alu_result(&rrr(Opcode::Mul), 1 << 40, 1 << 30, 0),
            0,
            "wraps"
        );
        assert_eq!(
            alu_result(&rrr(Opcode::Mul), 1 << 40, (1 << 24) | 3, 0),
            3 << 40,
            "wraps"
        );
        assert_eq!(alu_result(&rri(Opcode::Addi, -1), 5, 0, 0), 4);
        assert_eq!(alu_result(&rri(Opcode::Muli, 31), 2, 0, 0), 62);
    }

    #[test]
    fn logic_and_shifts() {
        assert_eq!(alu_result(&rrr(Opcode::And), 0b1100, 0b1010, 0), 0b1000);
        assert_eq!(alu_result(&rrr(Opcode::Or), 0b1100, 0b1010, 0), 0b1110);
        assert_eq!(alu_result(&rrr(Opcode::Xor), 0b1100, 0b1010, 0), 0b0110);
        assert_eq!(alu_result(&rri(Opcode::Slli, 4), 1, 0, 0), 16);
        assert_eq!(
            alu_result(&rri(Opcode::Srli, 1), u64::MAX, 0, 0),
            u64::MAX >> 1
        );
        assert_eq!(
            alu_result(&rri(Opcode::Srai, 1), u64::MAX, 0, 0),
            u64::MAX,
            "arithmetic"
        );
        // Shift amounts wrap at 64.
        assert_eq!(alu_result(&rrr(Opcode::Sll), 1, 65, 0), 2);
    }

    #[test]
    fn comparisons_signed_and_unsigned() {
        let minus_one = u64::MAX;
        assert_eq!(
            alu_result(&rrr(Opcode::Cmplt), minus_one, 0, 0),
            1,
            "signed"
        );
        assert_eq!(
            alu_result(&rrr(Opcode::Cmpult), minus_one, 0, 0),
            0,
            "unsigned"
        );
        assert_eq!(alu_result(&rrr(Opcode::Cmpeq), 5, 5, 0), 1);
        assert_eq!(alu_result(&rri(Opcode::Cmplti, 0), minus_one, 0, 0), 1);
        assert_eq!(
            alu_result(&rri(Opcode::Cmpulti, -1), 5, 0, 0),
            1,
            "imm sign-extends"
        );
    }

    #[test]
    fn constant_construction() {
        // ldih r, zero, 0x10 ; lda r, r, 0 → 0x100000
        let hi = alu_result(&rri(Opcode::Ldih, 0x10), 0, 0, 0);
        assert_eq!(hi, 0x10_0000);
        let lo = alu_result(&rri(Opcode::Lda, -4), hi, 0, 0);
        assert_eq!(lo, 0xf_fffc);
    }

    #[test]
    fn call_links_next_pc() {
        let jsr = Inst::call(10);
        assert_eq!(alu_result(&jsr, 0, 0, 0x1000), 0x1004);
    }

    #[test]
    fn fp_arithmetic_round_trips_through_bits() {
        let two = 2.0f64.to_bits();
        let three = 3.0f64.to_bits();
        let i = Inst::fp(Opcode::Mult, FpReg::F1, FpReg::F2, FpReg::F3);
        assert_eq!(f64::from_bits(alu_result(&i, two, three, 0)), 6.0);
        let d = Inst::fp(Opcode::Divt, FpReg::F1, FpReg::F2, FpReg::F3);
        assert_eq!(f64::from_bits(alu_result(&d, three, two, 0)), 1.5);
    }

    #[test]
    fn fp_compare_writes_integer() {
        let i = Inst::fp_cmp(Opcode::Cmptlt, IntReg::R1, FpReg::F2, FpReg::F3);
        assert_eq!(alu_result(&i, 1.0f64.to_bits(), 2.0f64.to_bits(), 0), 1);
        assert_eq!(alu_result(&i, 2.0f64.to_bits(), 1.0f64.to_bits(), 0), 0);
    }

    #[test]
    fn conversions() {
        let c = Inst::cvtqt(FpReg::F1, IntReg::R2);
        assert_eq!(f64::from_bits(alu_result(&c, (-3i64) as u64, 0, 0)), -3.0);
        let t = Inst::cvttq(IntReg::R1, FpReg::F2);
        assert_eq!(alu_result(&t, (-2.7f64).to_bits(), 0, 0) as i64, -2);
    }

    #[test]
    fn branch_conditions() {
        let mk = |op| Inst::cond_branch(op, IntReg::R1, 0);
        assert!(branch_taken(&mk(Opcode::Beq), 0));
        assert!(!branch_taken(&mk(Opcode::Beq), 1));
        assert!(branch_taken(&mk(Opcode::Bne), 5));
        assert!(branch_taken(&mk(Opcode::Blt), (-1i64) as u64));
        assert!(!branch_taken(&mk(Opcode::Blt), 0));
        assert!(branch_taken(&mk(Opcode::Ble), 0));
        assert!(branch_taken(&mk(Opcode::Bgt), 1));
        assert!(branch_taken(&mk(Opcode::Bge), 0));
        assert!(!branch_taken(&mk(Opcode::Bge), (-1i64) as u64));
    }

    #[test]
    fn effective_addresses() {
        let ld = Inst::load(Opcode::Ldq, IntReg::R1, -8, IntReg::R2);
        assert_eq!(effective_address(&ld, 0x100), 0xf8);
    }

    #[test]
    #[should_panic(expected = "non-ALU")]
    fn memory_op_rejected() {
        let ld = Inst::load(Opcode::Ldq, IntReg::R1, 0, IntReg::R2);
        alu_result(&ld, 0, 0, 0);
    }
}
