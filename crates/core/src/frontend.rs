//! The fetch stage: ICOUNT thread selection, instruction-cache access,
//! branch prediction, merge-point detection, and recycle-stream creation.

use crate::context::{CtxState, FetchPrediction, FetchedInst, RecycleStream, StreamSource};
use crate::ids::CtxId;
use crate::sim::Simulator;
use multipath_isa::{Inst, Opcode, OperandClass, INST_BYTES};

/// Cache-line size assumed by the fetch unit (matches the hierarchy).
const LINE_BYTES: u64 = 64;

impl Simulator {
    /// Runs one fetch cycle.
    pub(crate) fn fetch_stage(&mut self) {
        self.finalize_alternates();
        // Selection runs on reusable scratch buffers: no per-cycle Vecs.
        let mut icounts = std::mem::take(&mut self.scratch.icounts);
        self.fill_icounts(&mut icounts);
        let mut candidates = std::mem::take(&mut self.scratch.candidates);
        candidates.clear();
        candidates.extend(
            (0..self.contexts.len())
                .map(|i| CtxId(i as u8))
                .filter(|&c| self.can_fetch(c)),
        );
        candidates.sort_by_key(|c| icounts[c.index()]);

        let mut budget = self.config.fetch_total;
        for &ctx in candidates.iter().take(self.config.fetch_threads) {
            if budget == 0 {
                break;
            }
            let max = budget.min(self.config.fetch_per_thread);
            budget -= self.fetch_block(ctx, max);
        }
        self.scratch.icounts = icounts;
        self.scratch.candidates = candidates;
    }

    /// Whether a context may fetch this cycle.
    fn can_fetch(&self, ctx: CtxId) -> bool {
        let c = &self.contexts[ctx.index()];
        if c.fetch_stopped || c.fetch_stall_until > self.cycle {
            return false;
        }
        if c.decode_pipe.len() >= 2 * self.config.fetch_per_thread {
            return false;
        }
        match c.state {
            CtxState::Primary => {
                let prog = c.prog.expect("primary context bound to program");
                !self.programs[prog.index()].finished
            }
            CtxState::Alternate { resolved, .. } => {
                let policy = self.config.alt_policy;
                if resolved && !policy.fetch_after_resolve() {
                    return false;
                }
                c.fetched_total < policy.limit() as u64
            }
            _ => false,
        }
    }

    /// Fetches up to `max` sequential instructions for `ctx`. Returns the
    /// number fetched (bandwidth consumed).
    fn fetch_block(&mut self, ctx: CtxId, max: usize) -> usize {
        let asid = self.asid_of(ctx);
        let pc0 = self.contexts[ctx.index()].fetch_pc;
        let access = self.hierarchy.inst_access(asid, pc0, self.cycle);
        if access.bounced {
            // Bank conflict: retry when the bank frees.
            self.contexts[ctx.index()].fetch_stall_until = access.ready_at;
            return 0;
        }
        if access.latency() > 0 {
            // I-cache miss: the fill is in flight. The block is captured
            // now (fill-and-forward) but its instructions only become
            // decodable once the line arrives, and the thread fetches
            // nothing else until then. Delivering at fill time (instead of
            // re-probing) is essential: with a direct-mapped L1I, two
            // threads aliasing one set could otherwise evict each other's
            // lines forever without either making progress.
            self.contexts[ctx.index()].fetch_stall_until = access.ready_at;
        }

        let prog = self.contexts[ctx.index()]
            .prog
            .expect("fetching context bound");
        let line_end = (pc0 | (LINE_BYTES - 1)) + 1;
        let ready_cycle = self.cycle.max(access.ready_at) + 1 + self.config.decode_latency as u64;
        let is_alt = matches!(self.contexts[ctx.index()].state, CtxState::Alternate { .. });
        let alt_limit = self.config.alt_policy.limit() as u64;

        let mut pc = pc0;
        let mut fetched = 0;
        while fetched < max && pc < line_end {
            if is_alt && self.contexts[ctx.index()].fetched_total >= alt_limit {
                break;
            }
            // Merge-point check: a hit redirects this thread into the
            // recycle datapath; fetch of this block stops at the match.
            if self.try_start_recycle(ctx, pc) {
                // `try_start_recycle` set the new fetch PC.
                return fetched;
            }
            let word = self.programs[prog.index()].memory.read_u32(pc);
            let inst = Inst::decode(word).unwrap_or_else(Inst::halt);
            let (pred, next_pc, ends_block) = self.predict_next(ctx, &inst, pc);
            self.contexts[ctx.index()]
                .decode_pipe
                .push_back(FetchedInst {
                    ready_cycle,
                    pc,
                    inst,
                    pred,
                });
            self.contexts[ctx.index()].fetched_total += 1;
            self.stats.fetched += 1;
            fetched += 1;
            pc = next_pc;
            if inst.op == Opcode::Halt {
                self.contexts[ctx.index()].fetch_stopped = true;
                break;
            }
            if ends_block {
                break;
            }
        }
        #[cfg(debug_assertions)]
        if fetched > 0 {
            let cyc = self.cycle;
            self.contexts[ctx.index()]
                .log_fe(cyc, format!("fetch {fetched} [{pc0:#x}..) next {pc:#x}"));
        }
        if fetched > 0 {
            self.probe(
                ctx,
                pc0,
                crate::probe::EventKind::Fetch {
                    count: fetched as u32,
                },
            );
        }
        self.contexts[ctx.index()].fetch_pc = pc;
        fetched
    }

    /// Predicts the next PC for a fetched instruction, updating the
    /// context's speculative history and return stack.
    pub(crate) fn predict_next(
        &mut self,
        ctx: CtxId,
        inst: &Inst,
        pc: u64,
    ) -> (Option<FetchPrediction>, u64, bool) {
        let fallthrough = pc + INST_BYTES;
        match inst.op.operand_class() {
            OperandClass::CondBr => {
                let c = &self.contexts[ctx.index()];
                let p = self.predictor.predict(pc, &c.ghr);
                let history = c.ghr.bits();
                let target = inst.direct_target(pc);
                self.contexts[ctx.index()].ghr.push(p.taken);
                let next = if p.taken { target } else { fallthrough };
                let pred = FetchPrediction {
                    taken: p.taken,
                    target,
                    history,
                    confident: p.confident,
                };
                (Some(pred), next, p.taken)
            }
            OperandClass::Br => {
                let target = inst.direct_target(pc);
                if inst.op == Opcode::Jsr {
                    self.contexts[ctx.index()].ras.push(fallthrough);
                }
                let history = self.contexts[ctx.index()].ghr.bits();
                let pred = FetchPrediction {
                    taken: true,
                    target,
                    history,
                    confident: true,
                };
                (Some(pred), target, true)
            }
            OperandClass::Jump => {
                let predicted = if inst.op == Opcode::Ret {
                    self.contexts[ctx.index()]
                        .ras
                        .pop()
                        .or_else(|| self.predictor.predict_target(pc))
                        .unwrap_or(fallthrough)
                } else {
                    self.predictor.predict_target(pc).unwrap_or(fallthrough)
                };
                let history = self.contexts[ctx.index()].ghr.bits();
                let pred = FetchPrediction {
                    taken: true,
                    target: predicted,
                    history,
                    confident: true,
                };
                (Some(pred), predicted, true)
            }
            _ => (None, fallthrough, false),
        }
    }

    /// Moves resolved alternates whose policy work is complete into the
    /// inactive (recyclable) state.
    fn finalize_alternates(&mut self) {
        let policy = self.config.alt_policy;
        for i in 0..self.contexts.len() {
            let c = &self.contexts[i];
            let CtxState::Alternate { resolved: true, .. } = c.state else {
                continue;
            };
            let fetch_done = c.fetch_stopped
                || !policy.fetch_after_resolve()
                || c.fetched_total >= policy.limit() as u64;
            if fetch_done && c.decode_pipe.is_empty() && c.recycle_stream.is_none() {
                let cycle = self.cycle;
                let c = &mut self.contexts[i];
                c.state = CtxState::Inactive;
                c.last_used = cycle;
            }
        }
    }

    /// Checks the merge points visible to `ctx` at `pc`; on a hit, creates
    /// a recycle stream and redirects fetch past the trace. Returns whether
    /// a stream was started.
    pub(crate) fn try_start_recycle(&mut self, ctx: CtxId, pc: u64) -> bool {
        if !self.config.features.recycle {
            return false;
        }
        if self.contexts[ctx.index()].recycle_stream.is_some() {
            return false;
        }
        let is_primary = self.is_primary(ctx);

        if is_primary {
            // 1. First-instruction merge with a spare context's trace
            //    (alternate, inactive, or draining) — the reuse-capable case.
            let span = self.group_span(ctx);
            for c in span.iter() {
                if c == ctx {
                    continue;
                }
                let source_ok = matches!(
                    self.contexts[c.index()].state,
                    CtxState::Alternate { .. } | CtxState::Inactive | CtxState::Draining
                );
                if !source_ok {
                    continue;
                }
                if let Some(e0) = self.contexts[c.index()].al.at_seq(0) {
                    if e0.pc == pc {
                        if self.start_context_stream(ctx, c, 0, pc, false) {
                            return true;
                        }
                        continue;
                    }
                }
                // A spare's retained squashed tail is also a valid trace.
                if let Some(mp) = self.contexts[c.index()].squash_merge {
                    if mp.pc == pc
                        && self.contexts[c.index()]
                            .al
                            .at_seq(mp.seq)
                            .is_some_and(|e| e.pc == pc)
                    {
                        if self.start_context_stream(ctx, c, mp.seq, pc, false) {
                            return true;
                        }
                        continue;
                    }
                }
            }
            // 2. The primary's own retained squashed path.
            if let Some(mp) = self.contexts[ctx.index()].squash_merge {
                if mp.pc == pc
                    && self.contexts[ctx.index()]
                        .al
                        .at_seq(mp.seq)
                        .is_some_and(|e| e.pc == pc)
                    && self.start_context_stream(ctx, ctx, mp.seq, pc, false)
                {
                    return true;
                }
            }
        }
        // 3. The thread's own backward-branch merge point (any thread).
        if let Some(mp) = self.contexts[ctx.index()].back_merge {
            if mp.pc == pc
                && self.contexts[ctx.index()]
                    .al
                    .at_seq(mp.seq)
                    .is_some_and(|e| e.pc == pc)
            {
                return self.start_context_stream(ctx, ctx, mp.seq, pc, true);
            }
        }
        false
    }

    /// Creates a recycle stream for `target` reading `source`'s trace from
    /// `start_seq`, and repoints `target`'s fetch past the trace.
    fn start_context_stream(
        &mut self,
        target: CtxId,
        source: CtxId,
        start_seq: u64,
        pc: u64,
        back_merge: bool,
    ) -> bool {
        // Scan the contiguous valid range.
        let src = &self.contexts[source.index()];
        let mut end = start_seq;
        let cap = src.al.capacity() as u64;
        while end - start_seq < cap && src.al.at_seq(end).is_some() {
            end += 1;
        }
        if source == target {
            // Self-streams write into the same circular buffer they read:
            // each recycled copy takes the *next* sequence number and so
            // replaces the retained entry with that number. Reads must
            // therefore stay strictly below the first write (`w0`), and the
            // stream must be short enough that writes never wrap onto
            // still-unread slots.
            let w0 = src.al.next_seq();
            if start_seq < w0 {
                // Reading live/retired entries: stop before the writer's
                // first sequence (those entries get replaced one by one),
                // and never let writes wrap onto unread slots.
                end = end
                    .min(w0)
                    .min(start_seq + cap.saturating_sub(w0 - start_seq));
            } else {
                // Reading the retained squashed region: the writer reuses
                // exactly these sequence numbers but each slot is read
                // before it is rewritten; only wrap-around can clobber.
                end = end.min(start_seq + cap.saturating_sub(start_seq - w0));
            }
            if end <= start_seq {
                return false;
            }
        }
        debug_assert!(end > start_seq, "merge point validated before call");
        let resume_pc = if end == src.al.next_seq() {
            src.al_next_pc
        } else {
            let last = src.al.at_seq(end - 1).expect("scanned valid");
            entry_next_pc(last)
        };
        let reuse_allowed = self.config.features.reuse && source != target;

        // Snapshot the history view for per-entry re-prediction, then prime
        // the context's own GHR/RAS with the whole trace so instructions
        // fetched *after* the trace are predicted with consistent state
        // (Section 3.4: "the global history register is then updated with
        // that prediction").
        let stream_ghr = self.contexts[target.index()].ghr;
        for seq in start_seq..end {
            let Some(e) = self.contexts[source.index()].al.at_seq(seq) else {
                break;
            };
            let (op, pc, taken) = (
                e.inst.op,
                e.pc,
                e.taken_path
                    .or(e.branch.as_ref().map(|b| b.predicted_taken)),
            );
            match op {
                Opcode::Jsr => self.contexts[target.index()].ras.push(pc + INST_BYTES),
                Opcode::Ret => {
                    self.contexts[target.index()].ras.pop();
                }
                _ if op.is_cond_branch() => {
                    self.contexts[target.index()]
                        .ghr
                        .push(taken.unwrap_or(false));
                }
                _ => {}
            }
        }

        let pre_items = self.contexts[target.index()].decode_pipe.len();
        self.contexts[target.index()].recycle_stream = Some(RecycleStream {
            source: StreamSource::Context(source),
            next_seq: start_seq,
            end_seq: end,
            reuse_allowed,
            back_merge,
            expected_pc: pc,
            ghr: stream_ghr,
            pre_items,
            resume_pc,
            fresh: [false; multipath_isa::NUM_LOGICAL_REGS],
        });
        {
            let cyc = self.cycle;
            let pre = self.contexts[target.index()].decode_pipe.len();
            self.contexts[target.index()].log_fe(
                cyc,
                format!("stream src ctx{} [{start_seq}..{end}) pc {pc:#x} resume {resume_pc:#x} pre {pre}", source.0),
            );
        }
        self.contexts[target.index()].fetch_pc = resume_pc;

        self.stats.merges += 1;
        if back_merge {
            self.stats.back_merges += 1;
        } else if source != target && self.contexts[source.index()].path.live {
            self.contexts[source.index()].path.merges += 1;
        }
        if self.probing() {
            let len = end - start_seq;
            let kind = if back_merge {
                crate::probe::EventKind::BackMerge { len }
            } else {
                crate::probe::EventKind::Merge {
                    source: source.0,
                    len,
                    reuse: reuse_allowed,
                }
            };
            self.probe(target, pc, kind);
        }
        self.contexts[source.index()].last_used = self.cycle;
        true
    }
}

/// The PC that follows a trace entry (its fall-through, or the direction
/// the trace followed for control instructions).
pub(crate) fn entry_next_pc(e: &crate::active_list::AlEntry) -> u64 {
    let fallthrough = e.pc + INST_BYTES;
    let Some(b) = &e.branch else {
        return fallthrough;
    };
    let taken = e.taken_path.unwrap_or(b.predicted_taken);
    if taken {
        b.actual_target
            .filter(|_| b.resolved)
            .unwrap_or(b.predicted_target)
    } else {
        fallthrough
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::active_list::{AlEntry, BranchState, EntryState};
    use crate::ids::InstTag;
    use multipath_isa::IntReg;

    fn entry_with_branch(pc: u64, taken: bool, target: u64) -> AlEntry {
        AlEntry {
            seq: 0,
            tag: InstTag(0),
            pc,
            inst: Inst::cond_branch(Opcode::Beq, IntReg::R1, 1),
            dest: None,
            new_preg: None,
            old_preg: None,
            srcs: [None; 2],
            state: EntryState::Done,
            executed: true,
            recycled: false,
            reused: false,
            fetched_only: false,
            branch: Some(BranchState {
                predicted_taken: taken,
                predicted_target: target,
                history: 0,
                fork: None,
                resolved: false,
                actual_taken: None,
                actual_target: None,
            }),
            mem: None,
            taken_path: Some(taken),
            regs_held: false,
        }
    }

    #[test]
    fn entry_next_pc_follows_trace_direction() {
        let taken = entry_with_branch(0x1000, true, 0x2000);
        assert_eq!(entry_next_pc(&taken), 0x2000);
        let not_taken = entry_with_branch(0x1000, false, 0x2000);
        assert_eq!(entry_next_pc(&not_taken), 0x1004);
        let mut resolved = entry_with_branch(0x1000, true, 0x2000);
        if let Some(b) = &mut resolved.branch {
            b.resolved = true;
            b.actual_target = Some(0x3000);
        }
        assert_eq!(entry_next_pc(&resolved), 0x3000, "resolved target wins");
    }

    #[test]
    fn entry_next_pc_plain_instruction() {
        let mut e = entry_with_branch(0x1000, true, 0x2000);
        e.branch = None;
        assert_eq!(entry_next_pc(&e), 0x1004);
    }
}
