//! Threaded multipath execution mechanics: forking, swapping on covered
//! mispredictions, re-spawning, context reclaim, and squash/recovery.

use crate::active_list::EntryState;
use crate::context::{CtxState, RecycleStream, StreamSource};
use crate::ids::{CtxId, InstTag};
use crate::sim::Simulator;
use multipath_branch::GlobalHistory;
use std::collections::VecDeque;

impl Simulator {
    /// Squashes all live entries of `ctx` with `seq >= from_seq`: releases
    /// their registers and reader references, restores the map region, and
    /// drops their speculative stores. Entries remain retained in their
    /// slots for possible primary-path recycling.
    ///
    /// Returns the number of entries squashed.
    pub(crate) fn squash_ctx_from(&mut self, ctx: CtxId, from_seq: u64) -> usize {
        let seqs = self.contexts[ctx.index()].al.squash_from(from_seq);
        let count = seqs.end.saturating_sub(seqs.start) as usize;
        if count > 0 && self.probing() {
            let pc = self.contexts[ctx.index()]
                .al
                .at_seq(seqs.start)
                .map(|e| e.pc)
                .unwrap_or(0);
            self.probe(
                ctx,
                pc,
                crate::probe::EventKind::Squash {
                    count: count as u64,
                },
            );
        }
        // Youngest first: recovery must unwind the map in reverse rename
        // order so each restored `old_preg` lands before it is re-displaced.
        for seq in seqs.rev() {
            // Clone the small bits we need, then mutate freely.
            let (dest, new_preg, old_preg, state, srcs, tag, is_store, fork) = {
                let e = self.contexts[ctx.index()]
                    .al
                    .at_seq(seq)
                    .expect("squashed entry must be retained");
                let srcs = e.srcs;
                (
                    e.dest,
                    e.new_preg,
                    e.old_preg,
                    e.state,
                    srcs,
                    e.tag,
                    e.inst.op.is_store(),
                    e.branch.as_ref().and_then(|b| b.fork),
                )
            };
            if state == EntryState::Pending {
                // Reader references held since rename are still out.
                for src in srcs.into_iter().flatten() {
                    self.regs.release(src);
                }
                if is_store {
                    self.contexts[ctx.index()].clear_pending_store(tag);
                }
            }
            if let (Some(d), Some(np)) = (dest, new_preg) {
                // Restore the previous mapping, then drop the allocation.
                self.map.set(
                    ctx,
                    d,
                    old_preg.expect("seeded registers always have a prior mapping"),
                );
                self.regs.release(np);
            }
            if is_store {
                self.contexts[ctx.index()].sq.remove(tag);
            }
            if let Some(alt) = fork {
                // A squashed forked branch invalidates its alternate path:
                // the path's register snapshot came from a region that is
                // now wrong-path.
                let attached = matches!(
                    self.contexts[alt.index()].state,
                    CtxState::Alternate { parent, fork_tag, .. }
                        if parent == ctx && fork_tag == tag
                );
                let linked_inactive = self.contexts[alt.index()].state == CtxState::Inactive
                    && self.contexts[alt.index()].fork_link
                        == Some(crate::lsq::ForkLink {
                            parent: ctx,
                            fork_tag: tag,
                        });
                if attached {
                    self.release_alternate(alt);
                } else if linked_inactive {
                    // The path already finished and went inactive. Its trace
                    // is still fine to *recycle* (re-rename + re-execute),
                    // but its values must never be reused: they were
                    // computed from a squashed snapshot.
                    self.poison_reuse(alt);
                }
            }
            if let Some(e) = self.contexts[ctx.index()].al.at_seq_mut(seq) {
                e.regs_held = false;
            }
            self.stats.squashed += 1;
        }
        count
    }

    /// Marks every retained entry of `ctx` as non-reusable (its register
    /// snapshot has been invalidated by a squash in the parent).
    pub(crate) fn poison_reuse(&mut self, ctx: CtxId) {
        let al = &mut self.contexts[ctx.index()].al;
        for seq in 0..al.next_seq() {
            if let Some(e) = al.at_seq_mut(seq) {
                e.executed = false;
            }
        }
    }

    /// Flushes the per-path statistics of `ctx` into the aggregate
    /// counters and marks the record dead.
    pub(crate) fn flush_path_record(&mut self, ctx: CtxId) {
        let path = &mut self.contexts[ctx.index()].path;
        if !path.live {
            return;
        }
        let (merges, respawned, used) = (path.merges, path.respawned, path.used_tme);
        path.live = false;
        if merges > 0 {
            self.stats.forks_recycled += 1;
            self.stats.alt_path_merge_sum += merges;
        }
        if respawned {
            self.stats.forks_respawned += 1;
        }
        if used {
            self.stats.forks_used_tme += 1;
        }
    }

    /// Fully releases an alternate (or inactive) context: squashes its
    /// trace, frees its registers, drops front-end state, and returns it
    /// to the idle pool.
    /// Clears any commit gates waiting on `ctx` — its older program-order
    /// work is finished (or discarded), so waiters may proceed. Without
    /// this, a stale gate could chain onto a *new* path that later
    /// occupies the same context, forming a deadlock cycle.
    pub(crate) fn clear_gates_to(&mut self, ctx: CtxId) {
        for c in &mut self.contexts {
            if c.commit_gate == Some(ctx) {
                c.commit_gate = None;
            }
        }
    }

    pub(crate) fn release_alternate(&mut self, ctx: CtxId) {
        self.flush_path_record(ctx);
        self.clear_gates_to(ctx);
        // Pull any still-queued instructions out first (they hold reader
        // references and must never issue against freed registers).
        self.undispatch(ctx);
        self.squash_ctx_from(ctx, 0);
        self.drop_stream(ctx);
        let c = &mut self.contexts[ctx.index()];
        c.sq.clear();
        c.pending_stores.clear();
        c.decode_pipe.clear();
        c.state = CtxState::Idle;
        c.fork_link = None;
        c.commit_gate = None;
        c.fetch_stopped = false;
        c.back_merge = None;
        c.squash_merge = None;
        c.fetched_total = 0;
        c.al.clear();
    }

    /// Picks a context for a new fork in `ctx`'s group: an idle context if
    /// one exists, otherwise (recycle mode) the least-recently-used
    /// reclaimable inactive context.
    pub(crate) fn pick_spare(&mut self, parent: CtxId) -> Option<CtxId> {
        let span = self.group_span(parent);
        if let Some(idle) = span
            .iter()
            .find(|&c| self.contexts[c.index()].state == CtxState::Idle && c != parent)
        {
            return Some(idle);
        }
        if !self.config.features.recycle {
            return None;
        }
        let lru = span
            .iter()
            .filter(|&c| c != parent && self.contexts[c.index()].reclaimable())
            .min_by_key(|&c| self.contexts[c.index()].last_used)?;
        self.release_alternate(lru);
        Some(lru)
    }

    /// Frees registers for a starving primary: releases the least recently
    /// used spare context — preferring inactive traces, then resolved
    /// alternates, then (in extremis) unresolved alternates, which plain
    /// TME would have been allowed to squash anyway.
    pub(crate) fn relieve_register_pressure(&mut self, primary: CtxId) {
        let span = self.group_span(primary);
        let pick = |sim: &Simulator, pred: &dyn Fn(&crate::context::Context) -> bool| {
            span.iter()
                .filter(|&c| c != primary && pred(&sim.contexts[c.index()]))
                .min_by_key(|&c| sim.contexts[c.index()].last_used)
        };
        let victim = pick(self, &|c| c.reclaimable()).or_else(|| {
            pick(self, &|c| {
                matches!(c.state, CtxState::Alternate { resolved: true, .. }) && c.in_flight == 0
            })
        });
        if let Some(v) = victim {
            if matches!(self.contexts[v.index()].state, CtxState::Alternate { .. }) {
                self.stats.forks_stolen += 1;
            }
            self.release_alternate(v);
        }
    }

    /// Spawns `alt` as an alternate path of `parent` starting at `alt_pc`.
    ///
    /// `fork_tag` is the forking branch's tag; `history` is the global
    /// history at the branch with the alternate direction pushed.
    pub(crate) fn fork_into(
        &mut self,
        alt: CtxId,
        parent: CtxId,
        fork_tag: InstTag,
        alt_pc: u64,
        history: GlobalHistory,
    ) {
        debug_assert_eq!(self.contexts[alt.index()].state, CtxState::Idle);
        self.drop_stream(alt);
        self.copy_region_with_refs(parent, alt);
        self.written.reset_column(alt);
        let ras = self.contexts[parent.index()].ras.clone();
        let prog = self.contexts[parent.index()].prog;
        let group = self.contexts[parent.index()].group;
        let cycle = self.cycle;
        let c = &mut self.contexts[alt.index()];
        c.state = CtxState::Alternate {
            parent,
            fork_tag,
            resolved: false,
        };
        c.prog = prog;
        c.group = group;
        c.fetch_pc = alt_pc;
        c.fetch_stall_until = cycle + self.config.spawn_latency as u64; // MSB copy
        c.fetch_stopped = false;
        c.ghr = history;
        c.ras = ras;
        c.al.clear();
        c.al_next_pc = alt_pc;
        c.sq.clear();
        c.pending_stores.clear();
        c.fork_link = Some(crate::lsq::ForkLink { parent, fork_tag });
        c.commit_gate = None;
        c.decode_pipe.clear();
        c.back_merge = None;
        c.squash_merge = None;
        c.fetched_total = 0;
        c.path = crate::context::PathRecord {
            live: true,
            ..Default::default()
        };
        c.last_used = cycle;
        c.log_fe(cycle, format!("fork-into start {alt_pc:#x}"));
        self.stats.forks += 1;
    }

    /// Re-spawns the inactive context `alt` (whose trace starts at the
    /// fork target): its retained instructions are replayed through the
    /// recycle datapath instead of being fetched (Section 3.1).
    pub(crate) fn respawn(
        &mut self,
        alt: CtxId,
        parent: CtxId,
        fork_tag: InstTag,
        history: GlobalHistory,
    ) {
        debug_assert!(self.contexts[alt.index()].reclaimable());
        self.undispatch(alt);
        // Drain the retained trace into a replay buffer, releasing held
        // registers (the replay allocates fresh ones).
        // Collect the replay trace. It must be *contiguous*: stop at the
        // first missing slot or control-flow discontinuity — replaying
        // across a hole would skip architectural instructions if this path
        // is later promoted.
        let next = self.contexts[alt.index()].al.next_seq();
        // Entries are parked in the replay pool (slab handles, not clones);
        // the deque itself is recycled through the scratch spares.
        let mut buffer: VecDeque<crate::arena::Handle> =
            self.scratch.spare_replay_queues.pop().unwrap_or_default();
        debug_assert!(buffer.is_empty());
        let mut expected: Option<u64> = None;
        for seq in 0..next {
            let Some(&e) = self.contexts[alt.index()].al.at_seq(seq) else {
                break;
            };
            if expected.is_some_and(|pc| pc != e.pc) {
                break;
            }
            expected = Some(crate::frontend::entry_next_pc(&e));
            buffer.push_back(self.replay_pool.insert(e));
        }
        // Token accounting: each entry's displaced mapping is owned by the
        // entry (released here, since these entries will never commit or be
        // squash-restored); entries' own allocations are owned by the map
        // region, which the fork-copy below releases. Walk the *whole*
        // retained trace, not just the replayed prefix.
        for seq in 0..next {
            let Some(e) = self.contexts[alt.index()].al.at_seq(seq) else {
                continue;
            };
            if e.regs_held {
                if let Some(old) = e.old_preg {
                    self.regs.release(old);
                }
            }
        }
        let keep_path = self.contexts[alt.index()].path;
        let start_pc = buffer
            .front()
            .and_then(|&h| self.replay_pool.get(h))
            .map(|e| e.pc)
            .unwrap_or(0);
        // Fetch resumes exactly after the replayed (possibly truncated)
        // trace.
        let resume_pc = buffer
            .back()
            .and_then(|&h| self.replay_pool.get(h))
            .map(crate::frontend::entry_next_pc)
            .unwrap_or(self.contexts[alt.index()].al_next_pc);
        // Reset as a fresh fork, then restore the path record and attach
        // the replay stream.
        self.contexts[alt.index()].state = CtxState::Idle;
        self.fork_into(alt, parent, fork_tag, start_pc, history);
        self.stats.forks -= 1; // fork_into counted; a respawn is recounted below
        let c = &mut self.contexts[alt.index()];
        c.path = keep_path;
        c.path.live = true;
        c.path.respawned = true;
        let stream_ghr = c.ghr;
        // Prime the GHR/RAS with the replayed trace (as stream creation
        // does) so fetch past the trace predicts with consistent state.
        for &h in &buffer {
            let e = *self.replay_pool.get(h).expect("replay handle is live");
            let c = &mut self.contexts[alt.index()];
            match e.inst.op {
                multipath_isa::Opcode::Jsr => c.ras.push(e.pc + multipath_isa::INST_BYTES),
                multipath_isa::Opcode::Ret => {
                    c.ras.pop();
                }
                op if op.is_cond_branch() => {
                    let taken = e
                        .taken_path
                        .or(e.branch.as_ref().map(|b| b.predicted_taken))
                        .unwrap_or(false);
                    c.ghr.push(taken);
                }
                _ => {}
            }
        }
        let c = &mut self.contexts[alt.index()];
        c.recycle_stream = Some(RecycleStream {
            source: StreamSource::Buffer(buffer),
            next_seq: 0,
            end_seq: 0,
            reuse_allowed: false,
            back_merge: false,
            expected_pc: start_pc,
            ghr: stream_ghr,
            pre_items: 0,
            resume_pc,
            fresh: [false; multipath_isa::NUM_LOGICAL_REGS],
        });
        // Fetch resumes after the replayed trace, consuming no bandwidth
        // for the trace itself.
        c.fetch_pc = resume_pc;
        c.al_next_pc = start_pc;
        let cyc = self.cycle;
        self.contexts[alt.index()].log_fe(
            cyc,
            format!("respawn start {start_pc:#x} resume {resume_pc:#x}"),
        );
        self.stats.forks += 1;
        self.stats.respawns += 1;
    }

    /// A covered misprediction: the alternate `alt` (forked at
    /// `branch_seq` in `old_primary`) becomes the primary thread.
    pub(crate) fn swap_primary(&mut self, old_primary: CtxId, branch_seq: u64, alt: CtxId) {
        // The winning path's record is consumed now.
        self.contexts[alt.index()].path.used_tme = true;
        self.flush_path_record(alt);

        // Squash the old primary's wrong path (everything younger than the
        // branch); its retained tail becomes a primary-path merge source.
        self.squash_ctx_from(old_primary, branch_seq + 1);
        self.drop_stream(old_primary);
        let cycle = self.cycle;
        {
            let c = &mut self.contexts[old_primary.index()];
            c.decode_pipe.clear();
            c.fetch_stopped = true;
            c.state = CtxState::Draining;
            c.last_used = cycle;
            if let Some(e) = c.al.at_seq(branch_seq + 1) {
                let pc = e.pc;
                c.squash_merge = Some(crate::context::MergePoint {
                    seq: branch_seq + 1,
                    pc,
                });
            } else {
                c.squash_merge = None;
            }
        }

        // Promote the alternate.
        let group_idx = self.contexts[alt.index()].group as usize;
        self.groups[group_idx].primary = alt;
        // The promoted path's writes are now architectural, but they were
        // made while it was an alternate and never marked in the
        // written-bit array. Mark them now, or other traces' entries that
        // read these registers would appear reusable with stale values.
        {
            let span = self.group_span(alt);
            let al = &self.contexts[alt.index()].al;
            for s in al.head_seq()..al.next_seq() {
                if let Some(d) = al.at_seq(s).and_then(|e| e.dest) {
                    self.written.set_row(d, span.iter().filter(|&c| c != alt));
                }
            }
        }
        let cyc = self.cycle;
        self.contexts[alt.index()].log_fe(cyc, "promoted".to_owned());
        let a = &mut self.contexts[alt.index()];
        a.state = CtxState::Primary;
        a.commit_gate = Some(old_primary);
        a.fetched_total = 0; // no longer subject to alternate caps
        a.fetch_stopped = false; // the cap may have muted it as an alternate
        a.last_used = cycle;

        self.stats.mispredicts_covered += 1;
        if self.probing() {
            let pc = self.contexts[old_primary.index()]
                .al
                .at_seq(branch_seq)
                .map(|e| e.pc)
                .unwrap_or(0);
            self.probe(
                old_primary,
                pc,
                crate::probe::EventKind::Promote { alt: alt.0 },
            );
        }
    }
}
