//! Pipeline observability: typed events, pluggable sinks, interval time
//! series, Perfetto/Chrome-trace export, and host-side stage profiling.
//!
//! The simulator's stages emit [`Event`]s through `Simulator::probe`
//! (`crate::sim`), which is a no-op unless probes were attached with
//! [`Simulator::enable_probes`](crate::Simulator::enable_probes) — the
//! hot path pays one predictable branch
//! per emission site and nothing else. Sinks implement [`ProbeSink`];
//! [`NullSink`]'s methods are empty `#[inline]` bodies, so generic code
//! driven with it monomorphizes to nothing. The built-in sinks:
//!
//! * [`RingSink`] — a bounded ring of the most recent (filtered) events,
//!   for interactive inspection and post-mortem debugging.
//! * [`IntervalSink`] — per-N-cycle deltas of the full [`Stats`] counter
//!   vector plus occupancy histograms by context role and attribution
//!   histograms by instruction class. Interval sums reconstruct the final
//!   aggregate `Stats` exactly (they are telescoping snapshots).
//! * [`SpanRecorder`] — builds a Chrome-trace/Perfetto JSON timeline: one
//!   track per hardware context with Primary/Alternate/Drain/… spans, a
//!   twin track for recycle-stream activity, and instant events for
//!   forks, merges, squashes, and the other point events.
//!
//! [`stats_json`] renders the counter vector (and optionally the interval
//! series) as versioned machine-readable JSON (`multipath-stats/v1`),
//! consumed by the CI stats-drift gate. [`StageProfile`] accumulates host
//! wall-clock per pipeline stage so simulator-speed regressions are
//! attributable next to the simulated IPC they produce.

use crate::stats::Stats;
use crate::trace::CtxStateKind;
use multipath_isa::Opcode;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::time::Duration;

/// Coarse instruction classification for attribution histograms
/// (the "Decanting"-style breakdown of recycle/reuse by type).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstClass {
    /// Integer ALU operations (register or immediate forms).
    IntAlu,
    /// Loads.
    Load,
    /// Stores.
    Store,
    /// Conditional branches.
    Branch,
    /// Unconditional branches, calls, and indirect jumps.
    Jump,
    /// Floating-point operate/compare/convert.
    Fp,
    /// Everything else (halt, nop-like).
    Other,
}

impl InstClass {
    /// Number of classes (width of per-class histograms).
    pub const COUNT: usize = 7;

    /// All classes, index-aligned with [`InstClass::index`].
    pub const ALL: [InstClass; InstClass::COUNT] = [
        InstClass::IntAlu,
        InstClass::Load,
        InstClass::Store,
        InstClass::Branch,
        InstClass::Jump,
        InstClass::Fp,
        InstClass::Other,
    ];

    /// Classifies an opcode.
    pub fn of(op: Opcode) -> InstClass {
        use multipath_isa::OperandClass as OC;
        match op.operand_class() {
            OC::Rrr | OC::Rri => InstClass::IntAlu,
            OC::Mem => {
                if op.is_store() {
                    InstClass::Store
                } else {
                    InstClass::Load
                }
            }
            OC::CondBr => InstClass::Branch,
            OC::Br | OC::Jump => InstClass::Jump,
            OC::Fp | OC::FpCmp | OC::Cvt => InstClass::Fp,
            OC::None => InstClass::Other,
        }
    }

    /// Dense index into per-class histograms.
    pub fn index(self) -> usize {
        match self {
            InstClass::IntAlu => 0,
            InstClass::Load => 1,
            InstClass::Store => 2,
            InstClass::Branch => 3,
            InstClass::Jump => 4,
            InstClass::Fp => 5,
            InstClass::Other => 6,
        }
    }

    /// Name used in stats.json.
    pub fn name(self) -> &'static str {
        match self {
            InstClass::IntAlu => "int_alu",
            InstClass::Load => "load",
            InstClass::Store => "store",
            InstClass::Branch => "branch",
            InstClass::Jump => "jump",
            InstClass::Fp => "fp",
            InstClass::Other => "other",
        }
    }
}

/// Why a fork opportunity was declined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefuseReason {
    /// The per-cycle fork limit was already reached.
    CycleCap,
    /// No spare hardware context was available (and none reclaimable).
    NoSpare,
    /// A path starting at the same address already exists (REC policy).
    DuplicatePath,
}

impl RefuseReason {
    /// Number of refusal reasons (width of attribution buckets).
    pub const COUNT: usize = 3;

    /// All reasons, index-aligned with [`RefuseReason::index`].
    pub const ALL: [RefuseReason; RefuseReason::COUNT] = [
        RefuseReason::CycleCap,
        RefuseReason::NoSpare,
        RefuseReason::DuplicatePath,
    ];

    /// Dense index into per-reason buckets.
    pub fn index(self) -> usize {
        match self {
            RefuseReason::CycleCap => 0,
            RefuseReason::NoSpare => 1,
            RefuseReason::DuplicatePath => 2,
        }
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            RefuseReason::CycleCap => "cycle_cap",
            RefuseReason::NoSpare => "no_spare",
            RefuseReason::DuplicatePath => "duplicate_path",
        }
    }
}

/// Why a recycled instruction was renamed fresh instead of reusing its
/// retained result — the paper's reuse-miss taxonomy. Exactly one cause is
/// attributed per recycled-but-not-reused instruction, so the bucket sums
/// reconcile with `Stats`: `Σ buckets == recycled − reused`.
///
/// Causes are attributed in a fixed priority order (the order below), so
/// an instruction failing several checks lands in one deterministic
/// bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReuseDeny {
    /// The stream is not reuse-capable: the RU feature is off, the stream
    /// replays from a re-spawn buffer, or it is a self/backward merge
    /// (same-context streams never reuse).
    Disabled,
    /// The retained entry never produced a result (not yet executed,
    /// fetched-only, or poisoned by a parent-path squash).
    NotExecuted,
    /// The retained entry was itself a reuse copy; reuse does not chain.
    ChainedReuse,
    /// The instruction produces no reusable register result (no
    /// destination, control, or store).
    NoResult,
    /// The old physical register was already released back to the pool.
    RegsReleased,
    /// A source logical register was overwritten since the trace was
    /// produced (written-bit set, and not refreshed by this stream).
    SourceOverwritten,
    /// A load whose memory dependence the MDB no longer vouches for
    /// (address unknown, or an intervening store invalidated it).
    MemInvalidated,
}

impl ReuseDeny {
    /// Number of deny causes (width of taxonomy buckets).
    pub const COUNT: usize = 7;

    /// All causes, index-aligned with [`ReuseDeny::index`].
    pub const ALL: [ReuseDeny; ReuseDeny::COUNT] = [
        ReuseDeny::Disabled,
        ReuseDeny::NotExecuted,
        ReuseDeny::ChainedReuse,
        ReuseDeny::NoResult,
        ReuseDeny::RegsReleased,
        ReuseDeny::SourceOverwritten,
        ReuseDeny::MemInvalidated,
    ];

    /// Dense index into taxonomy buckets.
    pub fn index(self) -> usize {
        match self {
            ReuseDeny::Disabled => 0,
            ReuseDeny::NotExecuted => 1,
            ReuseDeny::ChainedReuse => 2,
            ReuseDeny::NoResult => 3,
            ReuseDeny::RegsReleased => 4,
            ReuseDeny::SourceOverwritten => 5,
            ReuseDeny::MemInvalidated => 6,
        }
    }

    /// Name used in the explain document.
    pub fn name(self) -> &'static str {
        match self {
            ReuseDeny::Disabled => "reuse_disabled",
            ReuseDeny::NotExecuted => "not_executed",
            ReuseDeny::ChainedReuse => "chained_reuse",
            ReuseDeny::NoResult => "no_result",
            ReuseDeny::RegsReleased => "regs_released",
            ReuseDeny::SourceOverwritten => "source_overwritten",
            ReuseDeny::MemInvalidated => "mem_invalidated",
        }
    }
}

/// What happened. Per-instruction kinds carry the instruction class; path
/// kinds carry the contexts involved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// `count` instructions fetched from the I-cache this cycle.
    Fetch { count: u32 },
    /// An instruction entered rename from decode (fresh fetch path).
    Rename { class: InstClass },
    /// An instruction entered rename via the recycle datapath.
    Recycle { class: InstClass },
    /// A recycled instruction's old result was reused (no execution).
    Reuse { class: InstClass },
    /// An instruction was selected and sent to a functional unit.
    Issue { class: InstClass },
    /// An instruction committed.
    Commit { class: InstClass },
    /// A control instruction resolved. `cond` distinguishes conditional
    /// branches from jumps; `conf` is the JRS confidence counter read just
    /// before the resolution trained it.
    Resolve {
        mispredicted: bool,
        covered: bool,
        cond: bool,
        conf: u8,
    },
    /// A low-confidence branch forked its alternate path into `alt`.
    Fork { alt: u8 },
    /// An inactive trace was re-spawned as an alternate in `alt`.
    Respawn { alt: u8 },
    /// A recycle stream started (merge) from `source`, `len` instructions;
    /// `reuse` is whether the stream is reuse-capable.
    Merge { source: u8, len: u64, reuse: bool },
    /// A backward-branch (primary-to-primary) merge, `len` instructions.
    BackMerge { len: u64 },
    /// `count` instructions squashed after rename.
    Squash { count: u64 },
    /// Rename stalled this cycle for lack of physical registers.
    PregStall,
    /// A fork opportunity was declined.
    ForkRefused { reason: RefuseReason },
    /// A recycled instruction could not reuse its retained result.
    ReuseDenied { class: InstClass, cause: ReuseDeny },
    /// A covered misprediction promoted the alternate in `alt` to primary.
    Promote { alt: u8 },
}

impl EventKind {
    /// Number of event kinds (width of [`EventFilter`]).
    pub const COUNT: usize = 16;

    /// Names accepted by [`EventFilter::parse`], index-aligned with
    /// [`EventKind::tag`].
    pub const NAMES: [&'static str; EventKind::COUNT] = [
        "fetch",
        "rename",
        "recycle",
        "reuse",
        "issue",
        "commit",
        "resolve",
        "fork",
        "respawn",
        "merge",
        "back_merge",
        "squash",
        "preg_stall",
        "fork_refused",
        "reuse_denied",
        "promote",
    ];

    /// Dense kind index (filter bit position).
    pub fn tag(self) -> usize {
        match self {
            EventKind::Fetch { .. } => 0,
            EventKind::Rename { .. } => 1,
            EventKind::Recycle { .. } => 2,
            EventKind::Reuse { .. } => 3,
            EventKind::Issue { .. } => 4,
            EventKind::Commit { .. } => 5,
            EventKind::Resolve { .. } => 6,
            EventKind::Fork { .. } => 7,
            EventKind::Respawn { .. } => 8,
            EventKind::Merge { .. } => 9,
            EventKind::BackMerge { .. } => 10,
            EventKind::Squash { .. } => 11,
            EventKind::PregStall => 12,
            EventKind::ForkRefused { .. } => 13,
            EventKind::ReuseDenied { .. } => 14,
            EventKind::Promote { .. } => 15,
        }
    }

    /// The kind's display name.
    pub fn name(self) -> &'static str {
        EventKind::NAMES[self.tag()]
    }
}

/// One pipeline event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Cycle the event occurred in.
    pub cycle: u64,
    /// Hardware context involved.
    pub ctx: u8,
    /// Program counter of the instruction (or fork/merge point).
    pub pc: u64,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// One-line text form (`--print-events`, debugging).
    pub fn render(&self) -> String {
        format!(
            "{:>8}  ctx{} {:#010x}  {:?}",
            self.cycle, self.ctx, self.pc, self.kind
        )
    }
}

/// A bitmask over [`EventKind`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventFilter(pub u32);

impl EventFilter {
    /// Accepts every kind.
    pub fn all() -> EventFilter {
        EventFilter((1 << EventKind::COUNT) - 1)
    }

    /// Accepts nothing.
    pub fn none() -> EventFilter {
        EventFilter(0)
    }

    /// Whether `kind` passes the filter.
    pub fn accepts(self, kind: EventKind) -> bool {
        self.0 & (1 << kind.tag()) != 0
    }

    /// Parses a comma-separated kind list (`"fork,merge,squash"`, or
    /// `"all"`). Unknown names are reported, not ignored.
    pub fn parse(spec: &str) -> Result<EventFilter, String> {
        if spec.trim() == "all" {
            return Ok(EventFilter::all());
        }
        let mut mask = 0u32;
        for name in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            match EventKind::NAMES.iter().position(|&n| n == name) {
                Some(bit) => mask |= 1 << bit,
                None => {
                    return Err(format!(
                        "unknown event kind {name:?}; known: {}",
                        EventKind::NAMES.join(",")
                    ))
                }
            }
        }
        Ok(EventFilter(mask))
    }
}

/// A per-cycle view of one hardware context, fed to sinks at cycle end.
#[derive(Debug, Clone, Copy)]
pub struct CtxView {
    /// The context's role at the end of the cycle.
    pub role: CtxStateKind,
    /// Live (uncommitted) active-list entries.
    pub live: u32,
    /// Instructions remaining in an attached recycle stream.
    pub stream: u64,
}

/// A sink for pipeline events. Both methods default to nothing, so a sink
/// may observe only events or only cycle boundaries.
pub trait ProbeSink {
    /// Called for every emitted event.
    #[inline]
    fn event(&mut self, _ev: &Event) {}

    /// Called once per cycle after all stages ran, with cumulative stats
    /// and per-context views.
    #[inline]
    fn cycle_end(&mut self, _cycle: u64, _stats: &Stats, _ctxs: &[CtxView]) {}
}

/// The do-nothing sink: generic code driven with it monomorphizes to
/// empty inlined calls (the zero-overhead baseline of the perf gate).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl ProbeSink for NullSink {}

/// A bounded ring buffer of the most recent events passing a filter.
#[derive(Debug)]
pub struct RingSink {
    filter: EventFilter,
    cap: usize,
    buf: VecDeque<Event>,
    /// Events evicted because the ring was full.
    pub dropped: u64,
}

impl RingSink {
    /// A ring holding at most `cap` events matching `filter`.
    pub fn new(cap: usize, filter: EventFilter) -> RingSink {
        RingSink {
            filter,
            cap: cap.max(1),
            buf: VecDeque::with_capacity(cap.max(1)),
            dropped: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl ProbeSink for RingSink {
    fn event(&mut self, ev: &Event) {
        if !self.filter.accepts(ev.kind) {
            return;
        }
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(*ev);
    }
}

/// One closed interval of the time series: counter deltas plus occupancy
/// and attribution histograms.
#[derive(Debug, Clone)]
pub struct Interval {
    /// First cycle covered (inclusive).
    pub start_cycle: u64,
    /// Last cycle covered (inclusive).
    pub end_cycle: u64,
    /// Delta of every [`Stats`] counter over the interval, index-aligned
    /// with [`Stats::COUNTER_NAMES`].
    pub counters: [u64; Stats::NUM_COUNTERS],
    /// Context-cycles spent in each role ([`CtxStateKind::index`] order).
    pub role_cycles: [u64; CtxStateKind::COUNT],
    /// Sum of live active-list entries per role (occupancy attribution).
    pub live_by_role: [u64; CtxStateKind::COUNT],
    /// Renamed instructions per class ([`InstClass::index`] order).
    pub renamed_by_class: [u64; InstClass::COUNT],
    /// ... of which arrived via the recycle datapath.
    pub recycled_by_class: [u64; InstClass::COUNT],
    /// ... of which were reused outright.
    pub reused_by_class: [u64; InstClass::COUNT],
    /// Committed instructions per class.
    pub committed_by_class: [u64; InstClass::COUNT],
}

/// Aggregates events and per-cycle stats into fixed-width intervals.
///
/// Counter columns are *deltas of cumulative snapshots*, so the sum over
/// all intervals telescopes to the final aggregate exactly — including
/// anything added by `finalize_stats` after the last step, which lands in
/// the final (possibly partial) interval closed by [`IntervalSink::finish`].
#[derive(Debug)]
pub struct IntervalSink {
    width: u64,
    start_cycle: u64,
    last: [u64; Stats::NUM_COUNTERS],
    cur: Interval,
    closed: Vec<Interval>,
}

impl IntervalSink {
    /// A sink closing one interval every `width` cycles.
    pub fn new(width: u64) -> IntervalSink {
        let width = width.max(1);
        IntervalSink {
            width,
            start_cycle: 0,
            last: [0; Stats::NUM_COUNTERS],
            cur: IntervalSink::blank(0),
            closed: Vec::new(),
        }
    }

    fn blank(start: u64) -> Interval {
        Interval {
            start_cycle: start,
            end_cycle: start,
            counters: [0; Stats::NUM_COUNTERS],
            role_cycles: [0; CtxStateKind::COUNT],
            live_by_role: [0; CtxStateKind::COUNT],
            renamed_by_class: [0; InstClass::COUNT],
            recycled_by_class: [0; InstClass::COUNT],
            reused_by_class: [0; InstClass::COUNT],
            committed_by_class: [0; InstClass::COUNT],
        }
    }

    /// The interval width in cycles.
    pub fn width(&self) -> u64 {
        self.width
    }

    /// The closed intervals, in time order.
    pub fn intervals(&self) -> &[Interval] {
        &self.closed
    }

    /// Element-wise sum of every closed interval's counter deltas; equals
    /// the final `Stats::counters()` after [`IntervalSink::finish`].
    pub fn counter_sums(&self) -> [u64; Stats::NUM_COUNTERS] {
        let mut sums = [0u64; Stats::NUM_COUNTERS];
        for iv in &self.closed {
            for (s, v) in sums.iter_mut().zip(iv.counters.iter()) {
                *s += v;
            }
        }
        sums
    }

    fn close(&mut self, end_cycle: u64, stats: &Stats) {
        let now = stats.counters();
        let mut iv = std::mem::replace(&mut self.cur, IntervalSink::blank(end_cycle));
        iv.start_cycle = self.start_cycle;
        iv.end_cycle = end_cycle;
        for (d, (new, old)) in iv.counters.iter_mut().zip(now.iter().zip(self.last.iter())) {
            *d = new - old;
        }
        self.last = now;
        self.start_cycle = end_cycle;
        self.closed.push(iv);
    }

    /// Closes the trailing partial interval against the final stats (call
    /// once, after the run — `Simulator::finish_probes` does this).
    pub fn finish(&mut self, cycle: u64, stats: &Stats) {
        if stats.counters() != self.last {
            self.close(cycle, stats);
        }
    }
}

impl ProbeSink for IntervalSink {
    fn event(&mut self, ev: &Event) {
        match ev.kind {
            EventKind::Rename { class } => self.cur.renamed_by_class[class.index()] += 1,
            EventKind::Recycle { class } => {
                self.cur.renamed_by_class[class.index()] += 1;
                self.cur.recycled_by_class[class.index()] += 1;
            }
            EventKind::Reuse { class } => {
                self.cur.renamed_by_class[class.index()] += 1;
                self.cur.recycled_by_class[class.index()] += 1;
                self.cur.reused_by_class[class.index()] += 1;
            }
            EventKind::Commit { class } => self.cur.committed_by_class[class.index()] += 1,
            _ => {}
        }
    }

    fn cycle_end(&mut self, cycle: u64, stats: &Stats, ctxs: &[CtxView]) {
        for c in ctxs {
            self.cur.role_cycles[c.role.index()] += 1;
            self.cur.live_by_role[c.role.index()] += c.live as u64;
        }
        if cycle - self.start_cycle >= self.width {
            self.close(cycle, stats);
        }
    }
}

/// A closed span on one Perfetto track.
#[derive(Debug, Clone)]
struct Span {
    tid: u32,
    name: &'static str,
    start: u64,
    end: u64,
}

/// An instant (point) event on one track.
#[derive(Debug, Clone)]
struct Instant {
    tid: u32,
    cycle: u64,
    name: String,
}

/// Builds a Chrome-trace JSON timeline: per context, an even track
/// (`tid = 2*ctx`) carrying role spans and instant events, and an odd
/// track (`tid = 2*ctx + 1`) carrying recycle-stream spans. Open a trace
/// at <https://ui.perfetto.dev> or `chrome://tracing`.
#[derive(Debug)]
pub struct SpanRecorder {
    filter: EventFilter,
    /// Per-context open role span: (role, start cycle).
    open_role: Vec<(CtxStateKind, u64)>,
    /// Per-context open recycle-stream span start, if a stream is active.
    open_stream: Vec<Option<u64>>,
    spans: Vec<Span>,
    instants: Vec<Instant>,
    finished_at: u64,
}

impl SpanRecorder {
    /// A recorder whose instant events pass `filter` (role and stream
    /// spans are always recorded).
    pub fn new(filter: EventFilter) -> SpanRecorder {
        SpanRecorder {
            filter,
            open_role: Vec::new(),
            open_stream: Vec::new(),
            spans: Vec::new(),
            instants: Vec::new(),
            finished_at: 0,
        }
    }

    /// Closes all open spans at `cycle` (call once, after the run).
    pub fn finish(&mut self, cycle: u64) {
        self.finished_at = cycle;
        for (ctx, &(role, start)) in self.open_role.iter().enumerate() {
            if cycle > start {
                self.spans.push(Span {
                    tid: 2 * ctx as u32,
                    name: role.name(),
                    start,
                    end: cycle,
                });
            }
        }
        for (ctx, open) in self.open_stream.iter().enumerate() {
            if let Some(start) = *open {
                self.spans.push(Span {
                    tid: 2 * ctx as u32 + 1,
                    name: "recycle_stream",
                    start,
                    end: cycle.max(start + 1),
                });
            }
        }
        self.open_role.clear();
        self.open_stream.clear();
    }

    /// Number of closed spans.
    pub fn span_count(&self) -> usize {
        self.spans.len()
    }

    /// Number of instant events.
    pub fn instant_count(&self) -> usize {
        self.instants.len()
    }

    /// Renders the Chrome-trace JSON (`{"traceEvents": [...]}`).
    pub fn chrome_trace_json(&self, num_ctxs: usize) -> String {
        let mut out = String::with_capacity(64 * (self.spans.len() + self.instants.len()) + 256);
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        let mut first = true;
        let mut sep = |out: &mut String| {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
        };
        for ctx in 0..num_ctxs {
            for (tid, label) in [
                (2 * ctx as u32, format!("ctx{ctx} role")),
                (2 * ctx as u32 + 1, format!("ctx{ctx} stream")),
            ] {
                sep(&mut out);
                let _ = write!(
                    out,
                    "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":\"{label}\"}}}}"
                );
            }
        }
        for s in &self.spans {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{},\"dur\":{},\"name\":\"{}\"}}",
                s.tid,
                s.start,
                s.end - s.start,
                s.name
            );
        }
        for i in &self.instants {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"ph\":\"i\",\"pid\":0,\"tid\":{},\"ts\":{},\"s\":\"t\",\"name\":\"{}\"}}",
                i.tid, i.cycle, i.name
            );
        }
        out.push_str("]}");
        out
    }
}

impl ProbeSink for SpanRecorder {
    fn event(&mut self, ev: &Event) {
        if !self.filter.accepts(ev.kind) {
            return;
        }
        let name = match ev.kind {
            EventKind::Fork { alt } => format!("fork->ctx{alt}"),
            EventKind::Respawn { alt } => format!("respawn->ctx{alt}"),
            EventKind::Merge { source, len, reuse } => {
                let tag = if reuse { ", reuse" } else { "" };
                format!("merge<-ctx{source} ({len}{tag})")
            }
            EventKind::BackMerge { len } => format!("back_merge ({len})"),
            EventKind::Squash { count } => format!("squash ({count})"),
            EventKind::Resolve {
                mispredicted: true,
                covered,
                ..
            } => {
                if covered {
                    "mispredict (covered)".to_owned()
                } else {
                    "mispredict".to_owned()
                }
            }
            EventKind::PregStall => "preg_stall".to_owned(),
            EventKind::ForkRefused { reason } => format!("fork_refused ({})", reason.name()),
            EventKind::Promote { alt } => format!("promote<-ctx{alt}"),
            // High-frequency per-instruction kinds would swamp the
            // timeline; the interval sink carries their aggregates.
            _ => return,
        };
        self.instants.push(Instant {
            tid: 2 * ev.ctx as u32,
            cycle: ev.cycle,
            name,
        });
    }

    fn cycle_end(&mut self, cycle: u64, _stats: &Stats, ctxs: &[CtxView]) {
        if self.open_role.is_empty() {
            // First observed cycle: open a span per context. Spans are
            // stamped with end-of-cycle state, so cycle N's state covers
            // [N-1, N).
            let start = cycle.saturating_sub(1);
            self.open_role = ctxs.iter().map(|c| (c.role, start)).collect();
            self.open_stream = ctxs
                .iter()
                .map(|c| (c.stream > 0).then_some(start))
                .collect();
            return;
        }
        for (i, c) in ctxs.iter().enumerate() {
            let (role, start) = self.open_role[i];
            if c.role != role {
                if cycle > start {
                    self.spans.push(Span {
                        tid: 2 * i as u32,
                        name: role.name(),
                        start,
                        end: cycle,
                    });
                }
                self.open_role[i] = (c.role, cycle);
            }
            let streaming = c.stream > 0;
            match (self.open_stream[i], streaming) {
                (None, true) => self.open_stream[i] = Some(cycle.saturating_sub(1)),
                (Some(start), false) => {
                    self.spans.push(Span {
                        tid: 2 * i as u32 + 1,
                        name: "recycle_stream",
                        start,
                        end: cycle,
                    });
                    self.open_stream[i] = None;
                }
                _ => {}
            }
        }
    }
}

/// What to attach when enabling probes.
#[derive(Debug, Clone, Copy)]
pub struct ProbeConfig {
    /// Keep the most recent N events in a ring (None: no ring).
    pub ring: Option<usize>,
    /// Aggregate the time series every N cycles (None: no series).
    pub interval: Option<u64>,
    /// Record Perfetto spans and instants.
    pub spans: bool,
    /// Build attribution tables and the path tree (`multipath explain`).
    pub explain: bool,
    /// Event filter applied by the ring and the span instants.
    pub filter: EventFilter,
}

impl Default for ProbeConfig {
    fn default() -> ProbeConfig {
        ProbeConfig {
            ring: None,
            interval: Some(100),
            spans: false,
            explain: false,
            filter: EventFilter::all(),
        }
    }
}

/// The attached probe set: fans every event / cycle boundary out to the
/// configured sinks. Itself a [`ProbeSink`], so external drivers can
/// compose it like any other sink.
#[derive(Debug)]
pub struct Probes {
    /// Ring of recent events, if configured.
    pub ring: Option<RingSink>,
    /// Interval time series, if configured.
    pub interval: Option<IntervalSink>,
    /// Perfetto span recorder, if configured.
    pub spans: Option<SpanRecorder>,
    /// Attribution tables (taxonomy, per-PC, per-class), if configured.
    pub attribution: Option<crate::explain::AttributionSink>,
    /// Path-tree recorder (fork/merge/squash DAG), if configured.
    pub tree: Option<crate::explain::PathTreeSink>,
    /// Scratch buffer for per-cycle context views (reused, no allocation
    /// in steady state).
    pub(crate) views: Vec<CtxView>,
}

impl Probes {
    /// Builds the sink set described by `config`.
    pub fn new(config: ProbeConfig) -> Probes {
        Probes {
            ring: config.ring.map(|cap| RingSink::new(cap, config.filter)),
            interval: config.interval.map(IntervalSink::new),
            spans: config.spans.then(|| SpanRecorder::new(config.filter)),
            attribution: config
                .explain
                .then(crate::explain::AttributionSink::default),
            tree: config.explain.then(crate::explain::PathTreeSink::new),
            views: Vec::new(),
        }
    }

    /// Closes the interval series and open spans (end of run).
    pub fn finish(&mut self, cycle: u64, stats: &Stats) {
        if let Some(iv) = &mut self.interval {
            iv.finish(cycle, stats);
        }
        if let Some(sp) = &mut self.spans {
            sp.finish(cycle);
        }
        if let Some(tr) = &mut self.tree {
            tr.finish(cycle);
        }
    }
}

impl ProbeSink for Probes {
    fn event(&mut self, ev: &Event) {
        if let Some(ring) = &mut self.ring {
            ring.event(ev);
        }
        if let Some(iv) = &mut self.interval {
            iv.event(ev);
        }
        if let Some(sp) = &mut self.spans {
            sp.event(ev);
        }
        if let Some(at) = &mut self.attribution {
            at.event(ev);
        }
        if let Some(tr) = &mut self.tree {
            tr.event(ev);
        }
    }

    fn cycle_end(&mut self, cycle: u64, stats: &Stats, ctxs: &[CtxView]) {
        if let Some(ring) = &mut self.ring {
            ring.cycle_end(cycle, stats, ctxs);
        }
        if let Some(iv) = &mut self.interval {
            iv.cycle_end(cycle, stats, ctxs);
        }
        if let Some(sp) = &mut self.spans {
            sp.cycle_end(cycle, stats, ctxs);
        }
    }
}

pub(crate) fn json_u64_array(out: &mut String, vals: impl Iterator<Item = u64>) {
    out.push('[');
    for (i, v) in vals.enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
}

pub(crate) fn json_str_array(out: &mut String, vals: impl Iterator<Item = &'static str>) {
    out.push('[');
    for (i, v) in vals.enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{v}\"");
    }
    out.push(']');
}

/// Renders the versioned machine-readable stats document
/// (`multipath-stats/v1`): the full counter vector with names, per-program
/// commits, the derived paper metrics, and (optionally) the interval time
/// series. Deterministic byte-for-byte for a given run — the unit of the
/// CI stats-drift gate.
pub fn stats_json(
    label: &str,
    features: &str,
    stats: &Stats,
    intervals: Option<&IntervalSink>,
) -> String {
    let mut out = String::with_capacity(2048);
    out.push_str("{\n  \"schema\": \"multipath-stats/v1\",\n");
    let _ = writeln!(out, "  \"label\": \"{label}\",");
    let _ = writeln!(out, "  \"features\": \"{features}\",");
    out.push_str("  \"counter_names\": ");
    json_str_array(&mut out, Stats::COUNTER_NAMES.iter().copied());
    out.push_str(",\n  \"counters\": ");
    json_u64_array(&mut out, stats.counters().iter().copied());
    out.push_str(",\n  \"committed_per_program\": ");
    json_u64_array(&mut out, stats.committed_per_program.iter().copied());
    out.push_str(",\n  \"derived\": {");
    let derived: [(&str, f64); 10] = [
        ("ipc", stats.ipc()),
        ("pct_recycled", stats.pct_recycled()),
        ("pct_reused", stats.pct_reused()),
        ("pct_miss_covered", stats.pct_miss_covered()),
        ("pct_forks_tme", stats.pct_forks_tme()),
        ("pct_forks_recycled", stats.pct_forks_recycled()),
        ("pct_forks_respawned", stats.pct_forks_respawned()),
        ("merges_per_alt_path", stats.merges_per_alt_path()),
        ("pct_back_merges", stats.pct_back_merges()),
        ("branch_accuracy", stats.branch_accuracy()),
    ];
    for (i, (name, v)) in derived.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{name}\": {v:.6}");
    }
    out.push_str("\n  }");
    if let Some(sink) = intervals {
        let _ = write!(
            out,
            ",\n  \"intervals\": {{\n    \"width\": {},\n    \"count\": {},",
            sink.width(),
            sink.intervals().len()
        );
        out.push_str("\n    \"role_names\": ");
        json_str_array(&mut out, CtxStateKind::ALL.iter().map(|r| r.name()));
        out.push_str(",\n    \"class_names\": ");
        json_str_array(&mut out, InstClass::ALL.iter().map(|c| c.name()));
        out.push_str(",\n    \"ends\": ");
        json_u64_array(&mut out, sink.intervals().iter().map(|iv| iv.end_cycle));
        for (key, get) in [
            (
                "counters",
                (|iv: &Interval| iv.counters.to_vec()) as fn(&Interval) -> Vec<u64>,
            ),
            ("role_cycles", |iv| iv.role_cycles.to_vec()),
            ("live_by_role", |iv| iv.live_by_role.to_vec()),
            ("renamed_by_class", |iv| iv.renamed_by_class.to_vec()),
            ("recycled_by_class", |iv| iv.recycled_by_class.to_vec()),
            ("reused_by_class", |iv| iv.reused_by_class.to_vec()),
            ("committed_by_class", |iv| iv.committed_by_class.to_vec()),
        ] {
            let _ = write!(out, ",\n    \"{key}\": [");
            for (i, iv) in sink.intervals().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json_u64_array(&mut out, get(iv).into_iter());
            }
            out.push(']');
        }
        out.push_str("\n  }");
    }
    out.push_str("\n}\n");
    out
}

/// Renders the interval time series as CSV: a `start,end` pair followed by
/// every counter delta, one row per closed interval, with a
/// [`Stats::COUNTER_NAMES`] header — `multipath trace --format csv`.
pub fn intervals_csv(sink: &IntervalSink) -> String {
    let mut out = String::with_capacity(64 * (sink.intervals().len() + 1));
    out.push_str("start_cycle,end_cycle");
    for name in Stats::COUNTER_NAMES {
        out.push(',');
        out.push_str(name);
    }
    out.push('\n');
    for iv in sink.intervals() {
        let _ = write!(out, "{},{}", iv.start_cycle, iv.end_cycle);
        for v in iv.counters.iter() {
            let _ = write!(out, ",{v}");
        }
        out.push('\n');
    }
    out
}

/// Host-side wall-clock accumulation per pipeline stage. Enabled with
/// `Simulator::enable_host_profile`; `report` renders shares next to the
/// simulated work so a slow stage is attributable (e.g. "rename is 40% of
/// host time at IPC 3.2" — the methodology note in EXPERIMENTS.md).
#[derive(Debug, Default, Clone)]
pub struct StageProfile {
    /// Host time in the commit stage.
    pub commit: Duration,
    /// Host time in writeback + branch resolution.
    pub writeback: Duration,
    /// Host time in issue/select/execute.
    pub issue: Duration,
    /// Host time in rename (including recycling and forking).
    pub rename: Duration,
    /// Host time in fetch + merge detection.
    pub fetch: Duration,
    /// Host time spent in the probe layer itself (sink dispatch).
    pub probes: Duration,
    /// Cycles profiled.
    pub steps: u64,
}

impl StageProfile {
    /// Total profiled host time across stages.
    pub fn total(&self) -> Duration {
        self.commit + self.writeback + self.issue + self.rename + self.fetch + self.probes
    }

    /// `(stage name, accumulated time)` rows, pipeline order.
    pub fn rows(&self) -> [(&'static str, Duration); 6] {
        [
            ("commit", self.commit),
            ("writeback", self.writeback),
            ("issue", self.issue),
            ("rename", self.rename),
            ("fetch", self.fetch),
            ("probes", self.probes),
        ]
    }

    /// Renders the per-stage host-time table, with simulated cycles/sec
    /// and the simulated IPC alongside for context.
    pub fn report(&self, sim_ipc: f64) -> String {
        let mut out = String::new();
        let total = self.total().as_secs_f64().max(1e-12);
        let _ = writeln!(
            out,
            "host profile: {} cycles in {:.3}s ({:.0} sim-cycles/s, sim IPC {:.3})",
            self.steps,
            total,
            self.steps as f64 / total,
            sim_ipc
        );
        for (name, d) in self.rows() {
            let ns_per_cycle = if self.steps == 0 {
                0.0
            } else {
                d.as_secs_f64() * 1e9 / self.steps as f64
            };
            let _ = writeln!(
                out,
                "  {name:<9} {:>8.3}s  {:>5.1}%  {ns_per_cycle:>8.1} ns/cycle",
                d.as_secs_f64(),
                100.0 * d.as_secs_f64() / total,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, kind: EventKind) -> Event {
        Event {
            cycle,
            ctx: 0,
            pc: 0x1_0000,
            kind,
        }
    }

    #[test]
    fn filter_parses_names_and_rejects_unknown() {
        let f = EventFilter::parse("fork,merge,squash").unwrap();
        assert!(f.accepts(EventKind::Fork { alt: 1 }));
        assert!(f.accepts(EventKind::Merge {
            source: 2,
            len: 5,
            reuse: true
        }));
        assert!(!f.accepts(EventKind::Fetch { count: 8 }));
        assert!(EventFilter::parse("bogus").is_err());
        assert!(EventFilter::parse("all")
            .unwrap()
            .accepts(EventKind::PregStall));
    }

    #[test]
    fn event_names_align_with_tags() {
        let samples = [
            EventKind::Fetch { count: 1 },
            EventKind::Rename {
                class: InstClass::IntAlu,
            },
            EventKind::Recycle {
                class: InstClass::Load,
            },
            EventKind::Reuse {
                class: InstClass::Store,
            },
            EventKind::Issue {
                class: InstClass::Fp,
            },
            EventKind::Commit {
                class: InstClass::Branch,
            },
            EventKind::Resolve {
                mispredicted: false,
                covered: false,
                cond: true,
                conf: 0,
            },
            EventKind::Fork { alt: 0 },
            EventKind::Respawn { alt: 0 },
            EventKind::Merge {
                source: 0,
                len: 0,
                reuse: false,
            },
            EventKind::BackMerge { len: 0 },
            EventKind::Squash { count: 0 },
            EventKind::PregStall,
            EventKind::ForkRefused {
                reason: RefuseReason::NoSpare,
            },
            EventKind::ReuseDenied {
                class: InstClass::Load,
                cause: ReuseDeny::MemInvalidated,
            },
            EventKind::Promote { alt: 1 },
        ];
        assert_eq!(samples.len(), EventKind::COUNT);
        for (i, s) in samples.iter().enumerate() {
            assert_eq!(s.tag(), i);
            assert_eq!(s.name(), EventKind::NAMES[i]);
        }
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let mut ring = RingSink::new(4, EventFilter::all());
        for c in 0..10 {
            ring.event(&ev(c, EventKind::PregStall));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped, 6);
        assert_eq!(ring.events().next().unwrap().cycle, 6);
    }

    #[test]
    fn interval_sums_telescope() {
        let mut sink = IntervalSink::new(10);
        let mut stats = Stats::new(1);
        for cycle in 1..=35 {
            stats.cycles = cycle;
            stats.committed += 2;
            stats.renamed += 3;
            sink.cycle_end(cycle, &stats, &[]);
        }
        // Simulate a finalize_stats bump after the last step.
        stats.merges += 5;
        sink.finish(35, &stats);
        assert_eq!(sink.intervals().len(), 4);
        assert_eq!(sink.counter_sums(), stats.counters());
    }

    #[test]
    fn span_recorder_closes_roles_and_streams() {
        let mut sp = SpanRecorder::new(EventFilter::all());
        let view = |role, stream| CtxView {
            role,
            live: 1,
            stream,
        };
        let s = Stats::new(1);
        sp.cycle_end(1, &s, &[view(CtxStateKind::Primary, 0)]);
        for c in 2..5 {
            sp.cycle_end(c, &s, &[view(CtxStateKind::Primary, 3)]);
        }
        sp.cycle_end(5, &s, &[view(CtxStateKind::Inactive, 0)]);
        sp.event(&ev(3, EventKind::Fork { alt: 1 }));
        sp.finish(8);
        // Primary [0,5), inactive [5,8), one stream span.
        assert_eq!(sp.span_count(), 3);
        assert_eq!(sp.instant_count(), 1);
        let json = sp.chrome_trace_json(1);
        assert!(json.starts_with('{'));
        assert!(json.contains("\"primary\""));
        assert!(json.contains("recycle_stream"));
        assert!(json.contains("fork->ctx1"));
    }

    #[test]
    fn stats_json_includes_counters_and_intervals() {
        let mut stats = Stats::new(2);
        stats.cycles = 100;
        stats.committed = 250;
        let mut sink = IntervalSink::new(50);
        stats.cycles = 50;
        sink.cycle_end(50, &stats, &[]);
        stats.cycles = 100;
        sink.finish(100, &stats);
        let doc = stats_json("demo", "REC+RS+RU", &stats, Some(&sink));
        assert!(doc.contains("\"schema\": \"multipath-stats/v1\""));
        assert!(doc.contains("\"cycles\""));
        assert!(doc.contains("\"width\": 50"));
        assert!(doc.contains("\"ipc\": 2.500000"));
    }

    #[test]
    fn refuse_and_deny_taxonomies_are_dense() {
        for (i, r) in RefuseReason::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
        for (i, d) in ReuseDeny::ALL.iter().enumerate() {
            assert_eq!(d.index(), i);
        }
        assert_eq!(RefuseReason::ALL.len(), RefuseReason::COUNT);
        assert_eq!(ReuseDeny::ALL.len(), ReuseDeny::COUNT);
    }

    #[test]
    fn intervals_csv_has_header_and_one_row_per_interval() {
        let mut sink = IntervalSink::new(10);
        let mut stats = Stats::new(1);
        for cycle in 1..=25 {
            stats.cycles = cycle;
            stats.renamed += 2;
            sink.cycle_end(cycle, &stats, &[]);
        }
        sink.finish(25, &stats);
        let csv = intervals_csv(&sink);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + sink.intervals().len());
        assert!(lines[0].starts_with("start_cycle,end_cycle,cycles,"));
        assert_eq!(
            lines[0].split(',').count(),
            2 + Stats::NUM_COUNTERS,
            "header column count"
        );
        // Every row has the same arity and the deltas sum per column.
        for row in &lines[1..] {
            assert_eq!(row.split(',').count(), 2 + Stats::NUM_COUNTERS);
        }
        let renamed_col = 2 + Stats::COUNTER_NAMES
            .iter()
            .position(|&n| n == "renamed")
            .unwrap();
        let sum: u64 = lines[1..]
            .iter()
            .map(|r| {
                r.split(',')
                    .nth(renamed_col)
                    .unwrap()
                    .parse::<u64>()
                    .unwrap()
            })
            .sum();
        assert_eq!(sum, stats.renamed);
    }

    #[test]
    fn null_sink_is_inert() {
        let mut s = NullSink;
        s.event(&ev(1, EventKind::PregStall));
        s.cycle_end(1, &Stats::new(1), &[]);
    }
}
