//! Cooperative cancellation for long-running simulations.
//!
//! A [`CancelToken`] is a cheap, cloneable handle shared between the code
//! driving a simulation (e.g. a serving worker) and anything that may
//! want to stop it early (a request deadline, a shutdown path, a test).
//! [`Simulator::run`](crate::Simulator::run) polls the token between
//! cycles — cycle granularity, the finest the simulator can stop at
//! without leaving a half-applied pipeline stage — and returns early once
//! it fires, with statistics finalized for whatever work did happen.
//!
//! Cancellation has two triggers:
//!
//! * **explicit**: any holder calls [`CancelToken::cancel`]; the flag is
//!   an atomic, so this is safe from other threads (including a signal
//!   handler storing into a static token).
//! * **deadline**: a token built with [`CancelToken::with_deadline`]
//!   self-cancels once the wall-clock deadline passes. Reading the host
//!   clock every simulated cycle would dominate the hot path, so the
//!   deadline is polled every [`DEADLINE_STRIDE`] cycles — at typical
//!   simulation speeds that bounds the overshoot well under a
//!   millisecond, which is noise next to any realistic request deadline.
//!
//! A simulator with no token attached pays one `Option` check per cycle
//! and touches no atomics at all.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many cycles pass between wall-clock deadline polls. The explicit
/// cancellation flag is still observed every cycle.
pub const DEADLINE_STRIDE: u64 = 1024;

/// A cloneable cancellation handle (see the [module docs](self)).
///
/// # Examples
///
/// ```
/// use multipath_core::CancelToken;
///
/// let token = CancelToken::new();
/// assert!(!token.is_cancelled());
/// token.cancel();
/// assert!(token.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that only cancels explicitly.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that self-cancels `timeout` from now (and can still be
    /// cancelled explicitly before that).
    pub fn with_deadline(timeout: Duration) -> CancelToken {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Instant::now().checked_add(timeout),
        }
    }

    /// Fires the token. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the token has fired (explicitly, or by an earlier deadline
    /// poll). Does not itself consult the clock.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// The per-cycle poll used by the simulator's run loop: checks the
    /// flag every call and the wall-clock deadline every
    /// [`DEADLINE_STRIDE`] cycles, latching deadline expiry into the flag
    /// so clones observe it.
    pub fn should_stop(&self, cycle: u64) -> bool {
        if self.flag.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(deadline) = self.deadline {
            if cycle.is_multiple_of(DEADLINE_STRIDE) && Instant::now() >= deadline {
                self.cancel();
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_cancel_is_shared_across_clones() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!b.should_stop(1));
        a.cancel();
        assert!(b.is_cancelled());
        assert!(b.should_stop(1));
    }

    #[test]
    fn deadline_fires_only_on_stride_cycles() {
        let t = CancelToken::with_deadline(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        // Off-stride cycles do not consult the clock.
        assert!(!t.should_stop(1));
        assert!(!t.should_stop(DEADLINE_STRIDE + 1));
        // A stride cycle latches expiry; afterwards every cycle sees it.
        assert!(t.should_stop(DEADLINE_STRIDE));
        assert!(t.should_stop(7));
        assert!(t.is_cancelled());
    }

    #[test]
    fn unexpired_deadline_does_not_stop() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!t.should_stop(0));
        assert!(!t.should_stop(DEADLINE_STRIDE));
        assert!(!t.is_cancelled());
    }
}
