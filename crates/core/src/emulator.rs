//! A simple in-order functional reference emulator.
//!
//! Executes a [`Program`] one instruction at a time with purely
//! architectural state. It shares the pipeline's functional semantics
//! ([`crate::exec`]), so it defines *what the processor must compute*;
//! the simulator's committed instruction stream is validated against it in
//! tests (any divergence is a speculation-recovery bug, not a program
//! property).
//!
//! # Examples
//!
//! ```
//! use multipath_core::emulator::Emulator;
//! use multipath_workload::{kernels, Benchmark};
//!
//! let mut emu = Emulator::new(&kernels::build(Benchmark::Compress, 1));
//! for _ in 0..1000 {
//!     emu.step();
//! }
//! assert_eq!(emu.retired(), 1000);
//! ```

use crate::exec;
use multipath_isa::{Inst, Opcode, OperandClass, Reg, INST_BYTES};
use multipath_mem::Memory;
use multipath_workload::Program;

/// One architecturally executed instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Retired {
    /// The instruction's address.
    pub pc: u64,
    /// The value written to the destination register, if any.
    pub value: Option<u64>,
    /// Whether this was `halt`.
    pub halted: bool,
}

/// The reference emulator.
#[derive(Debug, Clone)]
pub struct Emulator {
    int: [u64; 32],
    fp: [u64; 32],
    pc: u64,
    memory: Memory,
    retired: u64,
    halted: bool,
}

impl Emulator {
    /// Loads `program` into a fresh address space, ready to run.
    pub fn new(program: &Program) -> Emulator {
        let mut memory = Memory::new();
        program.load_into(&mut memory);
        let mut int = [0u64; 32];
        int[30] = program.initial_sp;
        Emulator {
            int,
            fp: [0; 32],
            pc: program.entry,
            memory,
            retired: 0,
            halted: false,
        }
    }

    fn read(&self, reg: Option<Reg>) -> u64 {
        match reg {
            Some(Reg::Int(r)) => self.int[r.number() as usize],
            Some(Reg::Fp(r)) => self.fp[r.number() as usize],
            None => 0,
        }
    }

    fn write(&mut self, reg: Reg, value: u64) {
        match reg {
            Reg::Int(r) if !r.is_zero() => self.int[r.number() as usize] = value,
            Reg::Fp(r) if !r.is_zero() => self.fp[r.number() as usize] = value,
            _ => {}
        }
    }

    /// Executes one instruction; returns what retired. After `halt`,
    /// further steps return the halt again without advancing.
    pub fn step(&mut self) -> Retired {
        let pc = self.pc;
        if self.halted {
            return Retired {
                pc,
                value: None,
                halted: true,
            };
        }
        let word = self.memory.read_u32(pc);
        let inst = Inst::decode(word).unwrap_or_else(Inst::halt);
        let op = inst.op;
        let a = self.read(inst.src1);
        let b = self.read(inst.src2);
        let mut value = None;
        let mut next = pc + INST_BYTES;
        match op.operand_class() {
            OperandClass::CondBr => {
                if exec::branch_taken(&inst, a) {
                    next = inst.direct_target(pc);
                }
            }
            OperandClass::Br => {
                next = inst.direct_target(pc);
                if op == Opcode::Jsr {
                    value = Some(pc + INST_BYTES);
                }
            }
            OperandClass::Jump => next = a,
            _ if op.is_load() => {
                let addr = exec::effective_address(&inst, a);
                let v = match op.mem_width().expect("load width").bytes() {
                    1 => self.memory.read_u8(addr) as u64,
                    4 => self.memory.read_u32(addr) as u64,
                    _ => self.memory.read_u64(addr),
                };
                value = Some(v);
            }
            _ if op.is_store() => {
                let addr = exec::effective_address(&inst, a);
                match op.mem_width().expect("store width").bytes() {
                    1 => self.memory.write_u8(addr, b as u8),
                    4 => self.memory.write_u32(addr, b as u32),
                    _ => self.memory.write_u64(addr, b),
                }
            }
            OperandClass::None => {
                if op == Opcode::Halt {
                    self.halted = true;
                    self.retired += 1;
                    return Retired {
                        pc,
                        value: None,
                        halted: true,
                    };
                }
            }
            _ => value = Some(exec::alu_result(&inst, a, b, pc)),
        }
        if let (Some(d), Some(v)) = (inst.dest, value) {
            self.write(d, v);
        }
        self.pc = next;
        self.retired += 1;
        Retired {
            pc,
            value: inst.dest.and(value),
            halted: false,
        }
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Whether `halt` has executed.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// The current program counter.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Architectural read of an integer register.
    pub fn int_reg(&self, n: usize) -> u64 {
        self.int[n]
    }

    /// The emulator's memory (for end-state comparison).
    pub fn memory(&self) -> &Memory {
        &self.memory
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multipath_isa::regs::*;
    use multipath_workload::Assembler;

    fn program(asm: &Assembler) -> Program {
        Program {
            name: "t".to_owned(),
            text_base: 0x1000,
            text: asm.assemble(0x1000).unwrap(),
            data: Vec::new(),
            entry: 0x1000,
            initial_sp: 0x7_0000,
        }
    }

    #[test]
    fn arithmetic_and_branching() {
        let mut a = Assembler::new();
        a.li(R1, 10);
        a.li(R2, 0);
        a.label("loop");
        a.add(R2, R2, R1);
        a.subi(R1, R1, 1);
        a.bne(R1, "loop");
        a.halt();
        let mut emu = Emulator::new(&program(&a));
        while !emu.halted() {
            emu.step();
        }
        assert_eq!(emu.int_reg(2), 10 + 9 + 8 + 7 + 6 + 5 + 4 + 3 + 2 + 1);
    }

    #[test]
    fn memory_and_calls() {
        let mut a = Assembler::new();
        a.li(R30, 0x7_0000);
        a.li(R1, 0x2000);
        a.li(R2, 42);
        a.stq(R2, 0, R1);
        a.jsr("double");
        a.ldq(R3, 0, R1);
        a.halt();
        a.label("double");
        a.ldq(R4, 0, R1);
        a.add(R4, R4, R4);
        a.stq(R4, 0, R1);
        a.ret();
        let mut emu = Emulator::new(&program(&a));
        while !emu.halted() {
            emu.step();
        }
        assert_eq!(emu.int_reg(3), 84);
    }

    #[test]
    fn halt_is_sticky() {
        let mut a = Assembler::new();
        a.halt();
        let mut emu = Emulator::new(&program(&a));
        assert!(emu.step().halted);
        let r = emu.step();
        assert!(r.halted);
        assert_eq!(emu.retired(), 1);
    }
}
