//! The rename stage: register renaming, recycled-instruction merging,
//! reuse, and TME fork decisions.
//!
//! Fetched-path instructions get priority for rename slots; recycled
//! instructions fill the remainder. Within one thread program order is
//! absolute: while a recycle stream is active, the thread's own decode
//! pipe is blocked behind it (Section 3.3).

use crate::active_list::{AlEntry, BranchState, EntryState, MemState};
use crate::context::{CtxState, FetchPrediction, StreamSource};
use crate::ids::CtxId;
use crate::sim::{IqEntry, Simulator};
use multipath_branch::GlobalHistory;
use multipath_isa::{FuClass, Inst, Opcode, OperandClass, INST_BYTES};

/// Why rename had to stop for this thread this cycle.
enum Stall {
    /// No free physical register / active-list slot / queue slot.
    Resources,
}

impl Simulator {
    /// Runs one rename cycle.
    pub(crate) fn rename_stage(&mut self) {
        let mut budget = self.config.rename_width;
        let mut icounts = std::mem::take(&mut self.scratch.icounts);
        let mut order = std::mem::take(&mut self.scratch.order);
        self.fill_icounts(&mut icounts);
        order.clear();
        order.extend((0..self.contexts.len()).map(|i| CtxId(i as u8)));
        order.sort_by_key(|c| icounts[c.index()]);

        'stage: {
            // Phase A: fetched-path instructions. A thread with an active
            // stream still renames its *pre-stream* decode items here —
            // they are older than the trace.
            for &ctx in &order {
                if budget == 0 {
                    break 'stage;
                }
                budget = self.rename_from_decode(ctx, budget);
            }
            // Phase B: recycled instructions fill the remaining slots, once
            // the pre-stream fetched instructions have cleared.
            for &ctx in &order {
                if budget == 0 {
                    break 'stage;
                }
                let gated = match &self.contexts[ctx.index()].recycle_stream {
                    None => true,
                    Some(s) => s.pre_items > 0,
                };
                if gated {
                    continue;
                }
                budget = self.rename_from_stream(ctx, budget);
                if budget > 0 && self.contexts[ctx.index()].recycle_stream.is_none() {
                    // Stream drained this cycle; the decode pipe may follow.
                    budget = self.rename_from_decode(ctx, budget);
                }
            }
        }
        self.scratch.icounts = icounts;
        self.scratch.order = order;
    }

    /// Enforces the alternate-path instruction cap (Section 5.2) at the
    /// rename stage: fetch already respects it, but recycle streams and
    /// respawn replays insert without fetching. Returns true when the cap
    /// is hit (the path simply ends there).
    fn alternate_cap_hit(&mut self, ctx: CtxId) -> bool {
        if !matches!(self.contexts[ctx.index()].state, CtxState::Alternate { .. }) {
            return false;
        }
        let limit = self.config.alt_policy.limit() as u64;
        if self.contexts[ctx.index()].al.total_inserted() < limit {
            return false;
        }
        let c = &mut self.contexts[ctx.index()];
        c.fetch_stopped = true;
        // Rewind fetch to the next-to-rename point (everything fetched or
        // streamed beyond it is discarded): if this path is later promoted
        // to primary, it must resume exactly after its last renamed
        // instruction — a stale fetch PC would leave a hole in the
        // committed instruction stream.
        c.fetch_pc = c.al_next_pc;
        if let Some(s) = &c.recycle_stream {
            if s.pre_items == 0 {
                let bits = s.ghr.bits();
                c.ghr.set(bits);
            }
        }
        c.decode_pipe.clear();
        self.drop_stream(ctx);
        #[cfg(debug_assertions)]
        {
            let cyc = self.cycle;
            let fpc = self.contexts[ctx.index()].fetch_pc;
            self.contexts[ctx.index()].log_fe(cyc, format!("cap-hit -> {fpc:#x}"));
        }
        true
    }

    /// Renames instructions from `ctx`'s decode pipe. Returns remaining
    /// budget.
    fn rename_from_decode(&mut self, ctx: CtxId, mut budget: usize) -> usize {
        while budget > 0 {
            if self.alternate_cap_hit(ctx) {
                break;
            }
            // Behind an active stream, only pre-stream (older) items flow.
            if self.contexts[ctx.index()]
                .recycle_stream
                .as_ref()
                .is_some_and(|s| s.pre_items == 0)
            {
                break;
            }
            let Some(item) = self.contexts[ctx.index()].decode_pipe.front() else {
                break;
            };
            if item.ready_cycle > self.cycle {
                break;
            }
            let item = self.contexts[ctx.index()]
                .decode_pipe
                .pop_front()
                .expect("peeked");
            match self.rename_one(ctx, item.pc, &item.inst, item.pred, false) {
                Ok(()) => {
                    budget -= 1;
                    if let Some(s) = &mut self.contexts[ctx.index()].recycle_stream {
                        s.pre_items -= 1;
                    }
                }
                Err(Stall::Resources) => {
                    self.contexts[ctx.index()].decode_pipe.push_front(item);
                    break;
                }
            }
        }
        budget
    }

    /// Renames instructions from `ctx`'s recycle stream. Returns remaining
    /// budget.
    fn rename_from_stream(&mut self, ctx: CtxId, mut budget: usize) -> usize {
        while budget > 0 {
            if self.alternate_cap_hit(ctx) {
                break;
            }
            let Some(stream) = &self.contexts[ctx.index()].recycle_stream else {
                break;
            };
            let expected_pc = stream.expected_pc;
            let reuse_allowed = stream.reuse_allowed;

            // Pull the next trace entry. Buffer sources are *peeked* here
            // and only popped (and their pool slot freed) once the entry
            // actually renames, so stalls need no restore step.
            let (entry, source_ctx, buf_handle) = match &stream.source {
                StreamSource::Context(src) => {
                    let src = *src;
                    if stream.next_seq >= stream.end_seq {
                        self.drop_stream(ctx);
                        break;
                    }
                    match self.contexts[src.index()].al.at_seq(stream.next_seq) {
                        Some(e) if e.pc == expected_pc => (*e, Some(src), None),
                        _ => {
                            // Trace overwritten or rewritten under us: the
                            // remainder must be fetched instead.
                            self.cancel_stream(ctx, expected_pc);
                            break;
                        }
                    }
                }
                StreamSource::Buffer(buf) => match buf.front().copied() {
                    Some(h) => {
                        let e = *self.replay_pool.get(h).expect("live replay handle");
                        if e.pc == expected_pc {
                            (e, None, Some(h))
                        } else {
                            // Replay discontinuity: refetch from here.
                            self.cancel_stream(ctx, expected_pc);
                            break;
                        }
                    }
                    None => {
                        self.drop_stream(ctx);
                        break;
                    }
                },
            };

            // Resource precheck before predicting: predict_next mutates
            // the GHR/RAS, which must happen exactly once per consumed
            // entry.
            if !self.can_rename(ctx, &entry.inst) {
                break;
            }
            // Re-check control-flow predictions against the stream's own
            // history view (the context GHR already contains the whole
            // trace plus post-trace fetch; see stream creation).
            let trace_next = crate::frontend::entry_next_pc(&entry);
            let stream_ghr = self.contexts[ctx.index()]
                .recycle_stream
                .as_ref()
                .expect("stream present")
                .ghr;
            let (pred, next_pc, pushed) = match entry.inst.op.operand_class() {
                OperandClass::CondBr => {
                    let target = entry.inst.direct_target(entry.pc);
                    let (taken, confident) = match self.config.recycled_prediction {
                        crate::config::RecycledPrediction::Repredict => {
                            let p = self.predictor.predict(entry.pc, &stream_ghr);
                            (p.taken, p.confident)
                        }
                        crate::config::RecycledPrediction::Trace => {
                            // Keep the trace's prediction; still consult
                            // the confidence estimator so TME can fork.
                            let p = self.predictor.predict(entry.pc, &stream_ghr);
                            let dir = entry
                                .taken_path
                                .or(entry.branch.as_ref().map(|b| b.predicted_taken))
                                .unwrap_or(p.taken);
                            (dir, p.confident)
                        }
                    };
                    let next = if taken { target } else { entry.pc + INST_BYTES };
                    (
                        Some(FetchPrediction {
                            taken,
                            target,
                            history: stream_ghr.bits(),
                            confident,
                        }),
                        next,
                        Some(taken),
                    )
                }
                OperandClass::Br => {
                    let target = entry.inst.direct_target(entry.pc);
                    (
                        Some(FetchPrediction {
                            taken: true,
                            target,
                            history: stream_ghr.bits(),
                            confident: true,
                        }),
                        target,
                        None,
                    )
                }
                OperandClass::Jump => (
                    // Trust the trace's followed target; execution verifies.
                    Some(FetchPrediction {
                        taken: true,
                        target: trace_next,
                        history: stream_ghr.bits(),
                        confident: true,
                    }),
                    trace_next,
                    None,
                ),
                _ => (None, entry.pc + INST_BYTES, None),
            };
            let diverges = entry.inst.op.is_control() && next_pc != trace_next;

            // Attempt reuse, then fall back to re-renaming for execution;
            // the fallback cause feeds the explain taxonomy. A stream that
            // is not reuse-capable (RU off, self/backward merge, respawn
            // replay) denies everything with `Disabled`.
            let fresh = self.contexts[ctx.index()]
                .recycle_stream
                .as_ref()
                .expect("stream present")
                .fresh;
            let (reuse_from, deny) = match source_ctx {
                Some(src) if reuse_allowed => match self.reuse_check(src, &entry, &fresh) {
                    Ok(()) => (Some(src), None),
                    Err(cause) => (None, Some(cause)),
                },
                _ => (None, Some(crate::probe::ReuseDeny::Disabled)),
            };
            let outcome = match reuse_from {
                Some(src) => self.rename_reused(ctx, src, &entry),
                None => self.rename_one(ctx, entry.pc, &entry.inst, pred, true),
            };
            if outcome.is_ok() {
                if let Some(stream) = &mut self.contexts[ctx.index()].recycle_stream {
                    if let Some(d) = entry.dest {
                        stream.fresh[d.index()] = reuse_from.is_some();
                    }
                }
                // Exactly one ReuseDenied per recycled-but-not-reused
                // rename, so the taxonomy sums to `recycled − reused`.
                if self.probing() {
                    if let Some(cause) = deny {
                        let class = crate::probe::InstClass::of(entry.inst.op);
                        self.probe(
                            ctx,
                            entry.pc,
                            crate::probe::EventKind::ReuseDenied { class, cause },
                        );
                    }
                }
            }
            match outcome {
                Ok(()) => {
                    budget -= 1;
                    // The peeked buffer entry is consumed: pop its handle
                    // and recycle the pool slot.
                    if let Some(h) = buf_handle {
                        if let Some(stream) = &mut self.contexts[ctx.index()].recycle_stream {
                            if let StreamSource::Buffer(buf) = &mut stream.source {
                                let popped = buf.pop_front();
                                debug_assert_eq!(popped, Some(h));
                            }
                        }
                        self.replay_pool.free(h);
                    }
                }
                Err(Stall::Resources) => break,
            }

            // Advance the stream.
            if let Some(stream) = &mut self.contexts[ctx.index()].recycle_stream {
                if matches!(stream.source, StreamSource::Context(_)) {
                    stream.next_seq += 1;
                }
                stream.expected_pc = next_pc;
                if let Some(taken) = pushed {
                    stream.ghr.push(taken);
                }
                if stream.remaining() == 0 {
                    // Completed. If the walked trace ended somewhere other
                    // than where fetch resumed at creation (a trace branch
                    // was re-resolved underneath us), the post-trace fetch
                    // is wrong-path: discard and refetch.
                    let (expected, resume) = (stream.expected_pc, stream.resume_pc);
                    self.drop_stream(ctx);
                    if !diverges && expected != resume {
                        self.cancel_stream(ctx, expected);
                        break;
                    }
                }
            }
            if diverges {
                // The new prediction leaves the trace: stop recycling and
                // fetch the newly predicted path (Section 3.4).
                self.cancel_stream(ctx, next_pc);
                break;
            }
        }
        budget
    }

    /// Whether `ctx` has the resources to rename `inst` right now (active
    /// list slot, queue slot, free destination register).
    fn can_rename(&self, ctx: CtxId, inst: &Inst) -> bool {
        if !self.contexts[ctx.index()].al.has_space() {
            return false;
        }
        if let Some(d) = inst.dest {
            if self.regs.free_count(!d.is_int()) == 0 {
                return false;
            }
        }
        let fu = inst.op.fu_class();
        let is_fp_queue = matches!(fu, FuClass::FpAdd | FuClass::FpMul | FuClass::FpDiv);
        if is_fp_queue {
            self.iq_fp.len() < self.config.fp_queue
        } else {
            self.iq_int.len() < self.config.int_queue
        }
    }

    /// Abandons `ctx`'s recycle stream and redirects fetch to `pc`.
    fn cancel_stream(&mut self, ctx: CtxId, pc: u64) {
        let cycle = self.cycle;
        // Repair the GHR to the mid-trace view: the trace's remaining
        // directions and the (now discarded) post-trace fetch are gone.
        if let Some(stream) = &self.contexts[ctx.index()].recycle_stream {
            let bits = stream.ghr.bits();
            self.contexts[ctx.index()].ghr.set(bits);
        }
        self.drop_stream(ctx);
        let c = &mut self.contexts[ctx.index()];
        // Anything fetched past the trace is younger than `pc`; discard it.
        c.decode_pipe.clear();
        c.fetch_pc = pc;
        c.al_next_pc = pc;
        // A halt fetched on the discarded path must not keep the thread
        // muted on the new one.
        c.fetch_stopped = false;
        c.log_fe(cycle, format!("cancel -> {pc:#x}"));
        c.fetch_stall_until = cycle + 1;
    }

    /// Whether `entry` from `source`'s trace can be reused, and if not,
    /// why — the explain layer's [`crate::probe::ReuseDeny`] taxonomy.
    ///
    /// `fresh` is the active stream's freshness set: registers whose
    /// current mapping was itself installed by a reuse from this stream,
    /// for which value identity holds by construction even though the
    /// written-bit array conservatively marks them changed.
    ///
    /// Checks run in a fixed priority order so an entry failing several
    /// lands in one deterministic bucket; `Ok(())` means every check
    /// passed (the acceptance set is order-independent).
    fn reuse_check(
        &self,
        source: CtxId,
        entry: &AlEntry,
        fresh: &[bool; multipath_isa::NUM_LOGICAL_REGS],
    ) -> Result<(), crate::probe::ReuseDeny> {
        use crate::probe::ReuseDeny;
        if !entry.executed || entry.fetched_only {
            return Err(ReuseDeny::NotExecuted);
        }
        if entry.reused {
            return Err(ReuseDeny::ChainedReuse);
        }
        let op = entry.inst.op;
        if entry.dest.is_none() || op.is_control() || op.is_store() {
            return Err(ReuseDeny::NoResult);
        }
        if !entry.regs_held || entry.new_preg.is_none() {
            return Err(ReuseDeny::RegsReleased);
        }
        for src in [entry.inst.src1, entry.inst.src2].into_iter().flatten() {
            if !src.is_zero() && !self.written.unchanged(source, src) && !fresh[src.index()] {
                return Err(ReuseDeny::SourceOverwritten);
            }
        }
        if op.is_load() {
            let addr = entry.mem.and_then(|m| m.addr);
            match addr {
                Some(addr) if self.mdb.reusable(self.asid_of(source), entry.pc, addr) => {}
                _ => return Err(ReuseDeny::MemInvalidated),
            }
        }
        Ok(())
    }

    /// Installs a reused instruction: the old physical register becomes
    /// the new mapping and the instruction bypasses issue and execution.
    fn rename_reused(&mut self, ctx: CtxId, _source: CtxId, entry: &AlEntry) -> Result<(), Stall> {
        if !self.contexts[ctx.index()].al.has_space() {
            return Err(Stall::Resources);
        }
        let dest = entry.dest.expect("reuse_legal checked dest");
        let preg = entry.new_preg.expect("reuse_legal checked preg");
        debug_assert!(self.regs.is_ready(preg), "reused value must be ready");
        self.regs.add_ref(preg);
        let old = self.map.set(ctx, dest, preg);
        // Even a reused mapping counts as a new register instance (the
        // paper's written-bit rule): exempting the source context would
        // let a *second* merge of the same path reuse values that are one
        // iteration stale.
        let span = self.group_span(ctx);
        self.written.set_row(dest, span.iter());

        let tag = self.alloc_tag();
        let new = AlEntry {
            seq: 0,
            tag,
            pc: entry.pc,
            inst: entry.inst,
            dest: Some(dest),
            new_preg: Some(preg),
            old_preg: old,
            srcs: [None; 2],
            state: EntryState::Done,
            executed: true,
            recycled: true,
            reused: true,
            fetched_only: false,
            branch: None,
            mem: entry.mem,
            taken_path: None,
            regs_held: true,
        };
        #[cfg(debug_assertions)]
        {
            let cyc = self.cycle;
            let pc = entry.pc;
            let val = self.regs.read(preg);
            let sseq = entry.seq;
            self.contexts[ctx.index()].log_fe(
                cyc,
                format!(
                    "reuse {} pc={pc:#x} src ctx{} seq{} val={val}",
                    entry.inst, _source.0, sseq
                ),
            );
        }
        debug_assert_eq!(entry.pc, self.contexts[ctx.index()].al_next_pc);
        self.contexts[ctx.index()].al.insert(new);
        self.contexts[ctx.index()].al_next_pc = entry.pc + INST_BYTES;
        self.stats.renamed += 1;
        self.stats.recycled += 1;
        self.stats.reused += 1;
        if self.probing() {
            let class = crate::probe::InstClass::of(entry.inst.op);
            self.probe(ctx, entry.pc, crate::probe::EventKind::Reuse { class });
        }
        Ok(())
    }

    /// Renames one instruction into `ctx` (fetched or recycled path).
    fn rename_one(
        &mut self,
        ctx: CtxId,
        pc: u64,
        inst: &Inst,
        pred: Option<FetchPrediction>,
        recycled: bool,
    ) -> Result<(), Stall> {
        if !self.contexts[ctx.index()].al.has_space() {
            return Err(Stall::Resources);
        }
        // Rename continuity: every instruction must follow the previous
        // one's predicted successor. Any violation is a front-end hole.
        #[cfg(debug_assertions)]
        if pc != self.contexts[ctx.index()].al_next_pc {
            panic!(
                "rename discontinuity in ctx{} at cycle {} ({} pc={pc:#x}, expected {:#x}, recycled={recycled})\n{}\nfe log:\n{}",
                ctx.0,
                self.cycle,
                inst,
                self.contexts[ctx.index()].al_next_pc,
                self.debug_state(),
                self.contexts[ctx.index()]
                    .fe_log
                    .iter()
                    .map(|s| format!("  {s}"))
                    .collect::<Vec<_>>()
                    .join("\n"),
            );
        }
        let op = inst.op;
        let fu = op.fu_class();
        let is_fp_queue = matches!(fu, FuClass::FpAdd | FuClass::FpMul | FuClass::FpDiv);
        // Instructions that never enter the queue: nop/halt (no work),
        // br (resolved at fetch), jsr (link value computed at rename).
        let skips_queue = matches!(op, Opcode::Nop | Opcode::Halt | Opcode::Br | Opcode::Jsr);
        let fetched_only = matches!(
            self.contexts[ctx.index()].state,
            CtxState::Alternate { resolved: true, .. }
        ) && !self.config.alt_policy.execute_after_resolve();
        let needs_queue = !skips_queue && !fetched_only;
        if needs_queue {
            let (q, cap) = if is_fp_queue {
                (&self.iq_fp, self.config.fp_queue)
            } else {
                (&self.iq_int, self.config.int_queue)
            };
            if q.len() >= cap {
                return Err(Stall::Resources);
            }
        }
        // Allocate the destination register before taking reader refs so a
        // failed allocation has nothing to unwind.
        let new_preg = match inst.dest {
            Some(d) => match self.regs.alloc(!d.is_int()) {
                Some(p) => Some(p),
                None => {
                    self.stats.preg_stall_cycles += 1;
                    self.probe(ctx, pc, crate::probe::EventKind::PregStall);
                    // Pressure valve: the primary thread must always be
                    // able to make progress, so spare contexts give their
                    // registers back rather than starve it (the paper's
                    // inactive contexts are "quickly reclaimed" when not
                    // beneficial).
                    if self.is_primary(ctx) {
                        self.relieve_register_pressure(ctx);
                    }
                    return Err(Stall::Resources);
                }
            },
            None => None,
        };

        let tag = self.alloc_tag();
        let mut srcs = [None; 2];
        if !fetched_only {
            for (i, src) in [inst.src1, inst.src2].into_iter().enumerate() {
                if let Some(r) = src {
                    let p = self.map.get(ctx, r);
                    self.regs.add_ref(p);
                    srcs[i] = Some(p);
                }
            }
        }
        let old_preg = match (inst.dest, new_preg) {
            (Some(d), Some(p)) => {
                let old = self.map.set(ctx, d, p);
                if self.is_primary(ctx) {
                    let span = self.group_span(ctx);
                    self.written.set_row(d, span.iter());
                }
                old
            }
            _ => None,
        };

        // Control bookkeeping.
        let fallthrough = pc + INST_BYTES;
        let mut taken_path = None;
        let branch = match op.operand_class() {
            OperandClass::CondBr => {
                let p = pred.expect("conditional branches carry predictions");
                taken_path = Some(p.taken);
                Some(BranchState {
                    predicted_taken: p.taken,
                    predicted_target: p.target,
                    history: p.history,
                    fork: None,
                    resolved: false,
                    actual_taken: None,
                    actual_target: None,
                })
            }
            OperandClass::Br => {
                let target = inst.direct_target(pc);
                taken_path = Some(true);
                Some(BranchState {
                    predicted_taken: true,
                    predicted_target: target,
                    history: pred.map(|p| p.history).unwrap_or(0),
                    fork: None,
                    resolved: true,
                    actual_taken: Some(true),
                    actual_target: Some(target),
                })
            }
            OperandClass::Jump => {
                let p = pred.expect("indirect jumps carry predictions");
                taken_path = Some(true);
                Some(BranchState {
                    predicted_taken: true,
                    predicted_target: p.target,
                    history: p.history,
                    fork: None,
                    resolved: false,
                    actual_taken: None,
                    actual_target: None,
                })
            }
            _ => None,
        };

        let mem = (op.is_load() || op.is_store()).then(MemState::default);
        let done_at_rename = skips_queue || fetched_only;
        let entry = AlEntry {
            seq: 0,
            tag,
            pc,
            inst: *inst,
            dest: inst.dest,
            new_preg,
            old_preg,
            srcs,
            state: if done_at_rename && !fetched_only {
                EntryState::Done
            } else {
                EntryState::Pending
            },
            executed: skips_queue && !fetched_only,
            recycled,
            reused: false,
            fetched_only,
            branch,
            mem,
            taken_path,
            regs_held: true,
        };
        let seq = self.contexts[ctx.index()].al.insert(entry);

        // The link register value is known at rename.
        if op == Opcode::Jsr && !fetched_only {
            if let Some(p) = new_preg {
                self.regs.write(p, fallthrough);
            }
        }
        if op.is_store() && !fetched_only {
            self.contexts[ctx.index()].push_pending_store(tag, seq);
        }

        // Track where fetch would resume after this trace.
        let next_pc = match (&pred, op.is_control()) {
            (Some(p), true) if p.taken => p.target,
            _ => fallthrough,
        };
        self.contexts[ctx.index()].al_next_pc = next_pc;
        #[cfg(debug_assertions)]
        {
            let cyc = self.cycle;
            self.contexts[ctx.index()].log_fe(
                cyc,
                format!("rename {inst} pc={pc:#x} next={next_pc:#x} seq={seq} rec={recycled}"),
            );
        }

        // Backward-branch merge point (Section 3.2): a taken backward
        // branch whose target's previous instance is still in our list.
        if self.config.features.recycle {
            let backward_taken = match (op.operand_class(), &pred) {
                (OperandClass::CondBr, Some(p)) => p.taken && p.target < pc,
                (OperandClass::Br, _) if op == Opcode::Br => inst.direct_target(pc) < pc,
                _ => false,
            };
            if backward_taken {
                let target = inst.direct_target(pc);
                self.record_back_merge(ctx, seq, target);
            }
        }

        // Dispatch.
        if needs_queue {
            let iq = IqEntry {
                ctx,
                seq,
                tag,
                srcs,
                fu,
            };
            if is_fp_queue {
                self.iq_fp.push_back(iq);
            } else {
                self.iq_int.push_back(iq);
            }
        }

        self.stats.renamed += 1;
        if recycled {
            self.stats.recycled += 1;
        }
        if self.probing() {
            let class = crate::probe::InstClass::of(op);
            let kind = if recycled {
                crate::probe::EventKind::Recycle { class }
            } else {
                crate::probe::EventKind::Rename { class }
            };
            self.probe(ctx, pc, kind);
        }

        // TME fork decision.
        if op.operand_class() == OperandClass::CondBr {
            if let Some(p) = pred {
                self.maybe_fork(ctx, seq, pc, inst, p);
            }
        }
        Ok(())
    }

    /// Records a backward-branch merge point if the loop head's previous
    /// instance is still present in the context's active list.
    fn record_back_merge(&mut self, ctx: CtxId, branch_seq: u64, target: u64) {
        let al = &self.contexts[ctx.index()].al;
        let cap = al.capacity() as u64;
        let newest = branch_seq;
        let oldest = newest.saturating_sub(cap - 1);
        let mut found = None;
        let mut seq = newest;
        loop {
            if let Some(e) = al.at_seq(seq) {
                if e.pc == target {
                    found = Some(seq);
                    break;
                }
            }
            if seq == oldest {
                break;
            }
            seq -= 1;
        }
        if let Some(seq) = found {
            self.contexts[ctx.index()].back_merge =
                Some(crate::context::MergePoint { seq, pc: target });
        }
    }

    /// Decides whether to fork an alternate path off a just-renamed
    /// conditional branch (Section 2's confidence-gated spawning, plus the
    /// recycle architecture's duplicate suppression and re-spawning).
    fn maybe_fork(
        &mut self,
        ctx: CtxId,
        branch_seq: u64,
        pc: u64,
        inst: &Inst,
        pred: FetchPrediction,
    ) {
        let f = self.config.features;
        if !f.tme || pred.confident || !self.is_primary(ctx) {
            return;
        }
        self.stats.fork_candidates += 1;
        if self.forks_this_cycle >= self.config.forks_per_cycle {
            self.stats.fork_refused_cap += 1;
            self.probe(
                ctx,
                pc,
                crate::probe::EventKind::ForkRefused {
                    reason: crate::probe::RefuseReason::CycleCap,
                },
            );
            return;
        }
        let alt_pc = if pred.taken {
            pc + INST_BYTES
        } else {
            inst.direct_target(pc)
        };
        let tag = self.contexts[ctx.index()]
            .al
            .at_seq(branch_seq)
            .expect("just inserted")
            .tag;
        let mut history = GlobalHistory::new(self.predictor.history_bits());
        history.set(pred.history);
        history.push(!pred.taken);

        // Duplicate handling: if a *stopped* path (inactive, or a resolved
        // alternate finishing its tail) already starts at the fork target,
        // re-spawn it through the recycle datapath (RS) or — without RS —
        // suppress the fork to preserve the unique merge point (the REC
        // design decision of Section 5.1). A still-running alternate with
        // the same start does not block a new fork: the new branch instance
        // needs cover from *its own* register snapshot (see DESIGN.md).
        if f.recycle {
            let span = self.group_span(ctx);
            let stopped_same_start = span.iter().find(|&c| {
                c != ctx
                    && self.contexts[c.index()].in_flight == 0
                    && matches!(
                        self.contexts[c.index()].state,
                        CtxState::Inactive | CtxState::Alternate { resolved: true, .. }
                    )
                    && self.contexts[c.index()]
                        .al
                        .at_seq(0)
                        .is_some_and(|e| e.pc == alt_pc)
            });
            if let Some(c) = stopped_same_start {
                if f.respawn {
                    if matches!(self.contexts[c.index()].state, CtxState::Alternate { .. }) {
                        self.drop_stream(c);
                        let cc = &mut self.contexts[c.index()];
                        cc.decode_pipe.clear();
                        cc.fetch_stopped = true;
                        cc.state = CtxState::Inactive;
                    }
                    self.undispatch(c);
                    self.respawn(c, ctx, tag, history);
                    if let Some(e) = self.contexts[ctx.index()].al.at_seq_mut(branch_seq) {
                        if let Some(b) = &mut e.branch {
                            b.fork = Some(c);
                        }
                    }
                    self.forks_this_cycle += 1;
                    self.probe(ctx, pc, crate::probe::EventKind::Respawn { alt: c.0 });
                } else {
                    self.stats.forks_suppressed += 1;
                    self.probe(
                        ctx,
                        pc,
                        crate::probe::EventKind::ForkRefused {
                            reason: crate::probe::RefuseReason::DuplicatePath,
                        },
                    );
                }
                return;
            }
        }
        let Some(spare) = self.pick_spare(ctx) else {
            self.stats.fork_refused_nospare += 1;
            self.probe(
                ctx,
                pc,
                crate::probe::EventKind::ForkRefused {
                    reason: crate::probe::RefuseReason::NoSpare,
                },
            );
            return;
        };
        self.fork_into(spare, ctx, tag, alt_pc, history);
        if let Some(e) = self.contexts[ctx.index()].al.at_seq_mut(branch_seq) {
            if let Some(b) = &mut e.branch {
                b.fork = Some(spare);
            }
        }
        self.forks_this_cycle += 1;
        self.probe(ctx, pc, crate::probe::EventKind::Fork { alt: spare.0 });
    }
}
