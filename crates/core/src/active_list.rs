//! Per-context active lists that double as recycle traces.
//!
//! A conventional active list (reorder buffer) holds only in-flight
//! instructions. The recycle architecture's key observation (Section 3) is
//! that the storage already contains a decoded trace — so entries are
//! *retained* after commit or squash until their circular-buffer slot is
//! physically overwritten, and the recycling datapath can stream from any
//! still-valid slot.
//!
//! Slots are addressed by a per-context monotone sequence number; the slot
//! for sequence `s` is `s % capacity`, and a retained entry is still valid
//! exactly when the slot's stored sequence matches. Merge points carry
//! `(seq, pc)` pairs and are invalidated by overwrite automatically.

use crate::ids::{CtxId, InstTag, PhysReg};
use multipath_isa::{Inst, Reg};

/// Execution status of an entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryState {
    /// In the instruction queue awaiting operands and a functional unit.
    Pending,
    /// Issued to a functional unit; completion event scheduled.
    Issued,
    /// Finished (result written, branch resolved) — eligible to commit.
    Done,
}

/// Resolution state of an in-flight control instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchState {
    /// Predicted direction (always `true` for unconditional control).
    pub predicted_taken: bool,
    /// Predicted target if taken.
    pub predicted_target: u64,
    /// Global history value at prediction time (for trainer and repair).
    pub history: u64,
    /// Alternate context forked off this branch, if any.
    pub fork: Option<CtxId>,
    /// Whether resolution has happened.
    pub resolved: bool,
    /// Actual direction once resolved.
    pub actual_taken: Option<bool>,
    /// Actual target once resolved.
    pub actual_target: Option<u64>,
}

/// Memory access state of an in-flight load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemState {
    /// Effective address once computed.
    pub addr: Option<u64>,
    /// Store data once read.
    pub store_value: u64,
}

/// One active-list entry: everything needed to commit the instruction
/// *and* to recycle it later (decoded opcode, logical registers, and the
/// physical mappings of Section 3's "additional information").
///
/// Entries are plain `Copy` data — the replay buffers and recycle streams
/// move them through [`crate::arena::Slab`] pools and 8-byte handles
/// rather than cloning through the pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlEntry {
    /// Per-context trace sequence number (slot = `seq % capacity`).
    pub seq: u64,
    /// Globally unique dynamic-instance tag.
    pub tag: InstTag,
    /// The instruction's address.
    pub pc: u64,
    /// The decoded instruction.
    pub inst: Inst,
    /// Architectural destination, if any.
    pub dest: Option<Reg>,
    /// Physical register allocated (or shared, when reused) for the
    /// destination.
    pub new_preg: Option<PhysReg>,
    /// Mapping displaced at rename — freed at commit, restored on squash.
    pub old_preg: Option<PhysReg>,
    /// Source physical registers (reader references are held from rename
    /// until issue; squash of a pending entry must release them).
    pub srcs: [Option<PhysReg>; 2],
    /// Execution status.
    pub state: EntryState,
    /// Whether a real result was produced (reuse requires it).
    pub executed: bool,
    /// Entered via the recycle datapath.
    pub recycled: bool,
    /// Result reused without execution.
    pub reused: bool,
    /// Fetched under the `fetch-N` policy after resolution: renamed into
    /// the trace but never dispatched.
    pub fetched_only: bool,
    /// Control state for branches/jumps.
    pub branch: Option<BranchState>,
    /// Memory state for loads/stores.
    pub mem: Option<MemState>,
    /// Direction the trace actually followed after this conditional branch
    /// (i.e. the prediction it was fetched under) — consulted when a
    /// recycled stream re-checks predictions.
    pub taken_path: Option<bool>,
    /// Whether this entry's registers are still held (live or inactive
    /// trace) — retained-after-commit/squash entries are re-renameable but
    /// not reusable.
    pub regs_held: bool,
}

/// A circular active list with retained entries.
#[derive(Debug, Clone)]
pub struct ActiveList {
    slots: Vec<Option<AlEntry>>,
    capacity: usize,
    /// `capacity - 1` when the capacity is a power of two, letting the
    /// hot slot computation be a mask instead of a division.
    mask: Option<u64>,
    /// Sequence of the oldest live (uncommitted) entry.
    head_seq: u64,
    /// Sequence the next insertion will get.
    next_seq: u64,
    /// Branch-resolution scan cursor: every live entry below this sequence
    /// is known to hold no unresolved control instruction, so the in-order
    /// resolver can start here instead of at `head_seq`.
    resolve_hint: u64,
}

impl ActiveList {
    /// Creates an empty list of `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> ActiveList {
        assert!(capacity > 0, "active list capacity must be positive");
        ActiveList {
            slots: vec![None; capacity],
            capacity,
            mask: capacity.is_power_of_two().then_some(capacity as u64 - 1),
            head_seq: 0,
            next_seq: 0,
            resolve_hint: 0,
        }
    }

    #[inline]
    fn slot(&self, seq: u64) -> usize {
        match self.mask {
            Some(m) => (seq & m) as usize,
            None => (seq % self.capacity as u64) as usize,
        }
    }

    /// Number of live (uncommitted, unsquashed) entries.
    pub fn live(&self) -> usize {
        (self.next_seq - self.head_seq) as usize
    }

    /// Whether a new entry can be inserted.
    pub fn has_space(&self) -> bool {
        self.live() < self.capacity
    }

    /// Total entries ever inserted (the alternate-path policies cap this).
    pub fn total_inserted(&self) -> u64 {
        self.next_seq
    }

    /// Sequence number of the next insertion.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Sequence number of the oldest live entry (== `next_seq` when empty).
    pub fn head_seq(&self) -> u64 {
        self.head_seq
    }

    /// Whether `seq` denotes a live (uncommitted, unsquashed) entry.
    pub fn is_live(&self, seq: u64) -> bool {
        seq >= self.head_seq && seq < self.next_seq
    }

    /// Inserts an entry, overwriting any retained entry in its slot.
    ///
    /// Returns the assigned sequence number.
    ///
    /// # Panics
    ///
    /// Panics when full — callers must check [`ActiveList::has_space`]
    /// (rename stalls instead).
    pub fn insert(&mut self, mut entry: AlEntry) -> u64 {
        assert!(self.has_space(), "active list overflow");
        let seq = self.next_seq;
        entry.seq = seq;
        let slot = self.slot(seq);
        self.slots[slot] = Some(entry);
        self.next_seq += 1;
        seq
    }

    /// The entry at `seq` — live, retired, or squash-retained — if its
    /// slot still holds it (pure sequence match; use [`ActiveList::is_live`]
    /// to distinguish in-flight entries).
    pub fn at_seq(&self, seq: u64) -> Option<&AlEntry> {
        let slot = self.slot(seq);
        self.slots[slot].as_ref().filter(|e| e.seq == seq)
    }

    /// Mutable access to the entry at `seq` (live or retained).
    pub fn at_seq_mut(&mut self, seq: u64) -> Option<&mut AlEntry> {
        let slot = self.slot(seq);
        self.slots[slot].as_mut().filter(|e| e.seq == seq)
    }

    /// The oldest live entry, if any.
    pub fn front(&self) -> Option<&AlEntry> {
        if self.live() == 0 {
            None
        } else {
            self.at_seq(self.head_seq)
        }
    }

    /// Commits (retires) the oldest live entry, leaving it retained in its
    /// slot. Returns its sequence number.
    ///
    /// # Panics
    ///
    /// Panics if the list is empty.
    pub fn commit_front(&mut self) -> u64 {
        assert!(self.live() > 0, "commit on empty active list");
        let seq = self.head_seq;
        self.head_seq += 1;
        seq
    }

    /// Squashes all live entries with sequence >= `from_seq`, returning
    /// the squashed sequence range (recovery iterates it `.rev()`,
    /// youngest-first). The entries remain retained in their slots.
    pub fn squash_from(&mut self, from_seq: u64) -> std::ops::Range<u64> {
        let from = from_seq.max(self.head_seq);
        let squashed = from..self.next_seq;
        self.next_seq = from;
        self.head_seq = self.head_seq.min(from);
        self.resolve_hint = self.resolve_hint.min(from);
        squashed
    }

    /// Where the in-order branch resolver should start scanning: the
    /// oldest live sequence that may still hold unresolved control.
    pub fn resolve_scan_start(&self) -> u64 {
        self.resolve_hint.max(self.head_seq)
    }

    /// Records that every live entry below `seq` is resolved (or holds no
    /// control instruction), advancing the resolver's scan start.
    pub fn set_resolve_hint(&mut self, seq: u64) {
        self.resolve_hint = seq.min(self.next_seq).max(self.resolve_hint);
    }

    /// Iterates live entries oldest-first.
    pub fn live_entries(&self) -> impl Iterator<Item = &AlEntry> + '_ {
        (self.head_seq..self.next_seq).filter_map(move |s| self.at_seq(s))
    }

    /// Clears everything, including retained entries (context reset for a
    /// fresh program or respawn drain).
    pub fn clear(&mut self) {
        self.slots.fill(None);
        self.head_seq = 0;
        self.next_seq = 0;
        self.resolve_hint = 0;
    }

    /// Capacity in slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// A minimal entry for tests and internal construction.
#[cfg(test)]
pub(crate) fn test_entry(pc: u64, tag: u64) -> AlEntry {
    AlEntry {
        seq: 0,
        tag: InstTag(tag),
        pc,
        inst: Inst::nop(),
        dest: None,
        new_preg: None,
        old_preg: None,
        srcs: [None; 2],
        state: EntryState::Pending,
        executed: false,
        recycled: false,
        reused: false,
        fetched_only: false,
        branch: None,
        mem: None,
        taken_path: None,
        regs_held: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_commit_cycle() {
        let mut al = ActiveList::new(4);
        for i in 0..3 {
            al.insert(test_entry(0x1000 + i * 4, i));
        }
        assert_eq!(al.live(), 3);
        assert_eq!(al.front().unwrap().pc, 0x1000);
        let seq = al.commit_front();
        assert_eq!(seq, 0);
        assert_eq!(al.live(), 2);
        // Retained entry still readable.
        assert_eq!(al.at_seq(0).unwrap().pc, 0x1000);
    }

    #[test]
    fn overwrite_invalidates_retained() {
        let mut al = ActiveList::new(2);
        al.insert(test_entry(0xa, 0));
        al.insert(test_entry(0xb, 1));
        al.commit_front();
        al.commit_front();
        // Slots hold retained 0xa, 0xb. Insert two more: overwrite both.
        al.insert(test_entry(0xc, 2));
        assert!(al.at_seq(0).is_none(), "slot 0 overwritten by seq 2");
        assert_eq!(al.at_seq(2).unwrap().pc, 0xc);
        assert_eq!(al.at_seq(1).unwrap().pc, 0xb, "slot 1 still retained");
    }

    #[test]
    fn squash_retains_entries_and_rolls_back() {
        let mut al = ActiveList::new(8);
        for i in 0..5 {
            al.insert(test_entry(0x100 + i * 4, i));
        }
        let squashed: Vec<u64> = al.squash_from(2).rev().collect();
        assert_eq!(squashed, vec![4, 3, 2], "youngest first");
        assert_eq!(al.live(), 2);
        assert_eq!(al.next_seq(), 2);
        // Squashed entries retained for recycling.
        assert_eq!(al.at_seq(3).unwrap().pc, 0x10c);
        // New insertions take over the sequence space.
        let seq = al.insert(test_entry(0x999, 9));
        assert_eq!(seq, 2);
        assert_eq!(al.at_seq(2).unwrap().pc, 0x999);
    }

    #[test]
    fn full_list_has_no_space() {
        let mut al = ActiveList::new(2);
        al.insert(test_entry(0, 0));
        al.insert(test_entry(4, 1));
        assert!(!al.has_space());
        al.commit_front();
        assert!(al.has_space(), "commit frees a slot");
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn insert_when_full_panics() {
        let mut al = ActiveList::new(1);
        al.insert(test_entry(0, 0));
        al.insert(test_entry(4, 1));
    }

    #[test]
    fn live_entries_iterates_in_order() {
        let mut al = ActiveList::new(4);
        for i in 0..3 {
            al.insert(test_entry(i * 4, i));
        }
        al.commit_front();
        let pcs: Vec<u64> = al.live_entries().map(|e| e.pc).collect();
        assert_eq!(pcs, vec![4, 8]);
    }

    #[test]
    fn clear_resets_sequences() {
        let mut al = ActiveList::new(2);
        al.insert(test_entry(0, 0));
        al.clear();
        assert_eq!(al.live(), 0);
        assert_eq!(al.next_seq(), 0);
        assert!(al.at_seq(0).is_none());
    }

    #[test]
    fn resolve_hint_is_monotone_until_squash() {
        let mut al = ActiveList::new(8);
        for i in 0..6 {
            al.insert(test_entry(i * 4, i));
        }
        assert_eq!(al.resolve_scan_start(), 0);
        al.set_resolve_hint(4);
        assert_eq!(al.resolve_scan_start(), 4);
        al.set_resolve_hint(2);
        assert_eq!(al.resolve_scan_start(), 4, "hint never moves backwards");
        al.set_resolve_hint(100);
        assert_eq!(al.resolve_scan_start(), 6, "hint clamped to next_seq");
        al.squash_from(3);
        assert_eq!(al.resolve_scan_start(), 3, "squash rolls the hint back");
        al.clear();
        assert_eq!(al.resolve_scan_start(), 0);
    }

    #[test]
    fn resolve_hint_never_trails_head() {
        let mut al = ActiveList::new(8);
        for i in 0..4 {
            al.insert(test_entry(i * 4, i));
        }
        al.commit_front();
        al.commit_front();
        assert_eq!(al.resolve_scan_start(), 2, "scan starts at head at minimum");
    }

    #[test]
    fn non_pow2_capacity_addresses_slots_identically() {
        // The pow2 mask is an addressing fast path only; a capacity that
        // forces the modulo path must behave the same across wraps.
        for cap in [3usize, 4] {
            let mut al = ActiveList::new(cap);
            for i in 0..(2 * cap as u64 + 1) {
                al.insert(test_entry(0x100 + i * 4, i));
                al.commit_front();
            }
            let newest = 2 * cap as u64;
            assert_eq!(al.at_seq(newest).unwrap().pc, 0x100 + newest * 4);
            assert!(al.at_seq(newest - cap as u64).is_none(), "slot overwritten");
        }
    }

    #[test]
    fn stream_validity_across_wrap() {
        // A recycle stream reading seq k..k+n is valid while slots match.
        let mut al = ActiveList::new(4);
        for i in 0..4 {
            al.insert(test_entry(i * 4, i));
            al.commit_front();
        }
        // All four retained. Read stream from seq 1.
        assert!(al.at_seq(1).is_some());
        // Insert one more (seq 4, overwrites slot 0 = seq 0).
        al.insert(test_entry(0x40, 4));
        assert!(al.at_seq(0).is_none());
        assert!(al.at_seq(1).is_some(), "rest of stream unaffected");
    }
}
