//! The issue stage: wakeup/select over the instruction queues, operand
//! read, functional execution, and completion scheduling.

use crate::active_list::{EntryState, MemState};
use crate::exec;
use crate::ids::CtxId;
use crate::lsq::StoreEntry;
use crate::sim::{CompletionEvent, IqEntry, Simulator};
use multipath_isa::{FuClass, OperandClass};
use std::cmp::Reverse;

impl Simulator {
    /// Runs one issue cycle.
    pub(crate) fn issue_stage(&mut self) {
        self.probe_store_addresses();
        let mut int_budget = self.config.int_units;
        let mut ls_budget = self.config.ls_units;
        let mut fp_budget = self.config.fp_units;
        self.scan_queue(false, &mut int_budget, &mut ls_budget);
        let mut unused = 0;
        self.scan_queue(true, &mut fp_budget, &mut unused);
    }

    /// Scans one queue oldest-first, issuing ready instructions within the
    /// functional-unit budgets. Stale entries (squashed or undispatched)
    /// are dropped.
    fn scan_queue(&mut self, fp_queue: bool, primary_budget: &mut usize, ls_budget: &mut usize) {
        // Take the queue out and compact it in place: kept entries slide
        // down over dropped/issued ones, preserving age order with no
        // per-cycle allocation.
        let mut q = std::mem::take(if fp_queue {
            &mut self.iq_fp
        } else {
            &mut self.iq_int
        });
        let mut kept = 0;
        for i in 0..q.len() {
            let e = q[i];
            match self.classify(&e, *primary_budget, *ls_budget) {
                IqDisposition::Drop => {}
                IqDisposition::Keep => {
                    q[kept] = e;
                    kept += 1;
                }
                IqDisposition::Issue => {
                    *primary_budget -= 1;
                    if e.fu == FuClass::LoadStore {
                        *ls_budget -= 1;
                    }
                    self.execute_entry(&e);
                }
            }
        }
        q.truncate(kept);
        if fp_queue {
            self.iq_fp = q;
        } else {
            self.iq_int = q;
        }
    }

    /// Decides what to do with a queue entry this cycle.
    fn classify(&self, e: &IqEntry, primary_budget: usize, ls_budget: usize) -> IqDisposition {
        let al = &self.contexts[e.ctx.index()].al;
        let valid = al.is_live(e.seq)
            && al.at_seq(e.seq).is_some_and(|a| {
                a.tag == e.tag && !a.fetched_only && a.state == EntryState::Pending
            });
        if !valid {
            return IqDisposition::Drop;
        }
        if primary_budget == 0 || (e.fu == FuClass::LoadStore && ls_budget == 0) {
            return IqDisposition::Keep;
        }
        for src in e.srcs.into_iter().flatten() {
            if !self.regs.is_ready(src) {
                return IqDisposition::Keep;
            }
        }
        // Conservative memory ordering: a load waits for older stores whose
        // addresses are unknown or overlap it.
        let entry = al.at_seq(e.seq).expect("validated");
        if entry.inst.op.is_load() {
            let base = e.srcs[0].map(|p| self.regs.read(p)).unwrap_or(0);
            let addr = crate::exec::effective_address(&entry.inst, base);
            let width = entry.inst.op.mem_width().expect("load has width").bytes() as u8;
            if self.older_store_blocks(e.ctx, e.tag, addr, width) {
                return IqDisposition::Keep;
            }
        }
        IqDisposition::Issue
    }

    /// Reads operands, computes the result, and schedules completion.
    fn execute_entry(&mut self, iq: &IqEntry) {
        let ctx = iq.ctx;
        let a = iq.srcs[0].map(|p| self.regs.read(p)).unwrap_or(0);
        let b = iq.srcs[1].map(|p| self.regs.read(p)).unwrap_or(0);
        for src in iq.srcs.into_iter().flatten() {
            self.regs.release(src);
        }
        let (pc, inst) = {
            let e = self.contexts[ctx.index()]
                .al
                .at_seq(iq.seq)
                .expect("validated by caller");
            (e.pc, e.inst)
        };
        let op = inst.op;
        let regread = self.config.regread_latency as u64;
        let t0 = self.cycle + regread;
        let (complete_at, result) = match op.operand_class() {
            OperandClass::CondBr => {
                let taken = exec::branch_taken(&inst, a);
                let target = if taken {
                    inst.direct_target(pc)
                } else {
                    pc + multipath_isa::INST_BYTES
                };
                self.set_actual(ctx, iq.seq, taken, target);
                (t0 + 1, None)
            }
            OperandClass::Jump => {
                self.set_actual(ctx, iq.seq, true, a);
                (t0 + 1, None)
            }
            _ if op.is_load() => {
                let addr = exec::effective_address(&inst, a);
                let width = op.mem_width().expect("load has width").bytes() as u8;
                let value = self.read_visible(ctx, iq.tag, addr, width);
                let asid = self.asid_of(ctx);
                let access = self.hierarchy.data_access(asid, addr, false, t0);
                self.mdb.record_load(asid, pc, addr);
                if let Some(e) = self.contexts[ctx.index()].al.at_seq_mut(iq.seq) {
                    e.mem = Some(MemState {
                        addr: Some(addr),
                        store_value: 0,
                    });
                }
                (access.ready_at + 1, Some(value))
            }
            _ if op.is_store() => {
                let addr = exec::effective_address(&inst, a);
                let width = op.mem_width().expect("store has width").bytes() as u8;
                let asid = self.asid_of(ctx);
                self.contexts[ctx.index()].sq.insert(StoreEntry {
                    tag: iq.tag,
                    addr,
                    width,
                    value: b,
                });
                self.contexts[ctx.index()].clear_pending_store(iq.tag);
                self.mdb.store_invalidate(asid, addr, width);
                if let Some(e) = self.contexts[ctx.index()].al.at_seq_mut(iq.seq) {
                    e.mem = Some(MemState {
                        addr: Some(addr),
                        store_value: b,
                    });
                }
                (t0 + 1, None)
            }
            _ => {
                let value = exec::alu_result(&inst, a, b, pc);
                (t0 + op.latency() as u64, Some(value))
            }
        };
        if let Some(e) = self.contexts[ctx.index()].al.at_seq_mut(iq.seq) {
            e.state = EntryState::Issued;
        }
        if self.probing() {
            let class = crate::probe::InstClass::of(op);
            self.probe(ctx, pc, crate::probe::EventKind::Issue { class });
        }
        self.contexts[ctx.index()].in_flight += 1;
        self.events.push(Reverse(CompletionEvent {
            at: complete_at.max(self.cycle + 1),
            ctx,
            seq: iq.seq,
            tag: iq.tag,
            result,
        }));
    }

    /// Computes addresses of pending stores whose base registers are ready
    /// (the address-generation half of a split store). Knowing addresses
    /// early lets independent loads bypass stores still waiting on data.
    fn probe_store_addresses(&mut self) {
        for i in 0..self.contexts.len() {
            // Probing never adds or removes pending stores, so index
            // through the list instead of cloning it.
            for k in 0..self.contexts[i].pending_stores.len() {
                let (tag, seq) = self.contexts[i].pending_stores[k];
                let Some(e) = self.contexts[i].al.at_seq(seq) else {
                    continue;
                };
                if e.tag != tag || e.mem.is_some_and(|m| m.addr.is_some()) {
                    continue;
                }
                let Some(base_preg) = e.srcs[0] else { continue };
                if !self.regs.is_ready(base_preg) {
                    continue;
                }
                let addr = crate::exec::effective_address(&e.inst, self.regs.read(base_preg));
                if let Some(e) = self.contexts[i].al.at_seq_mut(seq) {
                    e.mem = Some(MemState {
                        addr: Some(addr),
                        store_value: 0,
                    });
                }
            }
        }
    }

    /// Records a control instruction's actual outcome (resolution happens
    /// at completion).
    fn set_actual(&mut self, ctx: CtxId, seq: u64, taken: bool, target: u64) {
        if let Some(e) = self.contexts[ctx.index()].al.at_seq_mut(seq) {
            if let Some(b) = &mut e.branch {
                b.actual_taken = Some(taken);
                b.actual_target = Some(target);
            }
        }
    }
}

enum IqDisposition {
    Drop,
    Keep,
    Issue,
}
