//! Preallocated, free-list-recycled storage for the simulator hot path.
//!
//! The paper's thesis is that recycling beats re-allocating; the simulator
//! holds itself to the same rule. Everything the per-cycle loop needs more
//! than once lives here and is reused instead of reallocated:
//!
//! - [`Slab`]: a pool of `T` slots addressed by generation-tagged
//!   [`Handle`]s. Freed slots go on a free list and are reissued with a
//!   bumped generation, so a stale handle can never read a recycled slot.
//!   The respawn replay path stores its drained trace entries here and
//!   passes 8-byte handles around instead of cloning ~200-byte payloads.
//! - `Scratch` (crate-internal): the per-cycle working buffers owned by `Simulator`
//!   (ICOUNT tallies, thread orderings, spare replay queues). Stages take
//!   a buffer out, use it, and put it back; the capacity survives across
//!   cycles so steady-state simulation performs no heap allocation for
//!   them at all.

use crate::ids::CtxId;
use std::collections::VecDeque;

/// A generation-tagged reference to a [`Slab`] slot.
///
/// Handles are 8 bytes and `Copy`; they are invalidated by freeing the
/// slot (the generation advances), after which every access returns
/// `None` rather than another entry's data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Handle {
    index: u32,
    gen: u32,
}

/// A slab allocator: preallocated slots recycled through a free list.
#[derive(Debug, Clone)]
pub struct Slab<T> {
    slots: Vec<(u32, Option<T>)>,
    free: Vec<u32>,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

impl<T> Slab<T> {
    /// Creates an empty slab.
    pub fn new() -> Slab<T> {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Stores `value`, recycling a freed slot when one exists.
    pub fn insert(&mut self, value: T) -> Handle {
        match self.free.pop() {
            Some(index) => {
                let slot = &mut self.slots[index as usize];
                debug_assert!(slot.1.is_none(), "free-listed slot still occupied");
                slot.1 = Some(value);
                Handle { index, gen: slot.0 }
            }
            None => {
                let index = self.slots.len() as u32;
                self.slots.push((0, Some(value)));
                Handle { index, gen: 0 }
            }
        }
    }

    /// The value behind `h`, unless the slot has been freed since.
    pub fn get(&self, h: Handle) -> Option<&T> {
        let (gen, value) = self.slots.get(h.index as usize)?;
        if *gen != h.gen {
            return None;
        }
        value.as_ref()
    }

    /// Frees the slot behind `h` and returns its value; the handle (and
    /// any copy of it) is dead afterwards. Freeing twice is a no-op.
    pub fn free(&mut self, h: Handle) -> Option<T> {
        let slot = self.slots.get_mut(h.index as usize)?;
        if slot.0 != h.gen || slot.1.is_none() {
            return None;
        }
        let value = slot.1.take();
        slot.0 = slot.0.wrapping_add(1);
        self.free.push(h.index);
        value
    }

    /// Number of live (occupied) slots.
    pub fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Total slots ever allocated (live + recycled).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

/// Reusable per-cycle working buffers owned by the simulator.
///
/// Each pipeline stage `std::mem::take`s the buffer it needs (so the
/// borrow checker sees it as a local), clears and refills it, and puts it
/// back when done — the allocation is made once and amortised over the
/// whole run.
#[derive(Debug, Default)]
pub(crate) struct Scratch {
    /// Per-context ICOUNT tallies (rename and fetch thread selection).
    pub icounts: Vec<u64>,
    /// Rename-stage thread ordering.
    pub order: Vec<CtxId>,
    /// Fetch-stage candidate ordering.
    pub candidates: Vec<CtxId>,
    /// Emptied replay queues waiting to be reused by the next respawn.
    pub spare_replay_queues: Vec<VecDeque<Handle>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get_round_trip() {
        let mut slab: Slab<u64> = Slab::new();
        let a = slab.insert(10);
        let b = slab.insert(20);
        assert_eq!(slab.get(a), Some(&10));
        assert_eq!(slab.get(b), Some(&20));
        assert_eq!(slab.live(), 2);
    }

    #[test]
    fn free_returns_value_and_invalidates_handle() {
        let mut slab: Slab<&str> = Slab::new();
        let h = slab.insert("x");
        assert_eq!(slab.free(h), Some("x"));
        assert_eq!(slab.get(h), None, "freed handle is dead");
        assert_eq!(slab.free(h), None, "double free is a no-op");
        assert_eq!(slab.live(), 0);
    }

    #[test]
    fn slots_are_recycled_without_growth() {
        let mut slab: Slab<u32> = Slab::new();
        let h = slab.insert(1);
        slab.free(h);
        let h2 = slab.insert(2);
        assert_eq!(slab.capacity(), 1, "freed slot reused, no new allocation");
        assert_eq!(slab.get(h2), Some(&2));
        assert_eq!(slab.get(h), None, "old generation cannot alias new value");
    }

    #[test]
    fn generations_distinguish_reincarnations() {
        let mut slab: Slab<u32> = Slab::new();
        let first = slab.insert(7);
        slab.free(first);
        let second = slab.insert(8);
        assert_ne!(first, second);
        assert_eq!(slab.free(first), None);
        assert_eq!(
            slab.get(second),
            Some(&8),
            "stale free must not kill the slot"
        );
    }

    #[test]
    fn live_tracks_many_inserts_and_frees() {
        let mut slab: Slab<usize> = Slab::new();
        let handles: Vec<Handle> = (0..100).map(|i| slab.insert(i)).collect();
        assert_eq!(slab.live(), 100);
        for h in &handles[..50] {
            slab.free(*h);
        }
        assert_eq!(slab.live(), 50);
        for i in 0..50 {
            slab.insert(i);
        }
        assert_eq!(slab.live(), 100);
        assert_eq!(slab.capacity(), 100, "all inserts after free reuse slots");
    }
}
