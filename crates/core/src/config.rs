//! Simulator configuration: machine geometry, feature toggles, and the
//! paper's four machine presets.

use multipath_branch::PredictorConfig;
use multipath_mem::HierarchyConfig;

/// Which of the paper's mechanisms are enabled.
///
/// The six configurations of Figures 3 and 4 are provided as constructors:
/// [`Features::smt`], [`Features::tme`], [`Features::rec`],
/// [`Features::rec_ru`], [`Features::rec_rs`], [`Features::rec_rs_ru`].
///
/// # Examples
///
/// ```
/// use multipath_core::Features;
/// assert_eq!(Features::rec_rs_ru().label(), "REC/RS/RU");
/// assert!(Features::tme().tme && !Features::tme().recycle);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Features {
    /// Threaded multipath execution: fork alternate paths on
    /// low-confidence branches.
    pub tme: bool,
    /// Instruction recycling from active lists into the rename stage.
    pub recycle: bool,
    /// Instruction reuse (bypass issue/execute when operands unchanged).
    pub reuse: bool,
    /// Re-spawn an inactive context whose start address matches a fork
    /// target, via the recycle datapath.
    pub respawn: bool,
}

impl Features {
    /// Plain simultaneous multithreading: no multipath execution.
    pub fn smt() -> Features {
        Features {
            tme: false,
            recycle: false,
            reuse: false,
            respawn: false,
        }
    }

    /// TME without recycling (the paper's baseline to beat).
    pub fn tme() -> Features {
        Features {
            tme: true,
            recycle: false,
            reuse: false,
            respawn: false,
        }
    }

    /// TME + recycling (`REC`).
    pub fn rec() -> Features {
        Features {
            tme: true,
            recycle: true,
            reuse: false,
            respawn: false,
        }
    }

    /// Recycling + reuse (`REC/RU`).
    pub fn rec_ru() -> Features {
        Features {
            tme: true,
            recycle: true,
            reuse: true,
            respawn: false,
        }
    }

    /// Recycling + re-spawning (`REC/RS`).
    pub fn rec_rs() -> Features {
        Features {
            tme: true,
            recycle: true,
            reuse: false,
            respawn: true,
        }
    }

    /// The full architecture (`REC/RS/RU`).
    pub fn rec_rs_ru() -> Features {
        Features {
            tme: true,
            recycle: true,
            reuse: true,
            respawn: true,
        }
    }

    /// The paper's label for this configuration.
    pub fn label(&self) -> &'static str {
        match (self.tme, self.recycle, self.reuse, self.respawn) {
            (false, _, _, _) => "SMT",
            (true, false, _, _) => "TME",
            (true, true, false, false) => "REC",
            (true, true, true, false) => "REC/RU",
            (true, true, false, true) => "REC/RS",
            (true, true, true, true) => "REC/RS/RU",
        }
    }

    /// All six configurations in the paper's legend order.
    pub fn all_six() -> [Features; 6] {
        [
            Features::smt(),
            Features::tme(),
            Features::rec(),
            Features::rec_ru(),
            Features::rec_rs(),
            Features::rec_rs_ru(),
        ]
    }

    /// Parses the CLI/API spelling of a configuration (`smt`, `tme`,
    /// `rec`, `rec-ru`, `rec-rs`, `rec-rs-ru`) — the shared vocabulary of
    /// `multipath run --features` and the serving API's `"features"`
    /// field.
    pub fn from_name(name: &str) -> Option<Features> {
        Some(match name {
            "smt" => Features::smt(),
            "tme" => Features::tme(),
            "rec" => Features::rec(),
            "rec-ru" => Features::rec_ru(),
            "rec-rs" => Features::rec_rs(),
            "rec-rs-ru" => Features::rec_rs_ru(),
            _ => return None,
        })
    }
}

/// How recycled conditional branches are predicted (Section 3.4).
///
/// The paper describes two methods: keep the branch prediction previously
/// used for the trace (cheap), or re-predict each recycled branch with the
/// current predictor state and stop recycling on divergence (aggressive —
/// "requires even higher prediction throughput"). The paper, and this
/// simulator by default, use the latter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecycledPrediction {
    /// Re-predict each recycled branch; diverging predictions end the
    /// stream and redirect fetch (the paper's chosen method).
    #[default]
    Repredict,
    /// Trust the direction the trace followed; mispredictions are caught
    /// at execute like any other branch (the paper's "former method").
    Trace,
}

/// The alternate-path fetch policy of Section 5.2.
///
/// The limit is the maximum number of instructions an alternate path may
/// hold in its active list (the paper sweeps 8, 16, 32).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AltPolicy {
    /// `stop N`: stop fetching and issuing the moment the forking branch
    /// resolves (and never follow an alternate path for more than N).
    Stop(u32),
    /// `fetch N`: after resolution keep *fetching* (filling the recycle
    /// trace) up to N total, but dispatch nothing more for execution.
    FetchOnly(u32),
    /// `nostop N`: keep fetching and executing up to N total.
    NoStop(u32),
}

impl AltPolicy {
    /// The instruction limit for the alternate path.
    pub fn limit(self) -> u32 {
        match self {
            AltPolicy::Stop(n) | AltPolicy::FetchOnly(n) | AltPolicy::NoStop(n) => n,
        }
    }

    /// Whether fetch may continue after the forking branch resolves.
    pub fn fetch_after_resolve(self) -> bool {
        !matches!(self, AltPolicy::Stop(_))
    }

    /// Whether post-resolution instructions may execute.
    pub fn execute_after_resolve(self) -> bool {
        matches!(self, AltPolicy::NoStop(_))
    }

    /// The paper's label, e.g. `"nostop-32"`.
    pub fn label(self) -> String {
        match self {
            AltPolicy::Stop(n) => format!("stop-{n}"),
            AltPolicy::FetchOnly(n) => format!("fetch-{n}"),
            AltPolicy::NoStop(n) => format!("nostop-{n}"),
        }
    }

    /// Parses the label form (`stop-8`, `fetch-16`, `nostop-32`) — the
    /// inverse of [`AltPolicy::label`], shared by the CLI's `--policy`
    /// flag and the serving API's `"policy"` field.
    pub fn from_label(s: &str) -> Option<AltPolicy> {
        let (kind, n) = s.split_once('-')?;
        let n: u32 = n.parse().ok()?;
        Some(match kind {
            "stop" => AltPolicy::Stop(n),
            "fetch" => AltPolicy::FetchOnly(n),
            "nostop" => AltPolicy::NoStop(n),
            _ => return None,
        })
    }

    /// The nine policies of Figure 5.
    pub fn figure5_sweep() -> Vec<AltPolicy> {
        let mut v = Vec::with_capacity(9);
        for n in [8, 16, 32] {
            v.push(AltPolicy::NoStop(n));
        }
        for n in [8, 16, 32] {
            v.push(AltPolicy::Stop(n));
        }
        for n in [8, 16, 32] {
            v.push(AltPolicy::FetchOnly(n));
        }
        v
    }
}

impl Default for AltPolicy {
    /// `stop-8`: the paper's Section 5.2 finding is that "stopping after 8
    /// instructions down an alternate or inactive path performs very well",
    /// and our calibration agrees — aggressive alternate execution floods
    /// the machine with wrong-path work that delays path inactivation and
    /// re-spawning (see DESIGN.md).
    fn default() -> AltPolicy {
        AltPolicy::Stop(8)
    }
}

/// Full machine configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Hardware contexts. Paper: 8.
    pub contexts: usize,
    /// Threads fetched per cycle.
    pub fetch_threads: usize,
    /// Total fetch bandwidth in instructions per cycle.
    pub fetch_total: usize,
    /// Maximum sequential instructions from one thread per cycle.
    pub fetch_per_thread: usize,
    /// Rename (and commit) width.
    pub rename_width: usize,
    /// Integer instruction-queue entries.
    pub int_queue: usize,
    /// Floating-point instruction-queue entries.
    pub fp_queue: usize,
    /// Integer functional units.
    pub int_units: usize,
    /// How many of the integer units can do loads/stores.
    pub ls_units: usize,
    /// Floating-point functional units.
    pub fp_units: usize,
    /// Active-list slots per context (the recycle trace length).
    pub active_list: usize,
    /// Physical integer registers.
    pub phys_int: usize,
    /// Physical floating-point registers.
    pub phys_fp: usize,
    /// Cycles between issue and execute (the two register-read stages).
    pub regread_latency: u32,
    /// Front-end stages between fetch and rename (decode depth).
    pub decode_latency: u32,
    /// Branch predictor tables.
    pub predictor: PredictorConfig,
    /// Cache hierarchy.
    pub hierarchy: HierarchyConfig,
    /// Enabled mechanisms.
    pub features: Features,
    /// Alternate-path fetch policy.
    pub alt_policy: AltPolicy,
    /// Forks allowed per cycle.
    pub forks_per_cycle: usize,
    /// Memory-disambiguation-buffer entries (load-reuse tracking).
    pub mdb_entries: usize,
    /// How recycled conditional branches are predicted.
    pub recycled_prediction: RecycledPrediction,
    /// Cycles to duplicate register state over the Mapping Synchronization
    /// Bus when spawning an alternate path (the TME paper's MSB keeps idle
    /// contexts synchronised so spawning is fast; 1 models that).
    pub spawn_latency: u32,
    /// Commit width per cycle (shared across contexts).
    pub commit_width: usize,
}

impl SimConfig {
    /// The paper's baseline: `big.2.16` — 16-wide, 2×8 fetch, 18 FUs,
    /// 2×64-entry queues, 8 contexts.
    pub fn big_2_16() -> SimConfig {
        SimConfig {
            contexts: 8,
            fetch_threads: 2,
            fetch_total: 16,
            fetch_per_thread: 8,
            rename_width: 16,
            int_queue: 64,
            fp_queue: 64,
            int_units: 12,
            ls_units: 8,
            fp_units: 6,
            active_list: 64,
            phys_int: 8 * 32 + 100,
            phys_fp: 8 * 32 + 100,
            regread_latency: 2,
            decode_latency: 1,
            predictor: PredictorConfig::default(),
            hierarchy: HierarchyConfig::baseline(),
            features: Features::rec_rs_ru(),
            alt_policy: AltPolicy::default(),
            forks_per_cycle: 1,
            mdb_entries: 64,
            recycled_prediction: RecycledPrediction::default(),
            spawn_latency: 1,
            commit_width: 16,
        }
    }

    /// `big.1.8`: the baseline machine with fetch reduced to one thread ×
    /// eight instructions.
    pub fn big_1_8() -> SimConfig {
        let mut c = SimConfig::big_2_16();
        c.fetch_threads = 1;
        c.fetch_total = 8;
        c
    }

    /// `small.2.8`: half the functional units, queues, and caches; fetch
    /// eight instructions filled from two threads.
    pub fn small_2_8() -> SimConfig {
        let mut c = SimConfig::big_2_16();
        c.fetch_threads = 2;
        c.fetch_total = 8;
        c.rename_width = 8;
        c.commit_width = 8;
        c.int_queue = 32;
        c.fp_queue = 32;
        c.int_units = 6;
        c.ls_units = 4;
        c.fp_units = 3;
        c.hierarchy = HierarchyConfig::small();
        c
    }

    /// `small.1.8`: the small machine fetching from a single thread.
    pub fn small_1_8() -> SimConfig {
        let mut c = SimConfig::small_2_8();
        c.fetch_threads = 1;
        c
    }

    /// Parses a machine preset name (`big.2.16`, `big.1.8`, `small.2.8`,
    /// `small.1.8`) — the shared vocabulary of `multipath run --machine`
    /// and the serving API's `"machine"` field.
    pub fn from_machine_name(name: &str) -> Option<SimConfig> {
        Some(match name {
            "big.2.16" => SimConfig::big_2_16(),
            "big.1.8" => SimConfig::big_1_8(),
            "small.2.8" => SimConfig::small_2_8(),
            "small.1.8" => SimConfig::small_1_8(),
            _ => return None,
        })
    }

    /// Renders every field of the configuration — geometry, latencies,
    /// predictor and hierarchy shapes, features, and policies — in one
    /// fixed order, independent of how the configuration was constructed
    /// or what order a request spelled its fields in.
    ///
    /// This is the *canonical form* behind [`SimConfig::canonical_hash`]:
    /// two configurations canonicalize identically iff the simulator
    /// would behave identically under them, which is what makes the hash
    /// safe to use as a content address for cached simulation results.
    pub fn canonical_string(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(512);
        let _ = write!(
            s,
            "contexts={};fetch_threads={};fetch_total={};fetch_per_thread={};\
             rename_width={};int_queue={};fp_queue={};int_units={};ls_units={};\
             fp_units={};active_list={};phys_int={};phys_fp={};regread_latency={};\
             decode_latency={};forks_per_cycle={};mdb_entries={};spawn_latency={};\
             commit_width={}",
            self.contexts,
            self.fetch_threads,
            self.fetch_total,
            self.fetch_per_thread,
            self.rename_width,
            self.int_queue,
            self.fp_queue,
            self.int_units,
            self.ls_units,
            self.fp_units,
            self.active_list,
            self.phys_int,
            self.phys_fp,
            self.regread_latency,
            self.decode_latency,
            self.forks_per_cycle,
            self.mdb_entries,
            self.spawn_latency,
            self.commit_width,
        );
        let p = &self.predictor;
        let _ = write!(
            s,
            ";predictor=pht:{},btb:{},ways:{},conf:{},max:{},thr:{},ras:{},scheme:{:?}",
            p.pht_entries,
            p.btb_entries,
            p.btb_ways,
            p.conf_entries,
            p.conf_max,
            p.conf_threshold,
            p.ras_depth,
            p.scheme,
        );
        let h = &self.hierarchy;
        for (name, c) in [
            ("l1i", &h.l1i),
            ("l1d", &h.l1d),
            ("l2", &h.l2),
            ("l3", &h.l3),
        ] {
            let _ = write!(
                s,
                ";{name}={}x{}x{}x{}",
                c.size_bytes, c.line_bytes, c.ways, c.banks
            );
        }
        let _ = write!(
            s,
            ";penalties={},{},{};features={};alt={};recycled_prediction={:?}",
            h.l2_penalty,
            h.l3_penalty,
            h.memory_penalty,
            self.features.label(),
            self.alt_policy.label(),
            self.recycled_prediction,
        );
        s
    }

    /// FNV-1a 64 digest of [`SimConfig::canonical_string`] — the
    /// configuration's contribution to a content-addressed result-cache
    /// key. Stable across field-spelling order in requests and across
    /// processes (no pointer or RandomState input).
    pub fn canonical_hash(&self) -> u64 {
        fnv1a(self.canonical_string().as_bytes())
    }

    /// Returns the configuration with different features (builder-style).
    pub fn with_features(mut self, features: Features) -> SimConfig {
        self.features = features;
        self
    }

    /// Returns the configuration with a different alternate-path policy.
    pub fn with_alt_policy(mut self, policy: AltPolicy) -> SimConfig {
        self.alt_policy = policy;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (e.g. more load/store units
    /// than integer units, zero contexts, or a fetch configuration that can
    /// never supply the rename stage).
    pub fn validate(&self) {
        assert!(
            self.contexts >= 1 && self.contexts <= 8,
            "1..=8 contexts supported"
        );
        assert!(
            self.ls_units <= self.int_units,
            "load/store units are a subset of integer units"
        );
        assert!(self.fetch_threads >= 1 && self.fetch_total >= 1);
        assert!(self.fetch_per_thread >= 1);
        assert!(self.rename_width >= 1);
        assert!(
            self.active_list >= 8,
            "active lists shorter than 8 defeat recycling"
        );
        assert!(
            self.phys_int >= self.contexts * 32 + 16,
            "too few physical integer registers for {} contexts",
            self.contexts
        );
        assert!(self.phys_fp >= self.contexts * 32 + 16);
    }

    /// Contexts per program group when running `programs` programs.
    ///
    /// # Panics
    ///
    /// Panics if `programs` is zero or exceeds the context count.
    pub fn group_size(&self, programs: usize) -> usize {
        assert!(
            programs >= 1 && programs <= self.contexts,
            "cannot run {programs} programs on {} contexts",
            self.contexts
        );
        self.contexts / programs
    }
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig::big_2_16()
    }
}

/// FNV-1a 64-bit digest — the workspace's standard process-independent
/// hash (the golden-trace suite uses the same constants).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        SimConfig::big_2_16().validate();
        SimConfig::big_1_8().validate();
        SimConfig::small_2_8().validate();
        SimConfig::small_1_8().validate();
    }

    #[test]
    fn preset_geometry_matches_paper() {
        let big = SimConfig::big_2_16();
        assert_eq!(big.int_units + self_fp(&big), 18);
        assert_eq!(big.phys_int, 356);
        assert_eq!(big.fetch_threads * big.fetch_per_thread, 16);
        let small = SimConfig::small_2_8();
        assert_eq!(small.int_units, 6);
        assert_eq!(small.int_queue, 32);
        fn self_fp(c: &SimConfig) -> usize {
            c.fp_units
        }
    }

    #[test]
    fn feature_labels() {
        assert_eq!(Features::smt().label(), "SMT");
        assert_eq!(Features::tme().label(), "TME");
        assert_eq!(Features::rec().label(), "REC");
        assert_eq!(Features::rec_ru().label(), "REC/RU");
        assert_eq!(Features::rec_rs().label(), "REC/RS");
        assert_eq!(Features::rec_rs_ru().label(), "REC/RS/RU");
        assert_eq!(Features::all_six().len(), 6);
    }

    #[test]
    fn alt_policy_semantics() {
        assert!(!AltPolicy::Stop(8).fetch_after_resolve());
        assert!(AltPolicy::FetchOnly(16).fetch_after_resolve());
        assert!(!AltPolicy::FetchOnly(16).execute_after_resolve());
        assert!(AltPolicy::NoStop(32).execute_after_resolve());
        assert_eq!(AltPolicy::Stop(8).label(), "stop-8");
        assert_eq!(AltPolicy::figure5_sweep().len(), 9);
    }

    #[test]
    fn group_sizes() {
        let c = SimConfig::big_2_16();
        assert_eq!(c.group_size(1), 8);
        assert_eq!(c.group_size(2), 4);
        assert_eq!(c.group_size(4), 2);
        assert_eq!(c.group_size(8), 1);
    }

    #[test]
    #[should_panic(expected = "cannot run")]
    fn too_many_programs_rejected() {
        SimConfig::big_2_16().group_size(9);
    }
}

#[cfg(test)]
mod extra_tests {
    use super::*;

    #[test]
    fn builder_style_chaining() {
        let c = SimConfig::big_1_8()
            .with_features(Features::rec())
            .with_alt_policy(AltPolicy::FetchOnly(16));
        assert_eq!(c.fetch_threads, 1);
        assert_eq!(c.features.label(), "REC");
        assert_eq!(c.alt_policy, AltPolicy::FetchOnly(16));
    }

    #[test]
    fn default_policy_is_stop_8() {
        assert_eq!(AltPolicy::default(), AltPolicy::Stop(8));
        assert_eq!(SimConfig::default().alt_policy, AltPolicy::Stop(8));
    }

    #[test]
    fn name_parsers_round_trip() {
        for f in Features::all_six() {
            let spelled = f.label().to_lowercase().replace('/', "-");
            assert_eq!(Features::from_name(&spelled), Some(f));
        }
        assert_eq!(Features::from_name("bogus"), None);
        for name in ["big.2.16", "big.1.8", "small.2.8", "small.1.8"] {
            assert!(SimConfig::from_machine_name(name).is_some(), "{name}");
        }
        assert!(SimConfig::from_machine_name("huge.9.9").is_none());
        for p in AltPolicy::figure5_sweep() {
            assert_eq!(AltPolicy::from_label(&p.label()), Some(p));
        }
        assert_eq!(AltPolicy::from_label("stop8"), None);
        assert_eq!(AltPolicy::from_label("halt-8"), None);
    }

    #[test]
    fn canonical_hash_distinguishes_configurations() {
        let base = SimConfig::big_2_16();
        assert_eq!(
            base.canonical_hash(),
            SimConfig::big_2_16().canonical_hash()
        );
        let mut seen = std::collections::HashSet::new();
        for machine in ["big.2.16", "big.1.8", "small.2.8", "small.1.8"] {
            for f in Features::all_six() {
                let c = SimConfig::from_machine_name(machine)
                    .unwrap()
                    .with_features(f);
                assert!(seen.insert(c.canonical_hash()), "{machine}/{}", f.label());
            }
        }
        assert_ne!(
            base.canonical_hash(),
            base.clone()
                .with_alt_policy(AltPolicy::NoStop(8))
                .canonical_hash()
        );
    }

    #[test]
    fn recycled_prediction_default_is_repredict() {
        assert_eq!(RecycledPrediction::default(), RecycledPrediction::Repredict);
        assert_eq!(
            SimConfig::big_2_16().recycled_prediction,
            RecycledPrediction::Repredict
        );
    }
}
