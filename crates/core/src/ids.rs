//! Identifier newtypes used throughout the pipeline.

use std::fmt;

/// A hardware context (thread slot), `0..contexts`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CtxId(pub u8);

impl CtxId {
    /// The context number as an index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CtxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ctx{}", self.0)
    }
}

/// A simulated program (one address space / one `Asid`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProgId(pub u16);

impl ProgId {
    /// The program number as an index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prog{}", self.0)
    }
}

/// A globally unique, monotonically increasing dynamic-instruction tag.
///
/// Tags order instructions across contexts of the same program (fork points
/// compare tags, store-to-load visibility compares tags), so they must come
/// from a single counter in the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstTag(pub u64);

impl fmt::Display for InstTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// A physical register: which file plus an index within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysReg {
    /// `true` for the floating-point file.
    pub fp: bool,
    /// Index within the file.
    pub index: u16,
}

impl fmt::Display for PhysReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", if self.fp { "pf" } else { "pr" }, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(CtxId(3).to_string(), "ctx3");
        assert_eq!(ProgId(1).to_string(), "prog1");
        assert_eq!(InstTag(42).to_string(), "i42");
        assert_eq!(
            PhysReg {
                fp: false,
                index: 7
            }
            .to_string(),
            "pr7"
        );
        assert_eq!(PhysReg { fp: true, index: 7 }.to_string(), "pf7");
    }

    #[test]
    fn tags_order() {
        assert!(InstTag(1) < InstTag(2));
    }
}
