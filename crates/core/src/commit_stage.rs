//! The commit stage: in-order retirement per context, store writeback to
//! memory, and the drain transition for displaced primaries.

use crate::active_list::EntryState;
use crate::context::CtxState;
use crate::ids::CtxId;
use crate::sim::Simulator;
use multipath_isa::Opcode;

impl Simulator {
    /// Runs one commit cycle.
    pub(crate) fn commit_stage(&mut self) {
        let mut budget = self.config.commit_width;
        for i in 0..self.contexts.len() {
            if budget == 0 {
                break;
            }
            let ctx = CtxId(i as u8);
            match self.contexts[i].state {
                CtxState::Primary | CtxState::Draining => {}
                _ => continue,
            }
            // Program order across contexts: after a swap the new primary
            // waits for the old one's (older) instructions to drain.
            if let Some(gate) = self.contexts[i].commit_gate {
                if self.contexts[gate.index()].al.live() > 0 {
                    continue;
                }
                self.contexts[i].commit_gate = None;
            }
            while budget > 0 {
                // Nothing commits after the program's halt.
                let finished = self.contexts[i]
                    .prog
                    .is_some_and(|p| self.programs[p.index()].finished);
                if finished {
                    break;
                }
                let ready = self.contexts[i].al.front().is_some_and(|e| {
                    e.state == EntryState::Done && e.branch.as_ref().is_none_or(|b| b.resolved)
                });
                if !ready {
                    break;
                }
                self.commit_one(ctx);
                budget -= 1;
            }
        }
        self.drain_transitions();
    }

    /// Retires the oldest entry of `ctx`.
    fn commit_one(&mut self, ctx: CtxId) {
        let seq = self.contexts[ctx.index()].al.commit_front();
        // One active-list access per retirement: mutate the retained entry,
        // then work from a copied snapshot.
        let snap = {
            let e = self.contexts[ctx.index()]
                .al
                .at_seq_mut(seq)
                .expect("just committed");
            e.regs_held = false;
            let snap = *e;
            e.old_preg = None;
            snap
        };
        let (op, tag, old_preg, mem) = (snap.inst.op, snap.tag, snap.old_preg, snap.mem);
        if self.commit_log.is_some() || self.reference.is_some() {
            let (pc, value, inst, reused, recycled) = (
                snap.pc,
                snap.new_preg.map(|p| self.regs.read(p)),
                snap.inst,
                snap.reused,
                snap.recycled,
            );
            if let Some(log) = self.commit_log.as_mut() {
                log.push((pc, value));
            }
            let mismatch = match self.reference.as_mut() {
                Some((rp, emu)) if self.contexts[ctx.index()].prog == Some(*rp) => {
                    let expected = emu.step();
                    let retired = emu.retired();
                    let bad = expected.pc != pc
                        || (expected.value.is_some() && value.is_some() && expected.value != value);
                    bad.then_some((expected, retired))
                }
                _ => None,
            };
            if let Some((expected, retired)) = mismatch {
                #[cfg(debug_assertions)]
                eprintln!(
                    "fe log of {ctx}:\n{}",
                    self.contexts[ctx.index()]
                        .fe_log
                        .iter()
                        .map(|s| format!("  {s}"))
                        .collect::<Vec<_>>()
                        .join("\n")
                );
                let trail: Vec<String> = {
                    let al = &self.contexts[ctx.index()].al;
                    (al.head_seq().saturating_sub(6)..al.next_seq())
                        .take(20)
                        .filter_map(|s| {
                            al.at_seq(s)
                                .map(|e| format!("seq{} {}@{:#x} tag{}", s, e.inst, e.pc, e.tag.0))
                        })
                        .collect()
                };
                eprintln!("commit trail of {ctx}: {trail:#?}");
                let state = self.debug_state();
                panic!(
                    "architectural divergence at cycle {} retire #{retired}: committed {inst} pc={pc:#x} value={value:?} reused={reused} recycled={recycled} ({ctx}) | reference pc={:#x} value={:?}\n{state}",
                    self.cycle, expected.pc, expected.value,
                );
            }
        }
        let prog = self.contexts[ctx.index()]
            .prog
            .expect("committing context bound");

        if op.is_store() {
            let m = mem.expect("executed store has an address");
            let addr = m.addr.expect("executed store has an address");
            let width = op.mem_width().expect("store has width").bytes();
            let memory = &mut self.programs[prog.index()].memory;
            match width {
                1 => memory.write_u8(addr, m.store_value as u8),
                4 => memory.write_u32(addr, m.store_value as u32),
                _ => memory.write_u64(addr, m.store_value),
            }
            self.contexts[ctx.index()].sq.remove(tag);
            // Charge the cache for the write (write-allocate at commit).
            let asid = self.programs[prog.index()].asid;
            let cycle = self.cycle;
            self.hierarchy.data_access(asid, addr, true, cycle);
        }
        if let Some(old) = old_preg {
            self.regs.release(old);
        }
        if op == Opcode::Halt {
            self.programs[prog.index()].finished = true;
        }
        self.stats.committed += 1;
        self.stats.committed_per_program[prog.index()] += 1;
        if self.probing() {
            let class = crate::probe::InstClass::of(op);
            self.probe(ctx, snap.pc, crate::probe::EventKind::Commit { class });
        }
        self.contexts[ctx.index()].last_used = self.cycle;
    }

    /// Old primaries that have finished committing become recyclable
    /// (inactive) sources — or return to the idle pool without recycling.
    fn drain_transitions(&mut self) {
        for i in 0..self.contexts.len() {
            if self.contexts[i].state != CtxState::Draining {
                continue;
            }
            if self.contexts[i].al.live() > 0 {
                continue;
            }
            debug_assert!(
                self.contexts[i].sq.is_empty(),
                "drained context still buffers stores"
            );
            let cycle = self.cycle;
            let c = &mut self.contexts[i];
            c.pending_stores.clear();
            if self.config.features.recycle {
                c.state = CtxState::Inactive;
                c.last_used = cycle;
            } else {
                c.state = CtxState::Idle;
                c.al.clear();
                c.squash_merge = None;
                c.back_merge = None;
            }
            // Everything older than the waiters has now committed.
            self.clear_gates_to(CtxId(i as u8));
        }
    }
}
