//! The simulator: construction, the cycle loop, and the public API.
//!
//! Pipeline stages live in sibling modules as `impl Simulator` blocks:
//! [`crate::frontend`] (fetch + merge detection), [`crate::rename_stage`]
//! (rename, recycling, reuse, forking), [`crate::issue_stage`],
//! [`crate::writeback`] (completion + branch resolution + recovery),
//! [`crate::commit_stage`], and [`crate::tme`] (fork/swap/respawn/reclaim
//! mechanics).

use crate::active_list::AlEntry;
use crate::arena::{Scratch, Slab};
use crate::config::SimConfig;
use crate::context::Context;
use crate::ids::{CtxId, InstTag, PhysReg, ProgId};
use crate::map::MapTable;
use crate::regfile::RegFiles;
use crate::reuse::{Mdb, WrittenBits};
use crate::stats::Stats;
use multipath_branch::BranchPredictor;
use multipath_isa::{FuClass, IntReg, Reg};
use multipath_mem::{Asid, Memory, MemoryHierarchy};
use multipath_workload::Program;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// One running program: its image, address space, and progress.
#[derive(Debug)]
pub struct ProgramInstance {
    /// The loaded program.
    pub program: Program,
    /// Its private address space.
    pub memory: Memory,
    /// Cache address-space identifier.
    pub asid: Asid,
    /// Whether a `halt` has committed.
    pub finished: bool,
}

/// A context partition: the contexts serving one program, and which of
/// them currently runs the primary path.
#[derive(Debug, Clone)]
pub struct Group {
    /// The program this group runs.
    pub prog: ProgId,
    /// Member contexts (fixed at construction).
    pub members: Vec<CtxId>,
    /// The context currently executing the primary path.
    pub primary: CtxId,
}

/// A group's member contexts as a `Copy` range — members are contiguous
/// by construction (`Simulator::new` assigns `p*size..(p+1)*size`), so
/// stages iterate this instead of cloning the `members` vector.
#[derive(Debug, Clone, Copy)]
pub(crate) struct GroupSpan {
    start: u8,
    len: u8,
}

impl GroupSpan {
    /// Iterates the member context ids, in group order.
    pub(crate) fn iter(self) -> impl Iterator<Item = CtxId> {
        (self.start..self.start + self.len).map(CtxId)
    }
}

/// An instruction-queue entry (the wakeup/select window).
#[derive(Debug, Clone, Copy)]
pub(crate) struct IqEntry {
    pub ctx: CtxId,
    pub seq: u64,
    pub tag: InstTag,
    pub srcs: [Option<PhysReg>; 2],
    pub fu: FuClass,
}

/// A scheduled completion (result broadcast / branch resolution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct CompletionEvent {
    pub at: u64,
    pub ctx: CtxId,
    pub seq: u64,
    pub tag: InstTag,
    pub result: Option<u64>,
}

impl Ord for CompletionEvent {
    fn cmp(&self, other: &CompletionEvent) -> std::cmp::Ordering {
        (self.at, self.tag.0).cmp(&(other.at, other.tag.0))
    }
}

impl PartialOrd for CompletionEvent {
    fn partial_cmp(&self, other: &CompletionEvent) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The execution-driven SMT/TME/Recycle simulator.
///
/// # Examples
///
/// ```
/// use multipath_core::{SimConfig, Simulator, Features};
/// use multipath_workload::{kernels, Benchmark};
///
/// let program = kernels::build(Benchmark::Compress, 1);
/// let config = SimConfig::big_2_16().with_features(Features::rec_rs_ru());
/// let mut sim = Simulator::new(config, vec![program]);
/// let stats = sim.run(5_000, 200_000);
/// assert!(stats.committed >= 5_000);
/// assert!(stats.ipc() > 0.0);
/// ```
#[derive(Debug)]
pub struct Simulator {
    pub(crate) config: SimConfig,
    pub(crate) cycle: u64,
    pub(crate) contexts: Vec<Context>,
    pub(crate) regs: RegFiles,
    pub(crate) map: MapTable,
    pub(crate) written: WrittenBits,
    pub(crate) mdb: Mdb,
    pub(crate) predictor: BranchPredictor,
    pub(crate) hierarchy: MemoryHierarchy,
    pub(crate) programs: Vec<ProgramInstance>,
    pub(crate) groups: Vec<Group>,
    pub(crate) iq_int: VecDeque<IqEntry>,
    pub(crate) iq_fp: VecDeque<IqEntry>,
    pub(crate) events: BinaryHeap<Reverse<CompletionEvent>>,
    pub(crate) next_tag: u64,
    pub(crate) stats: Stats,
    pub(crate) forks_this_cycle: usize,
    /// Reusable per-cycle working buffers (no steady-state allocation).
    pub(crate) scratch: Scratch,
    /// Pool holding respawn replay-buffer entries; streams carry 8-byte
    /// handles into this slab instead of owning cloned entries.
    pub(crate) replay_pool: Slab<AlEntry>,
    /// When enabled, every committed instruction is appended as
    /// `(pc, destination value)` — a debugging aid for comparing
    /// architectural execution across configurations.
    pub(crate) commit_log: Option<Vec<(u64, Option<u64>)>>,
    /// Lock-step reference emulator: each commit of the given program is
    /// validated against it (testing aid).
    pub(crate) reference: Option<(ProgId, crate::emulator::Emulator)>,
    /// Cooperative cancellation handle, polled between cycles by `run`
    /// (`None` in batch runs: the loop pays one `Option` check per cycle).
    pub(crate) cancel: Option<crate::cancel::CancelToken>,
    /// Attached observability sinks (`None` in production runs: the hot
    /// path pays one branch per probe site and nothing else).
    pub(crate) probes: Option<Box<crate::probe::Probes>>,
    /// Host-side per-stage wall-clock profile, when enabled.
    pub(crate) host_prof: Option<Box<crate::probe::StageProfile>>,
}

impl Simulator {
    /// Builds a simulator running `programs` on the configured machine.
    ///
    /// Each program gets its own address space and an even share of the
    /// hardware contexts (its *group*); the first context of each group
    /// starts as the primary thread at the program's entry point.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or there are more programs
    /// than contexts (or zero programs).
    pub fn new(config: SimConfig, programs: Vec<Program>) -> Simulator {
        config.validate();
        let group_size = config.group_size(programs.len());
        let predictor = BranchPredictor::new(config.predictor.clone());
        let mut contexts: Vec<Context> = (0..config.contexts)
            .map(|i| {
                Context::new(
                    CtxId(i as u8),
                    config.active_list,
                    predictor.history_bits(),
                    predictor.ras_depth(),
                )
            })
            .collect();
        let mut regs = RegFiles::new(config.phys_int, config.phys_fp);
        let mut map = MapTable::new(config.contexts);
        let mut groups = Vec::with_capacity(programs.len());
        let instances: Vec<ProgramInstance> = programs
            .into_iter()
            .enumerate()
            .map(|(p, program)| {
                let mut memory = Memory::new();
                program.load_into(&mut memory);
                ProgramInstance {
                    program,
                    memory,
                    asid: Asid(p as u16),
                    finished: false,
                }
            })
            .collect();

        for (p, inst) in instances.iter().enumerate() {
            let members: Vec<CtxId> = (p * group_size..(p + 1) * group_size)
                .map(|i| CtxId(i as u8))
                .collect();
            let primary = members[0];
            // Seed the primary context's architectural state.
            for idx in 0..multipath_isa::NUM_LOGICAL_REGS {
                let reg = Reg::from_index(idx);
                let preg = regs
                    .alloc(!reg.is_int())
                    .expect("physical files sized for all contexts");
                let value = if reg == Reg::Int(IntReg::SP) {
                    inst.program.initial_sp
                } else {
                    0
                };
                regs.write(preg, value);
                map.set(primary, reg, preg);
            }
            for &c in &members {
                let ctx = &mut contexts[c.index()];
                ctx.prog = Some(ProgId(p as u16));
                ctx.group = p as u8;
                if c != primary {
                    // Spare regions take their own references: a register
                    // named by any map region must stay alive (see
                    // `copy_region_with_refs`).
                    for (_, preg) in map.region(primary) {
                        regs.add_ref(preg);
                    }
                    map.copy_region(primary, c);
                }
            }
            let prim = &mut contexts[primary.index()];
            prim.state = crate::context::CtxState::Primary;
            prim.fetch_pc = inst.program.entry;
            prim.al_next_pc = inst.program.entry;
            groups.push(Group {
                prog: ProgId(p as u16),
                members,
                primary,
            });
        }

        let stats = Stats::new(instances.len());
        Simulator {
            mdb: Mdb::new(config.mdb_entries),
            written: WrittenBits::new(config.contexts),
            hierarchy: MemoryHierarchy::new(config.hierarchy.clone()),
            predictor,
            regs,
            map,
            contexts,
            programs: instances,
            groups,
            iq_int: VecDeque::new(),
            iq_fp: VecDeque::new(),
            events: BinaryHeap::new(),
            next_tag: 0,
            stats,
            forks_this_cycle: 0,
            scratch: Scratch::default(),
            replay_pool: Slab::new(),
            cycle: 0,
            config,
            commit_log: None,
            reference: None,
            cancel: None,
            probes: None,
            host_prof: None,
        }
    }

    /// Attaches a lock-step reference emulator for `prog`: every commit is
    /// checked against architectural execution and any divergence panics
    /// with machine state. Testing aid.
    pub fn attach_reference(&mut self, prog: ProgId) {
        let emu = crate::emulator::Emulator::new(&self.programs[prog.index()].program);
        self.reference = Some((prog, emu));
    }

    /// Enables the per-commit architectural log (diagnostics).
    pub fn enable_commit_log(&mut self) {
        self.commit_log = Some(Vec::new());
    }

    /// The committed `(pc, destination value)` log, if enabled.
    pub fn commit_log(&self) -> Option<&[(u64, Option<u64>)]> {
        self.commit_log.as_deref()
    }

    /// Attaches the observability sinks described by `config`. Until this
    /// is called, every probe site is a single predictable branch.
    pub fn enable_probes(&mut self, config: crate::probe::ProbeConfig) {
        self.probes = Some(Box::new(crate::probe::Probes::new(config)));
    }

    /// Enables host-side per-stage wall-clock profiling.
    pub fn enable_host_profile(&mut self) {
        self.host_prof = Some(Box::default());
    }

    /// The attached probes, if any.
    pub fn probes(&self) -> Option<&crate::probe::Probes> {
        self.probes.as_deref()
    }

    /// Detaches and returns the probes (export after a run).
    pub fn take_probes(&mut self) -> Option<Box<crate::probe::Probes>> {
        self.probes.take()
    }

    /// The accumulated host stage profile, if enabled.
    pub fn host_profile(&self) -> Option<&crate::probe::StageProfile> {
        self.host_prof.as_deref()
    }

    /// Finalizes statistics and closes the probe sinks (trailing partial
    /// interval, open Perfetto spans). Call once after the last `step`/
    /// `run` and before exporting; idempotent.
    pub fn finish_probes(&mut self) {
        self.finalize_stats();
        if let Some(mut probes) = self.probes.take() {
            probes.finish(self.cycle, &self.stats);
            self.probes = Some(probes);
        }
    }

    /// Advances the machine one cycle.
    pub fn step(&mut self) {
        if self.host_prof.is_some() {
            self.step_profiled();
            return;
        }
        self.forks_this_cycle = 0;
        self.commit_stage();
        self.writeback_stage();
        self.issue_stage();
        self.rename_stage();
        self.fetch_stage();
        self.cycle += 1;
        self.stats.cycles = self.cycle;
        #[cfg(debug_assertions)]
        if self.cycle.is_multiple_of(4096) {
            self.regs.check_conservation();
        }
        if self.probes.is_some() {
            self.probe_cycle_end();
        }
    }

    /// `step` with host wall-clock accumulation per stage. A separate
    /// body so the unprofiled loop stays branch-free between stages.
    fn step_profiled(&mut self) {
        use std::time::Instant;
        let mut prof = self.host_prof.take().expect("caller checked");
        self.forks_this_cycle = 0;
        let mut t = Instant::now();
        let mut lap = |acc: &mut std::time::Duration| {
            let now = Instant::now();
            *acc += now - t;
            t = now;
        };
        self.commit_stage();
        lap(&mut prof.commit);
        self.writeback_stage();
        lap(&mut prof.writeback);
        self.issue_stage();
        lap(&mut prof.issue);
        self.rename_stage();
        lap(&mut prof.rename);
        self.fetch_stage();
        lap(&mut prof.fetch);
        self.cycle += 1;
        self.stats.cycles = self.cycle;
        #[cfg(debug_assertions)]
        if self.cycle.is_multiple_of(4096) {
            self.regs.check_conservation();
        }
        if self.probes.is_some() {
            self.probe_cycle_end();
        }
        lap(&mut prof.probes);
        prof.steps += 1;
        self.host_prof = Some(prof);
    }

    /// Feeds end-of-cycle state (cumulative stats + per-context views) to
    /// the attached sinks.
    fn probe_cycle_end(&mut self) {
        let mut probes = self.probes.take().expect("caller checked");
        probes.views.clear();
        for c in &self.contexts {
            probes.views.push(crate::probe::CtxView {
                role: crate::trace::CtxStateKind::of(c.state),
                live: c.al.live() as u32,
                stream: c
                    .recycle_stream
                    .as_ref()
                    .map(|s| s.remaining())
                    .unwrap_or(0),
            });
        }
        let views = std::mem::take(&mut probes.views);
        crate::probe::ProbeSink::cycle_end(&mut *probes, self.cycle, &self.stats, &views);
        probes.views = views;
        self.probes = Some(probes);
    }

    /// Emits one pipeline event to the attached sinks. Cheap no-op when
    /// probes are disabled; emission sites that compute event arguments
    /// should guard on [`Simulator::probing`] first.
    #[inline]
    pub(crate) fn probe(&mut self, ctx: CtxId, pc: u64, kind: crate::probe::EventKind) {
        if let Some(p) = self.probes.as_mut() {
            crate::probe::ProbeSink::event(
                &mut **p,
                &crate::probe::Event {
                    cycle: self.cycle,
                    ctx: ctx.0,
                    pc,
                    kind,
                },
            );
        }
    }

    /// Whether probes are attached (guard for emission sites whose event
    /// arguments cost anything to compute).
    #[inline]
    pub(crate) fn probing(&self) -> bool {
        self.probes.is_some()
    }

    /// Attaches a cooperative [`CancelToken`](crate::CancelToken):
    /// [`Simulator::run`] polls it between cycles and returns early once
    /// it fires (explicitly, or by its deadline). Statistics are
    /// finalized either way; [`Simulator::cancelled`] reports which
    /// happened.
    pub fn set_cancel(&mut self, token: crate::cancel::CancelToken) {
        self.cancel = Some(token);
    }

    /// Whether the attached cancel token (if any) has fired.
    pub fn cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(crate::cancel::CancelToken::is_cancelled)
    }

    /// Runs until `total_committed` instructions have committed across all
    /// programs, every program has halted, `max_cycles` elapse, or the
    /// attached cancel token (see [`Simulator::set_cancel`]) fires.
    /// Returns the accumulated statistics.
    pub fn run(&mut self, total_committed: u64, max_cycles: u64) -> &Stats {
        while self.stats.committed < total_committed
            && self.cycle < max_cycles
            && !self.programs.iter().all(|p| p.finished)
        {
            if let Some(token) = &self.cancel {
                if token.should_stop(self.cycle) {
                    break;
                }
            }
            self.step();
        }
        self.finalize_stats();
        &self.stats
    }

    /// Flushes per-path statistics still held by live contexts into the
    /// aggregate counters (call once, at end of run; `run` does this).
    pub fn finalize_stats(&mut self) {
        for i in 0..self.contexts.len() {
            let path = self.contexts[i].path;
            if path.live {
                self.flush_path_record(CtxId(i as u8));
            }
        }
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The context partition groups.
    pub fn groups(&self) -> &[Group] {
        &self.groups
    }

    /// Read access to a program's memory (inspection in tests/examples).
    pub fn program_memory(&self, prog: ProgId) -> &Memory {
        &self.programs[prog.index()].memory
    }

    /// Whether the given program has executed its `halt`.
    pub fn program_finished(&self, prog: ProgId) -> bool {
        self.programs[prog.index()].finished
    }

    /// Memory-hierarchy statistics.
    pub fn hierarchy_stats(&self) -> multipath_mem::HierarchyStats {
        self.hierarchy.stats()
    }

    /// Per-context `(state, live entries, stream remaining)` views, in
    /// context order — the raw feed for [`crate::trace`].
    pub fn context_views(
        &self,
    ) -> impl Iterator<Item = (crate::context::CtxState, usize, u64)> + '_ {
        self.contexts.iter().map(|c| {
            (
                c.state,
                c.al.live(),
                c.recycle_stream
                    .as_ref()
                    .map(|s| s.remaining())
                    .unwrap_or(0),
            )
        })
    }

    /// One-line-per-context debug summary (diagnostics).
    pub fn debug_state(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for c in &self.contexts {
            let front =
                c.al.front()
                    .map(|e| format!("{}@{:#x}[{:?}]", e.inst, e.pc, e.state));
            let _ = writeln!(
                out,
                "  {} {:?} pc={:#x} live={} pipe={} stream={} inflight={} gate={:?} stall={} stopped={} front={:?}",
                c.id,
                c.state,
                c.fetch_pc,
                c.al.live(),
                c.decode_pipe.len(),
                c.recycle_stream.as_ref().map(|s| s.remaining()).unwrap_or(0),
                c.in_flight,
                c.commit_gate,
                c.fetch_stall_until,
                c.fetch_stopped,
                front,
            );
        }
        let _ = writeln!(
            out,
            "  iq_int={} iq_fp={} events={} free_int={} free_fp={}",
            self.iq_int.len(),
            self.iq_fp.len(),
            self.events.len(),
            self.regs.free_count(false),
            self.regs.free_count(true)
        );
        out
    }

    /// Dumps the instruction queues with per-source readiness (diagnostics).
    pub fn debug_iq(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, q) in [("int", &self.iq_int), ("fp", &self.iq_fp)] {
            for e in q.iter().take(12) {
                let entry = self.contexts[e.ctx.index()].al.at_seq(e.seq);
                let srcs: Vec<String> = e
                    .srcs
                    .iter()
                    .flatten()
                    .map(|&p| format!("{}{}", p, if self.regs.is_ready(p) { "+" } else { "-" }))
                    .collect();
                let _ = writeln!(
                    out,
                    "  {name} ctx{} seq{} tag{} {:?} srcs={srcs:?} live={} state={:?}",
                    e.ctx.0,
                    e.seq,
                    e.tag.0,
                    entry.map(|a| a.inst.to_string()),
                    self.contexts[e.ctx.index()].al.is_live(e.seq),
                    entry.map(|a| a.state),
                );
            }
        }
        out
    }

    /// Copies `from`'s map region over `to`'s, with reference accounting:
    /// every physical register is kept alive by each map region that names
    /// it, so an alternate context's copied state can never be freed out
    /// from under it by the parent's commits (the constraint behind the
    /// paper's register-reclaim protocol, Section 3.5).
    pub(crate) fn copy_region_with_refs(&mut self, from: CtxId, to: CtxId) {
        // References on the incoming region must be taken before the old
        // region's are dropped: if a register appears in both, releasing
        // first could free it out from under the copy.
        for (_, p) in self.map.region(from) {
            self.regs.add_ref(p);
        }
        for (_, p) in self.map.region(to) {
            self.regs.release(p);
        }
        self.map.copy_region(from, to);
    }

    // ------------------------------------------------------------------
    // Shared helpers used by the stage modules.
    // ------------------------------------------------------------------

    /// Allocates the next global dynamic-instruction tag.
    pub(crate) fn alloc_tag(&mut self) -> InstTag {
        let t = InstTag(self.next_tag);
        self.next_tag += 1;
        t
    }

    /// The group a context belongs to.
    pub(crate) fn group_of(&self, ctx: CtxId) -> &Group {
        &self.groups[self.contexts[ctx.index()].group as usize]
    }

    /// Whether `ctx` currently runs its group's primary path.
    pub(crate) fn is_primary(&self, ctx: CtxId) -> bool {
        self.group_of(ctx).primary == ctx
    }

    /// The member contexts of `ctx`'s group as a `Copy` span, for
    /// iteration that must not hold a borrow of `self`.
    pub(crate) fn group_span(&self, ctx: CtxId) -> GroupSpan {
        let g = self.group_of(ctx);
        GroupSpan {
            start: g.members[0].0,
            len: g.members.len() as u8,
        }
    }

    /// Tears down `ctx`'s recycle stream, if any, returning replay-buffer
    /// entries to [`Simulator::replay_pool`] and the emptied queue to the
    /// scratch spares. Every site that ends a stream must go through here
    /// (not `recycle_stream = None`) or pool slots leak until reset.
    pub(crate) fn drop_stream(&mut self, ctx: CtxId) {
        if let Some(stream) = self.contexts[ctx.index()].recycle_stream.take() {
            if let crate::context::StreamSource::Buffer(mut buf) = stream.source {
                for h in buf.drain(..) {
                    self.replay_pool.free(h);
                }
                self.scratch.spare_replay_queues.push(buf);
            }
        }
    }

    /// The address-space id of the program a context runs.
    pub(crate) fn asid_of(&self, ctx: CtxId) -> Asid {
        let prog = self.contexts[ctx.index()]
            .prog
            .expect("context has no program");
        self.programs[prog.index()].asid
    }

    /// Front-end + queue occupancy per context (the ICOUNT heuristic),
    /// written into a caller-owned scratch buffer.
    pub(crate) fn fill_icounts(&self, counts: &mut Vec<u64>) {
        counts.clear();
        counts.resize(self.contexts.len(), 0);
        for ctx in &self.contexts {
            let mut n = ctx.decode_pipe.len() as u64;
            if let Some(stream) = &ctx.recycle_stream {
                // Recycled instructions count immediately (Section 3.3).
                n += stream.remaining();
            }
            counts[ctx.id.index()] = n;
        }
        for q in [&self.iq_int, &self.iq_fp] {
            for e in q {
                counts[e.ctx.index()] += 1;
            }
        }
    }

    /// Reads the value a load would see: own store queue, then ancestor
    /// queues bounded by fork tags, then committed memory.
    pub(crate) fn read_visible(&self, ctx: CtxId, tag: InstTag, addr: u64, width: u8) -> u64 {
        // The fork chain visits each context at most once plus a defensive
        // extra slot, and `SimConfig::validate` caps contexts at 8 — so
        // the store-queue chain fits a stack array; loads allocate nothing.
        const MAX_CHAIN: usize = 9;
        let prog = self.contexts[ctx.index()]
            .prog
            .expect("load on unbound context");
        let memory = &self.programs[prog.index()].memory;
        let mut chain: [(&crate::lsq::StoreQueue, InstTag); MAX_CHAIN] =
            [(&self.contexts[ctx.index()].sq, tag); MAX_CHAIN];
        let mut n = 0;
        let mut cur = ctx;
        let mut bound = tag;
        loop {
            let c = &self.contexts[cur.index()];
            chain[n] = (&c.sq, bound);
            n += 1;
            match c.fork_link {
                Some(link) if self.contexts[link.parent.index()].prog == c.prog => {
                    bound = InstTag(link.fork_tag.0.min(bound.0));
                    cur = link.parent;
                    if n > self.contexts.len() {
                        break; // defensive: cycles cannot happen, but cap anyway
                    }
                }
                _ => break,
            }
        }
        crate::lsq::load_value(memory, &chain[..n], addr, width)
    }

    /// Whether a load at `tag` in `ctx` reading `[addr, addr+width)` must
    /// wait for an older store.
    ///
    /// Stores compute their addresses as soon as their base register is
    /// ready (see the address pre-probe in the issue stage); a load is
    /// blocked only by an older unexecuted store whose address is still
    /// unknown or overlaps the load — standard conservative memory
    /// disambiguation without misspeculation/replay.
    pub(crate) fn older_store_blocks(
        &self,
        ctx: CtxId,
        tag: InstTag,
        addr: u64,
        width: u8,
    ) -> bool {
        let mut cur = ctx;
        let mut bound = tag;
        for _ in 0..self.contexts.len() {
            let c = &self.contexts[cur.index()];
            for &(store_tag, seq) in &c.pending_stores {
                if store_tag >= bound {
                    break;
                }
                match c.al.at_seq(seq).filter(|e| e.tag == store_tag) {
                    Some(e) => match e.mem.and_then(|m| m.addr) {
                        Some(st_addr) => {
                            let w = e.inst.op.mem_width().map(|w| w.bytes()).unwrap_or(8);
                            if crate::lsq::ranges_overlap(st_addr, w, addr, width as u64) {
                                return true; // overlapping, data not ready
                            }
                        }
                        None => return true, // address unknown
                    },
                    None => continue, // squashed remnant; harmless
                }
            }
            match c.fork_link {
                Some(link) if self.contexts[link.parent.index()].prog == c.prog => {
                    bound = InstTag(link.fork_tag.0.min(bound.0));
                    cur = link.parent;
                }
                _ => return false,
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Features;
    use multipath_isa::Inst;
    use multipath_workload::Program;

    fn trivial_program(words: Vec<u32>) -> Program {
        Program {
            name: "trivial".to_owned(),
            text_base: 0x1_0000,
            text: words,
            data: Vec::new(),
            entry: 0x1_0000,
            initial_sp: 0x7f_0000,
        }
    }

    #[test]
    fn construction_partitions_contexts() {
        let p = trivial_program(vec![Inst::halt().encode()]);
        let sim = Simulator::new(SimConfig::big_2_16(), vec![p.clone(), p]);
        assert_eq!(sim.groups().len(), 2);
        assert_eq!(sim.groups()[0].members.len(), 4);
        assert_eq!(sim.groups()[1].members[0], CtxId(4));
        assert!(sim.is_primary(CtxId(0)));
        assert!(sim.is_primary(CtxId(4)));
        assert!(!sim.is_primary(CtxId(1)));
    }

    #[test]
    fn seeding_reserves_logical_registers() {
        let p = trivial_program(vec![Inst::halt().encode()]);
        let sim = Simulator::new(SimConfig::big_2_16(), vec![p]);
        // 32 int registers seeded; the rest free for renaming.
        assert_eq!(sim.regs.free_count(false), 356 - 32);
        assert_eq!(sim.regs.free_count(true), 356 - 32);
    }

    #[test]
    fn halt_program_finishes() {
        let p = trivial_program(vec![Inst::halt().encode()]);
        let mut sim = Simulator::new(
            SimConfig::big_2_16().with_features(Features::smt()),
            vec![p],
        );
        sim.run(1_000, 10_000);
        assert!(sim.program_finished(ProgId(0)));
        assert!(sim.cycle() < 1_000, "a single halt should finish quickly");
    }
}
