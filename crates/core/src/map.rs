//! The register mapping table with one region per hardware context.
//!
//! Figure 1 of the paper: an 8-context SMT/TME processor has a mapping
//! table of 8 regions, each translating that context's logical registers
//! to physical registers. TME duplicates register state between contexts
//! by copying one region to another over the Mapping Synchronization Bus;
//! [`MapTable::copy_region`] models that.

use crate::ids::{CtxId, PhysReg};
use multipath_isa::{Reg, NUM_LOGICAL_REGS};

/// The full mapping table.
#[derive(Debug, Clone)]
pub struct MapTable {
    regions: Vec<[Option<PhysReg>; NUM_LOGICAL_REGS]>,
}

impl MapTable {
    /// Creates a table with `contexts` empty regions.
    pub fn new(contexts: usize) -> MapTable {
        MapTable {
            regions: vec![[None; NUM_LOGICAL_REGS]; contexts],
        }
    }

    /// The current mapping of `reg` in `ctx`'s region.
    ///
    /// # Panics
    ///
    /// Panics if the region was never initialised for this register — the
    /// simulator seeds every logical register at program start, so a miss
    /// is a renaming bug.
    pub fn get(&self, ctx: CtxId, reg: Reg) -> PhysReg {
        self.regions[ctx.index()][reg.index()].unwrap_or_else(|| panic!("unmapped {reg} in {ctx}"))
    }

    /// Overwrites the mapping of `reg` in `ctx`'s region, returning the
    /// displaced mapping (the "old mapping" recorded in the active list).
    pub fn set(&mut self, ctx: CtxId, reg: Reg, to: PhysReg) -> Option<PhysReg> {
        self.regions[ctx.index()][reg.index()].replace(to)
    }

    /// Copies `from`'s entire region over `to`'s (the MSB synchronisation
    /// used when spawning or re-synchronising a spare context).
    pub fn copy_region(&mut self, from: CtxId, to: CtxId) {
        let src = self.regions[from.index()];
        self.regions[to.index()] = src;
    }

    /// Iterates the current mappings of a region (for seeding and audits).
    pub fn region(&self, ctx: CtxId) -> impl Iterator<Item = (Reg, PhysReg)> + '_ {
        self.regions[ctx.index()]
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|p| (Reg::from_index(i), p)))
    }

    /// Number of regions (contexts).
    pub fn contexts(&self) -> usize {
        self.regions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multipath_isa::IntReg;

    fn preg(i: u16) -> PhysReg {
        PhysReg {
            fp: false,
            index: i,
        }
    }

    #[test]
    fn set_returns_displaced() {
        let mut m = MapTable::new(2);
        let r = Reg::Int(IntReg::R5);
        assert_eq!(m.set(CtxId(0), r, preg(1)), None);
        assert_eq!(m.set(CtxId(0), r, preg(2)), Some(preg(1)));
        assert_eq!(m.get(CtxId(0), r), preg(2));
    }

    #[test]
    fn regions_are_independent() {
        let mut m = MapTable::new(2);
        let r = Reg::Int(IntReg::R5);
        m.set(CtxId(0), r, preg(1));
        m.set(CtxId(1), r, preg(2));
        assert_eq!(m.get(CtxId(0), r), preg(1));
        assert_eq!(m.get(CtxId(1), r), preg(2));
    }

    #[test]
    fn copy_region_duplicates_state() {
        let mut m = MapTable::new(2);
        let r5 = Reg::Int(IntReg::R5);
        let r6 = Reg::Int(IntReg::R6);
        m.set(CtxId(0), r5, preg(1));
        m.set(CtxId(0), r6, preg(2));
        m.copy_region(CtxId(0), CtxId(1));
        assert_eq!(m.get(CtxId(1), r5), preg(1));
        assert_eq!(m.get(CtxId(1), r6), preg(2));
        // Subsequent divergence does not leak back.
        m.set(CtxId(1), r5, preg(9));
        assert_eq!(m.get(CtxId(0), r5), preg(1));
    }

    #[test]
    #[should_panic(expected = "unmapped")]
    fn unseeded_lookup_panics() {
        MapTable::new(1).get(CtxId(0), Reg::Int(IntReg::R0));
    }

    #[test]
    fn region_iterator_lists_mappings() {
        let mut m = MapTable::new(1);
        m.set(CtxId(0), Reg::Int(IntReg::R1), preg(4));
        let all: Vec<_> = m.region(CtxId(0)).collect();
        assert_eq!(all, vec![(Reg::Int(IntReg::R1), preg(4))]);
    }
}
