//! Hardware context state.
//!
//! A context is a thread slot: program counter, renaming region, active
//! list, store queue, and per-context predictor state (global history and
//! return stack). Section 3.1 of the paper adds the recycle-architecture
//! states: a context can be *active* (primary or alternate), *inactive*
//! (finished executing, registers and trace retained for recycling), or
//! *idle* (holding nothing — only seen at startup or in TME-only mode).

use crate::active_list::ActiveList;
use crate::ids::{CtxId, InstTag, ProgId};
use crate::lsq::{ForkLink, StoreQueue};
use multipath_branch::{GlobalHistory, ReturnStack};
use multipath_isa::Inst;
use std::collections::VecDeque;

/// The context's role in its group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtxState {
    /// Holding nothing (startup, or a released spare in TME-only mode).
    Idle,
    /// Executing the predicted path of a program; the only state that
    /// commits new work.
    Primary,
    /// Executing (or having executed) an alternate path forked at
    /// `fork_tag` off `parent`.
    Alternate {
        /// Context this path was forked from.
        parent: CtxId,
        /// Global tag of the forking branch.
        fork_tag: InstTag,
        /// Whether the forking branch has resolved (correctly); the
        /// alternate-path policy governs behaviour afterwards.
        resolved: bool,
    },
    /// An old primary after a covered misprediction: commits its remaining
    /// correct-path instructions, fetches nothing.
    Draining,
    /// Finished executing; registers and trace retained for recycling.
    Inactive,
}

impl CtxState {
    /// Whether this context currently renames/fetches on a live path.
    pub fn is_running(self) -> bool {
        matches!(self, CtxState::Primary | CtxState::Alternate { .. })
    }

    /// Whether this context's trace is available as a recycle source.
    pub fn is_recyclable_source(self) -> bool {
        matches!(self, CtxState::Alternate { .. } | CtxState::Inactive)
    }
}

/// A validated position in an active list used for merge detection:
/// the candidate is still valid iff the slot at `seq` still holds `pc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergePoint {
    /// Sequence number of the first instruction to recycle.
    pub seq: u64,
    /// Its address.
    pub pc: u64,
}

/// The source feeding a recycle stream.
#[derive(Debug, Clone)]
pub enum StreamSource {
    /// Read from a context's active list (merge recycling).
    Context(CtxId),
    /// Drained entries replayed on respawn. The handles index the
    /// simulator's replay pool ([`crate::sim::Simulator`]'s `replay_pool`);
    /// they must be freed through `Simulator::drop_stream`, never by
    /// dropping the stream directly.
    Buffer(VecDeque<crate::arena::Handle>),
}

/// An in-progress recycle stream feeding a thread's rename input.
#[derive(Debug, Clone)]
pub struct RecycleStream {
    /// Where entries come from.
    pub source: StreamSource,
    /// Next sequence to read (for context sources).
    pub next_seq: u64,
    /// One past the last sequence to read (bound captured at creation).
    pub end_seq: u64,
    /// Whether reuse may be attempted for entries of this stream.
    pub reuse_allowed: bool,
    /// Whether this is a backward-branch (primary-to-primary) merge.
    pub back_merge: bool,
    /// The PC the next expected entry must have; used to resume fetching
    /// at the right place if the stream dies mid-way.
    pub expected_pc: u64,
    /// The global-history view *as of the next stream entry*. The context's
    /// own GHR already holds the whole trace's directions (pushed at stream
    /// creation so post-trace fetch predicts with consistent history);
    /// per-entry re-prediction uses this mid-trace view instead.
    pub ghr: multipath_branch::GlobalHistory,
    /// Decode-pipe entries that were fetched *before* this stream was
    /// created. They are older than the trace and must clear the rename
    /// stage first (Section 3.2: "once the prior fetched instructions for
    /// that thread have cleared the rename stage").
    pub pre_items: usize,
    /// Where fetch resumed when the stream was created. If re-prediction
    /// walks the trace differently (e.g. a trace branch was re-resolved
    /// after creation), the post-trace fetch is discarded on completion.
    pub resume_pc: u64,
    /// Registers whose *current* mapping was installed by a reuse from
    /// this very stream. For such registers the consumer sees, by
    /// construction, exactly the physical register (and value) the trace
    /// entry consumed — so chained reuse through them is sound even when
    /// the written-bit array is conservative. Any non-reuse write clears
    /// the register's freshness. Dies with the stream.
    pub fresh: [bool; multipath_isa::NUM_LOGICAL_REGS],
}

impl RecycleStream {
    /// Instructions remaining in the stream.
    pub fn remaining(&self) -> u64 {
        match &self.source {
            StreamSource::Context(_) => self.end_seq.saturating_sub(self.next_seq),
            StreamSource::Buffer(buf) => buf.len() as u64,
        }
    }
}

/// A fetched instruction waiting in the decode pipe.
#[derive(Debug, Clone)]
pub struct FetchedInst {
    /// Cycle at which it may enter rename.
    pub ready_cycle: u64,
    /// The instruction's address.
    pub pc: u64,
    /// The decoded instruction.
    pub inst: Inst,
    /// Prediction made at fetch for control instructions.
    pub pred: Option<FetchPrediction>,
}

/// Prediction state captured at fetch time.
#[derive(Debug, Clone, Copy)]
pub struct FetchPrediction {
    /// Predicted direction (true for unconditional control).
    pub taken: bool,
    /// Predicted target if taken.
    pub target: u64,
    /// Global history at prediction (for training and repair).
    pub history: u64,
    /// Confidence estimate (low confidence ⇒ TME fork candidate).
    pub confident: bool,
}

/// Statistics accumulated for one forked path, flushed when the path is
/// finally deleted (reclaimed); needed for Table 1's per-fork columns.
#[derive(Debug, Clone, Copy, Default)]
pub struct PathRecord {
    /// This context currently holds a forked path (so the record counts).
    pub live: bool,
    /// The alternate became the primary (covered a misprediction).
    pub used_tme: bool,
    /// Number of merge recycles taken from this path.
    pub merges: u64,
    /// The path was re-spawned at least once.
    pub respawned: bool,
}

/// One hardware context.
#[derive(Debug, Clone)]
pub struct Context {
    /// This context's identity.
    pub id: CtxId,
    /// Role state.
    pub state: CtxState,
    /// The program whose code this context runs (set once at partition).
    pub prog: Option<ProgId>,
    /// Partition group (one per program).
    pub group: u8,
    /// Next fetch address.
    pub fetch_pc: u64,
    /// Fetch is stalled (instruction-cache miss) until this cycle.
    pub fetch_stall_until: u64,
    /// Fetch permanently stopped (halt reached or path complete).
    pub fetch_stopped: bool,
    /// Per-context global branch history.
    pub ghr: GlobalHistory,
    /// Per-context return stack.
    pub ras: ReturnStack,
    /// The active list (in-flight window + recycle trace).
    pub al: ActiveList,
    /// Speculative stores.
    pub sq: StoreQueue,
    /// Fork ancestry for store-to-load visibility.
    pub fork_link: Option<ForkLink>,
    /// After a swap, this context may not commit until the old primary's
    /// active list drains (program order across contexts).
    pub commit_gate: Option<CtxId>,
    /// Fetched instructions awaiting rename.
    pub decode_pipe: VecDeque<FetchedInst>,
    /// Active recycle stream, if any.
    pub recycle_stream: Option<RecycleStream>,
    /// PC of the instruction after the newest active-list entry — the
    /// address fetch resumes at when this context's trace is recycled.
    pub al_next_pc: u64,
    /// Backward-branch merge point (Section 3.2).
    pub back_merge: Option<MergePoint>,
    /// Retained-squashed-path merge point (primary-path recycling).
    pub squash_merge: Option<MergePoint>,
    /// Instructions fetched since this path started (alternate-path cap).
    pub fetched_total: u64,
    /// Unexecuted stores `(tag, seq)`, oldest first (load ordering guard).
    pub pending_stores: Vec<(InstTag, u64)>,
    /// Issued-but-incomplete instruction count (blocks reclaim).
    pub in_flight: u32,
    /// Fork-path statistics (flushed at reclaim).
    pub path: PathRecord,
    /// Last cycle this context was spawned/used (LRU reclaim).
    pub last_used: u64,
    /// Debug-only ring of recent front-end events (dumped on invariant
    /// violations).
    #[cfg(debug_assertions)]
    pub fe_log: std::collections::VecDeque<String>,
}

impl Context {
    /// Creates an idle context.
    pub fn new(id: CtxId, al_capacity: usize, history_bits: u32, ras_depth: usize) -> Context {
        Context {
            id,
            state: CtxState::Idle,
            prog: None,
            group: 0,
            fetch_pc: 0,
            fetch_stall_until: 0,
            fetch_stopped: false,
            ghr: GlobalHistory::new(history_bits),
            ras: ReturnStack::new(ras_depth),
            al: ActiveList::new(al_capacity),
            sq: StoreQueue::new(),
            fork_link: None,
            commit_gate: None,
            decode_pipe: VecDeque::new(),
            recycle_stream: None,
            al_next_pc: 0,
            back_merge: None,
            squash_merge: None,
            fetched_total: 0,
            pending_stores: Vec::new(),
            in_flight: 0,
            path: PathRecord::default(),
            last_used: 0,
            #[cfg(debug_assertions)]
            fe_log: std::collections::VecDeque::new(),
        }
    }

    /// Records a debug front-end event (no-op in release builds).
    #[cfg(debug_assertions)]
    pub fn log_fe(&mut self, cycle: u64, msg: String) {
        if self.fe_log.len() >= 48 {
            self.fe_log.pop_front();
        }
        self.fe_log.push_back(format!("cycle {cycle}: {msg}"));
    }

    /// Records a debug front-end event (no-op in release builds).
    #[cfg(not(debug_assertions))]
    pub fn log_fe(&mut self, _cycle: u64, _msg: String) {}

    /// The PC of the first instruction of this context's trace (the
    /// primary merge / respawn match point for alternates and inactives).
    pub fn first_pc(&self) -> Option<u64> {
        self.al.at_seq(0).map(|e| e.pc).or_else(|| {
            // Alternates never commit, so their first entry is seq 0; but
            // be robust to head movement.
            self.al.at_seq(0).map(|e| e.pc)
        })
    }

    /// Whether this context may be reclaimed for a new fork right now.
    pub fn reclaimable(&self) -> bool {
        self.state == CtxState::Inactive && self.in_flight == 0
    }

    /// Records an unexecuted store (called at rename).
    pub fn push_pending_store(&mut self, tag: InstTag, seq: u64) {
        debug_assert!(self.pending_stores.last().is_none_or(|&(t, _)| t < tag));
        self.pending_stores.push((tag, seq));
    }

    /// Removes a store that has executed (or been squashed).
    pub fn clear_pending_store(&mut self, tag: InstTag) {
        if let Some(pos) = self.pending_stores.iter().position(|&(t, _)| t == tag) {
            self.pending_stores.remove(pos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::active_list::test_entry;

    fn ctx() -> Context {
        Context::new(CtxId(0), 8, 11, 12)
    }

    #[test]
    fn starts_idle_and_empty() {
        let c = ctx();
        assert_eq!(c.state, CtxState::Idle);
        assert_eq!(c.first_pc(), None);
        assert!(
            !c.reclaimable(),
            "idle contexts are used directly, not reclaimed"
        );
    }

    #[test]
    fn first_pc_is_trace_start() {
        let mut c = ctx();
        c.al.insert(test_entry(0x4000, 1));
        c.al.insert(test_entry(0x4004, 2));
        assert_eq!(c.first_pc(), Some(0x4000));
    }

    #[test]
    fn state_predicates() {
        assert!(CtxState::Primary.is_running());
        assert!(!CtxState::Inactive.is_running());
        assert!(CtxState::Inactive.is_recyclable_source());
        assert!(!CtxState::Draining.is_recyclable_source());
        let alt = CtxState::Alternate {
            parent: CtxId(0),
            fork_tag: InstTag(1),
            resolved: false,
        };
        assert!(alt.is_running());
        assert!(alt.is_recyclable_source());
    }

    #[test]
    fn pending_store_ordering() {
        let mut c = ctx();
        c.push_pending_store(InstTag(5), 0);
        c.push_pending_store(InstTag(9), 1);
        assert_eq!(c.pending_stores.len(), 2);
        c.clear_pending_store(InstTag(5));
        assert_eq!(c.pending_stores, vec![(InstTag(9), 1)]);
        c.clear_pending_store(InstTag(42)); // absent tags are ignored
        assert_eq!(c.pending_stores.len(), 1);
    }

    #[test]
    fn reclaimable_requires_inactive_and_quiescent() {
        let mut c = ctx();
        c.state = CtxState::Inactive;
        assert!(c.reclaimable());
        c.in_flight = 1;
        assert!(!c.reclaimable());
    }

    #[test]
    fn stream_remaining_counts() {
        let s = RecycleStream {
            source: StreamSource::Context(CtxId(1)),
            next_seq: 3,
            end_seq: 10,
            reuse_allowed: true,
            back_merge: false,
            expected_pc: 0x100,
            ghr: multipath_branch::GlobalHistory::new(11),
            pre_items: 0,
            resume_pc: 0,
            fresh: [false; multipath_isa::NUM_LOGICAL_REGS],
        };
        assert_eq!(s.remaining(), 7);
        let mut pool = crate::arena::Slab::new();
        let h = pool.insert(test_entry(0, 0));
        let b = RecycleStream {
            source: StreamSource::Buffer([h].into_iter().collect()),
            next_seq: 0,
            end_seq: 0,
            reuse_allowed: false,
            back_merge: false,
            expected_pc: 0,
            ghr: multipath_branch::GlobalHistory::new(11),
            pre_items: 0,
            resume_pc: 0,
            fresh: [false; multipath_isa::NUM_LOGICAL_REGS],
        };
        assert_eq!(b.remaining(), 1);
    }
}
