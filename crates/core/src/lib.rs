//! # multipath-core
//!
//! An execution-driven, cycle-level simulator of a simultaneous
//! multithreading (SMT) processor with Threaded Multipath Execution (TME)
//! and **instruction recycling** — a from-scratch reproduction of
//! *Wallace, Tullsen, Calder, "Instruction Recycling on a Multiple-Path
//! Processor", HPCA 1999*.
//!
//! The simulated machine (Section 4.1 of the paper) is a 16-wide, 8-context
//! SMT processor that fetches eight instructions from each of two threads
//! per cycle, with 12 integer and 6 floating-point functional units, two
//! 64-entry instruction queues, a 9-stage pipeline, gshare branch
//! prediction with a JRS confidence estimator, and a three-level cache
//! hierarchy. On top of it:
//!
//! * **TME** forks both paths of low-confidence conditional branches into
//!   spare hardware contexts, eliminating misprediction penalties when the
//!   alternate path turns out to be correct.
//! * **Recycling** (`REC`) keeps finished paths *inactive* rather than
//!   squashed: their active lists hold decoded traces that are injected
//!   back into the rename stage when the primary path merges with them —
//!   bypassing fetch and decode, and with them branch and cache-line fetch
//!   limits.
//! * **Reuse** (`RU`) goes further: a recycled instruction whose operands
//!   are unchanged re-uses its old physical register (and its old value),
//!   bypassing issue and execution entirely.
//! * **Re-spawning** (`RS`) re-creates an alternate path from an inactive
//!   context through the recycle datapath, consuming no fetch bandwidth.
//!
//! Values flow through a real physical register file, wrong paths truly
//! execute, and speculative stores are buffered per context — so reuse and
//! multipath interactions are exact rather than sampled.
//!
//! # Examples
//!
//! ```
//! use multipath_core::{Features, SimConfig, Simulator};
//! use multipath_workload::{kernels, Benchmark};
//!
//! // Compare plain SMT against the full recycle architecture on the
//! // compress kernel.
//! let mut results = Vec::new();
//! for features in [Features::smt(), Features::rec_rs_ru()] {
//!     let program = kernels::build(Benchmark::Compress, 42);
//!     let config = SimConfig::big_2_16().with_features(features);
//!     let mut sim = Simulator::new(config, vec![program]);
//!     results.push(sim.run(3_000, 100_000).ipc());
//! }
//! assert!(results.iter().all(|&ipc| ipc > 0.0));
//! ```

pub mod active_list;
pub mod arena;
pub mod cancel;
pub mod commit_stage;
pub mod config;
pub mod context;
pub mod emulator;
pub mod exec;
pub mod explain;
pub mod frontend;
pub mod ids;
pub mod issue_stage;
pub mod lsq;
pub mod map;
pub mod probe;
pub mod regfile;
pub mod rename_stage;
pub mod reuse;
pub mod sim;
pub mod stats;
pub mod tme;
pub mod trace;
pub mod writeback;

pub use cancel::CancelToken;
pub use config::{AltPolicy, Features, RecycledPrediction, SimConfig};
pub use explain::{
    explain_json, explain_markdown, AttributionSink, BranchRow, MergeEdge, PathNode, PathNodeKind,
    PathTreeSink, SquashSite,
};
pub use ids::{CtxId, InstTag, PhysReg, ProgId};
pub use probe::{
    intervals_csv, stats_json, CtxView, Event, EventFilter, EventKind, InstClass, Interval,
    IntervalSink, NullSink, ProbeConfig, ProbeSink, Probes, RefuseReason, ReuseDeny, RingSink,
    SpanRecorder, StageProfile,
};
pub use sim::{Group, ProgramInstance, Simulator};
pub use stats::Stats;
