//! Reuse-legality tracking: the written-bit array and the Memory
//! Disambiguation Buffer of Section 3.5.

use crate::ids::CtxId;
use multipath_isa::{Reg, NUM_LOGICAL_REGS};
use multipath_mem::Asid;

/// The written-bit array: `written[reg][ctx]` is set when logical `reg`
/// has received a new instance (by the context's primary thread) since
/// `ctx`'s path was started.
///
/// * When a new path starts on a context (TME spawn), that context's
///   column is reset.
/// * When a primary thread makes a new register instance, the row is set
///   for every context in its group.
/// * A recycled instruction may be reused only if all its source rows are
///   clear for the source context.
#[derive(Debug, Clone)]
pub struct WrittenBits {
    bits: Vec<[bool; NUM_LOGICAL_REGS]>,
}

impl WrittenBits {
    /// Creates the array for `contexts` columns, all clear.
    pub fn new(contexts: usize) -> WrittenBits {
        WrittenBits {
            bits: vec![[false; NUM_LOGICAL_REGS]; contexts],
        }
    }

    /// Resets a context's column (a new path starts on it).
    pub fn reset_column(&mut self, ctx: CtxId) {
        self.bits[ctx.index()] = [false; NUM_LOGICAL_REGS];
    }

    /// Marks `reg` as rewritten with respect to every context in `group`.
    pub fn set_row(&mut self, reg: Reg, group: impl Iterator<Item = CtxId>) {
        for ctx in group {
            self.bits[ctx.index()][reg.index()] = true;
        }
    }

    /// Whether `reg` is unchanged since `ctx`'s path started.
    pub fn unchanged(&self, ctx: CtxId, reg: Reg) -> bool {
        !self.bits[ctx.index()][reg.index()]
    }
}

/// One MDB entry: a load whose (pc, address) pair is still valid for reuse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MdbEntry {
    asid: Asid,
    pc: u64,
    addr: u64,
}

/// The Memory Disambiguation Buffer.
///
/// Executed loads deposit `(pc, address)`; stores to a matching address
/// knock entries out. A recycled load may reuse its old value only if its
/// PC is still present with the same address — i.e. no intervening store
/// touched the data (Section 3.5).
#[derive(Debug, Clone)]
pub struct Mdb {
    entries: Vec<MdbEntry>,
    capacity: usize,
}

impl Mdb {
    /// Creates an MDB with `capacity` entries (FIFO replacement).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Mdb {
        assert!(capacity > 0, "MDB capacity must be positive");
        Mdb {
            entries: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Records an executed load.
    pub fn record_load(&mut self, asid: Asid, pc: u64, addr: u64) {
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.asid == asid && e.pc == pc)
        {
            e.addr = addr;
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.remove(0);
        }
        self.entries.push(MdbEntry { asid, pc, addr });
    }

    /// A store executed/committed: invalidate loads whose data it may have
    /// changed (byte-range overlap, same address space).
    pub fn store_invalidate(&mut self, asid: Asid, addr: u64, width: u8) {
        // Loads are at most 8 bytes; treat each entry as an 8-byte window
        // (conservative — may drop a reusable load, never keeps a stale
        // one). Ranges that wrap past u64::MAX are treated as overlapping
        // everything, which is safe in the same direction.
        self.entries.retain(|e| {
            e.asid != asid || !crate::lsq::ranges_overlap(addr, width as u64, e.addr, 8)
        });
    }

    /// Whether the load at `pc` may reuse its value for `addr`.
    pub fn reusable(&self, asid: Asid, pc: u64, addr: u64) -> bool {
        self.entries
            .iter()
            .any(|e| e.asid == asid && e.pc == pc && e.addr == addr)
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the MDB is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multipath_isa::IntReg;

    #[test]
    fn written_bits_track_per_context() {
        let mut wb = WrittenBits::new(4);
        let r5 = Reg::Int(IntReg::R5);
        assert!(wb.unchanged(CtxId(1), r5));
        wb.set_row(r5, [CtxId(0), CtxId(1)].into_iter());
        assert!(!wb.unchanged(CtxId(1), r5));
        assert!(wb.unchanged(CtxId(2), r5), "other group untouched");
        wb.reset_column(CtxId(1));
        assert!(wb.unchanged(CtxId(1), r5));
        assert!(!wb.unchanged(CtxId(0), r5), "reset is per column");
    }

    #[test]
    fn mdb_load_then_reusable() {
        let mut mdb = Mdb::new(4);
        mdb.record_load(Asid(0), 0x1000, 0x200);
        assert!(mdb.reusable(Asid(0), 0x1000, 0x200));
        assert!(!mdb.reusable(Asid(0), 0x1000, 0x208), "address must match");
        assert!(!mdb.reusable(Asid(1), 0x1000, 0x200), "asid must match");
    }

    #[test]
    fn store_knocks_out_overlapping_loads() {
        let mut mdb = Mdb::new(4);
        mdb.record_load(Asid(0), 0x1000, 0x200);
        mdb.record_load(Asid(0), 0x1004, 0x300);
        mdb.store_invalidate(Asid(0), 0x204, 1); // overlaps the 0x200 window
        assert!(!mdb.reusable(Asid(0), 0x1000, 0x200));
        assert!(mdb.reusable(Asid(0), 0x1004, 0x300));
    }

    #[test]
    fn store_in_other_address_space_is_ignored() {
        let mut mdb = Mdb::new(4);
        mdb.record_load(Asid(0), 0x1000, 0x200);
        mdb.store_invalidate(Asid(1), 0x200, 8);
        assert!(mdb.reusable(Asid(0), 0x1000, 0x200));
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut mdb = Mdb::new(2);
        mdb.record_load(Asid(0), 0x1, 0x100);
        mdb.record_load(Asid(0), 0x2, 0x200);
        mdb.record_load(Asid(0), 0x3, 0x300);
        assert!(!mdb.reusable(Asid(0), 0x1, 0x100), "FIFO evicted");
        assert!(mdb.reusable(Asid(0), 0x3, 0x300));
    }

    #[test]
    fn re_execution_updates_address() {
        let mut mdb = Mdb::new(2);
        mdb.record_load(Asid(0), 0x1, 0x100);
        mdb.record_load(Asid(0), 0x1, 0x180);
        assert!(!mdb.reusable(Asid(0), 0x1, 0x100));
        assert!(mdb.reusable(Asid(0), 0x1, 0x180));
        assert_eq!(mdb.len(), 1);
    }
}
