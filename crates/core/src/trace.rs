//! Pipeline tracing: compact per-cycle occupancy timelines.
//!
//! A [`CycleSample`] records, for one cycle, what each hardware context is
//! doing and how much work moved through the major stages; `sample_window`
//! steps the simulator and collects samples, and [`render_timeline`] turns
//! them into a text chart — the quickest way to *see* forking, draining,
//! recycling streams, and starvation:
//!
//! ```text
//! cycle    ctx: 0        1        2        ...   fet ren com
//! 1000     P 37+s12  A 8       I 22        ...    8   16   9
//! ```
//!
//! Legend: `P` primary, `A` alternate (`a` once resolved), `D` draining,
//! `I` inactive, `.` idle; the number is live active-list entries; `+sN`
//! marks an active recycle stream with `N` instructions remaining.

use crate::context::CtxState;
use crate::sim::Simulator;

/// What one context was doing in one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtxSample {
    /// Role at the end of the cycle.
    pub state: CtxStateKind,
    /// Live (uncommitted) active-list entries.
    pub live: usize,
    /// Instructions remaining in an attached recycle stream.
    pub stream: u64,
}

/// A compact mirror of [`CtxState`] for display.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtxStateKind {
    /// No path.
    Idle,
    /// The architectural path.
    Primary,
    /// A speculative alternate path (branch unresolved).
    Alternate,
    /// An alternate whose branch resolved (finishing its policy tail).
    AlternateResolved,
    /// A displaced primary committing its remainder.
    Draining,
    /// A retained, recyclable trace.
    Inactive,
}

impl CtxStateKind {
    /// Number of roles (the width of role-occupancy histograms).
    pub const COUNT: usize = 6;

    /// All roles, index-aligned with [`CtxStateKind::index`].
    pub const ALL: [CtxStateKind; CtxStateKind::COUNT] = [
        CtxStateKind::Idle,
        CtxStateKind::Primary,
        CtxStateKind::Alternate,
        CtxStateKind::AlternateResolved,
        CtxStateKind::Draining,
        CtxStateKind::Inactive,
    ];

    /// Classifies a full [`CtxState`] into its display role.
    pub fn of(state: CtxState) -> CtxStateKind {
        match state {
            CtxState::Idle => CtxStateKind::Idle,
            CtxState::Primary => CtxStateKind::Primary,
            CtxState::Alternate {
                resolved: false, ..
            } => CtxStateKind::Alternate,
            CtxState::Alternate { resolved: true, .. } => CtxStateKind::AlternateResolved,
            CtxState::Draining => CtxStateKind::Draining,
            CtxState::Inactive => CtxStateKind::Inactive,
        }
    }

    /// Dense index into role-occupancy histograms.
    pub fn index(self) -> usize {
        match self {
            CtxStateKind::Idle => 0,
            CtxStateKind::Primary => 1,
            CtxStateKind::Alternate => 2,
            CtxStateKind::AlternateResolved => 3,
            CtxStateKind::Draining => 4,
            CtxStateKind::Inactive => 5,
        }
    }

    /// Human-readable role name (stats.json / Perfetto track labels).
    pub fn name(self) -> &'static str {
        match self {
            CtxStateKind::Idle => "idle",
            CtxStateKind::Primary => "primary",
            CtxStateKind::Alternate => "alternate",
            CtxStateKind::AlternateResolved => "alternate_resolved",
            CtxStateKind::Draining => "draining",
            CtxStateKind::Inactive => "inactive",
        }
    }

    /// One-character display form.
    pub fn glyph(self) -> char {
        match self {
            CtxStateKind::Idle => '.',
            CtxStateKind::Primary => 'P',
            CtxStateKind::Alternate => 'A',
            CtxStateKind::AlternateResolved => 'a',
            CtxStateKind::Draining => 'D',
            CtxStateKind::Inactive => 'I',
        }
    }
}

/// One cycle of pipeline activity.
#[derive(Debug, Clone)]
pub struct CycleSample {
    /// The cycle this sample describes.
    pub cycle: u64,
    /// Per-context activity.
    pub contexts: Vec<CtxSample>,
    /// Instructions fetched this cycle.
    pub fetched: u64,
    /// Instructions renamed this cycle (including recycled).
    pub renamed: u64,
    /// ... of which recycled.
    pub recycled: u64,
    /// Instructions committed this cycle.
    pub committed: u64,
}

/// Steps the simulator `cycles` times, returning one sample per cycle.
pub fn sample_window(sim: &mut Simulator, cycles: u64) -> Vec<CycleSample> {
    let mut out = Vec::with_capacity(cycles as usize);
    for _ in 0..cycles {
        let before = sim.stats().clone();
        sim.step();
        let after = sim.stats();
        let contexts = sim
            .context_views()
            .map(|(state, live, stream)| CtxSample {
                state: CtxStateKind::of(state),
                live,
                stream,
            })
            .collect();
        out.push(CycleSample {
            cycle: sim.cycle(),
            contexts,
            fetched: after.fetched - before.fetched,
            renamed: after.renamed - before.renamed,
            recycled: after.recycled - before.recycled,
            committed: after.committed - before.committed,
        });
    }
    out
}

/// Renders samples as a text timeline (one row per `stride` cycles).
pub fn render_timeline(samples: &[CycleSample], stride: usize) -> String {
    let mut out = String::new();
    let Some(first) = samples.first() else {
        return out;
    };
    out.push_str(&format!("{:>8}  ", "cycle"));
    for i in 0..first.contexts.len() {
        out.push_str(&format!("{:<9}", format!("ctx{i}")));
    }
    out.push_str(" fet ren rec com\n");
    for sample in samples.iter().step_by(stride.max(1)) {
        out.push_str(&format!("{:>8}  ", sample.cycle));
        for c in &sample.contexts {
            let cell = if c.stream > 0 {
                format!("{} {}+s{}", c.state.glyph(), c.live, c.stream)
            } else {
                format!("{} {}", c.state.glyph(), c.live)
            };
            out.push_str(&format!("{cell:<9}"));
        }
        out.push_str(&format!(
            "{:>4}{:>4}{:>4}{:>4}\n",
            sample.fetched, sample.renamed, sample.recycled, sample.committed
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Features, SimConfig};
    use multipath_workload::{kernels, Benchmark};

    #[test]
    fn sampling_tracks_work() {
        let config = SimConfig::big_2_16().with_features(Features::rec_rs_ru());
        let mut sim = Simulator::new(config, vec![kernels::build(Benchmark::Compress, 1)]);
        // Warm up, then sample.
        sim.run(2_000, 100_000);
        let start_committed = sim.stats().committed;
        let samples = sample_window(&mut sim, 200);
        assert_eq!(samples.len(), 200);
        let total: u64 = samples.iter().map(|s| s.committed).sum();
        assert_eq!(total, sim.stats().committed - start_committed);
        assert!(samples.iter().any(|s| s.fetched > 0));
        assert!(
            samples
                .iter()
                .any(|s| s.contexts.iter().any(|c| c.state != CtxStateKind::Idle)),
            "something must be running"
        );
    }

    #[test]
    fn timeline_renders() {
        let config = SimConfig::big_2_16().with_features(Features::rec_rs_ru());
        let mut sim = Simulator::new(config, vec![kernels::build(Benchmark::Go, 1)]);
        sim.run(1_000, 100_000);
        let samples = sample_window(&mut sim, 64);
        let text = render_timeline(&samples, 8);
        assert!(text.contains("ctx0"));
        assert!(text.lines().count() >= 8);
    }

    #[test]
    fn role_indices_are_dense_and_aligned() {
        for (i, role) in CtxStateKind::ALL.iter().enumerate() {
            assert_eq!(role.index(), i);
        }
        let mut names: Vec<&str> = CtxStateKind::ALL.iter().map(|r| r.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CtxStateKind::COUNT);
    }

    #[test]
    fn glyphs_are_distinct() {
        let all = [
            CtxStateKind::Idle,
            CtxStateKind::Primary,
            CtxStateKind::Alternate,
            CtxStateKind::AlternateResolved,
            CtxStateKind::Draining,
            CtxStateKind::Inactive,
        ];
        let mut glyphs: Vec<char> = all.iter().map(|k| k.glyph()).collect();
        glyphs.sort_unstable();
        glyphs.dedup();
        assert_eq!(glyphs.len(), all.len());
    }
}
