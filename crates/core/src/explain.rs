//! Cause attribution and path-lifecycle explainability (`multipath
//! explain`): turns the probe event stream into *why*-level tables.
//!
//! Three layers, all fed from the same [`Event`] stream the other sinks
//! see (so they cost nothing unless `ProbeConfig::explain` is set):
//!
//! * [`AttributionSink`] — exact aggregation of the reuse-denial taxonomy
//!   ([`ReuseDeny`]), fork-refusal causes ([`RefuseReason`]), per-class
//!   rename/recycle/reuse/commit histograms, a per-static-branch table
//!   (fork rate, coverage, confidence), and per-PC squash cost. Every
//!   bucket reconciles with the aggregate [`Stats`] counters: the deny
//!   buckets sum to `recycled − reused`, the refusal buckets to the three
//!   `fork_refused_*`/`forks_suppressed` counters, the class histograms
//!   to `renamed`/`recycled`/`reused`/`committed`, and the branch table
//!   to `branches`/`mispredicts`/`mispredicts_covered`/`forks`/`respawns`.
//! * [`PathTreeSink`] — reconstructs the TME path DAG (fork/respawn
//!   parentage plus merge edges with instruction counts and reuse-stream
//!   annotations) and exports it as Graphviz DOT or an ASCII tree.
//! * [`explain_json`] / [`explain_markdown`] — a versioned
//!   machine-readable document (`multipath-explain/v1`) and a human
//!   report, regenerated alongside the fig3–fig6/table1 harness.

use crate::probe::{json_str_array, json_u64_array};
use crate::probe::{Event, EventKind, InstClass, ProbeSink, RefuseReason, ReuseDeny};
use crate::stats::Stats;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Per-static-branch attribution: everything the explain layer knows
/// about one branch PC.
#[derive(Debug, Clone, Copy, Default)]
pub struct BranchRow {
    /// Conditional-branch resolutions at this PC.
    pub resolves: u64,
    /// Mispredicted resolutions (conditional or jump).
    pub mispredicts: u64,
    /// ... of which were covered by a live alternate path.
    pub covered: u64,
    /// Alternate paths forked at this PC.
    pub forks: u64,
    /// Inactive traces re-spawned at this PC.
    pub respawns: u64,
    /// Fork opportunities declined, by [`RefuseReason::index`].
    pub refused: [u64; RefuseReason::COUNT],
    /// Sum of the JRS confidence counter over `resolves` (for the mean).
    pub conf_sum: u64,
}

impl BranchRow {
    /// Fork opportunities seen at this PC (taken + refused).
    pub fn fork_attempts(&self) -> u64 {
        self.forks + self.respawns + self.refused.iter().sum::<u64>()
    }

    /// Mean JRS confidence counter at resolution time.
    pub fn avg_confidence(&self) -> f64 {
        if self.resolves == 0 {
            0.0
        } else {
            self.conf_sum as f64 / self.resolves as f64
        }
    }

    /// Prediction accuracy at this PC (conditional resolves only).
    pub fn accuracy(&self) -> f64 {
        if self.resolves == 0 {
            0.0
        } else {
            100.0 * (self.resolves.saturating_sub(self.mispredicts)) as f64 / self.resolves as f64
        }
    }
}

/// Squash cost charged to the PC of the first squashed instruction.
#[derive(Debug, Clone, Copy, Default)]
pub struct SquashSite {
    /// Squash events starting at this PC.
    pub events: u64,
    /// Instructions squashed by those events.
    pub instructions: u64,
}

/// Aggregates the event stream into exact attribution tables.
#[derive(Debug, Default)]
pub struct AttributionSink {
    /// Reuse-denial taxonomy, by [`ReuseDeny::index`]; sums to
    /// `recycled − reused`.
    pub reuse_denied: [u64; ReuseDeny::COUNT],
    /// The same taxonomy split by instruction class (class-major).
    pub reuse_denied_by_class: [[u64; ReuseDeny::COUNT]; InstClass::COUNT],
    /// Renamed instructions per class; sums to `Stats::renamed`.
    pub renamed_by_class: [u64; InstClass::COUNT],
    /// ... of which recycled; sums to `Stats::recycled`.
    pub recycled_by_class: [u64; InstClass::COUNT],
    /// ... of which reused; sums to `Stats::reused`.
    pub reused_by_class: [u64; InstClass::COUNT],
    /// Committed instructions per class; sums to `Stats::committed`.
    pub committed_by_class: [u64; InstClass::COUNT],
    /// Fork refusals by [`RefuseReason::index`]; reconciles with
    /// `fork_refused_cap` / `fork_refused_nospare` / `forks_suppressed`.
    pub fork_refused: [u64; RefuseReason::COUNT],
    /// Rename stalls observed; equals `Stats::preg_stall_cycles`.
    pub preg_stalls: u64,
    /// Alternate-to-primary promotions; equals `mispredicts_covered`.
    pub promotes: u64,
    /// Per-static-branch table, keyed by PC.
    pub branches: BTreeMap<u64, BranchRow>,
    /// Per-PC squash cost; instruction sums equal `Stats::squashed`.
    pub squashes: BTreeMap<u64, SquashSite>,
}

impl AttributionSink {
    /// Total reuse denials across all causes.
    pub fn reuse_denied_total(&self) -> u64 {
        self.reuse_denied.iter().sum()
    }

    /// Total fork refusals across all reasons.
    pub fn fork_refused_total(&self) -> u64 {
        self.fork_refused.iter().sum()
    }

    /// The branch table's `n` most active rows (by fork attempts, then
    /// resolves, then PC) — "the branches that earn or waste recycling".
    pub fn top_branches(&self, n: usize) -> Vec<(u64, BranchRow)> {
        let mut rows: Vec<(u64, BranchRow)> =
            self.branches.iter().map(|(&pc, &r)| (pc, r)).collect();
        rows.sort_by(|a, b| {
            (b.1.fork_attempts(), b.1.resolves, a.0).cmp(&(a.1.fork_attempts(), a.1.resolves, b.0))
        });
        rows.truncate(n);
        rows
    }

    /// The `n` most expensive squash sites (by instructions, then PC).
    pub fn top_squashes(&self, n: usize) -> Vec<(u64, SquashSite)> {
        let mut rows: Vec<(u64, SquashSite)> =
            self.squashes.iter().map(|(&pc, &s)| (pc, s)).collect();
        rows.sort_by(|a, b| (b.1.instructions, a.0).cmp(&(a.1.instructions, b.0)));
        rows.truncate(n);
        rows
    }

    /// Total squashed instructions across all sites.
    pub fn squashed_total(&self) -> u64 {
        self.squashes.values().map(|s| s.instructions).sum()
    }
}

impl ProbeSink for AttributionSink {
    fn event(&mut self, ev: &Event) {
        match ev.kind {
            EventKind::Rename { class } => self.renamed_by_class[class.index()] += 1,
            EventKind::Recycle { class } => {
                self.renamed_by_class[class.index()] += 1;
                self.recycled_by_class[class.index()] += 1;
            }
            EventKind::Reuse { class } => {
                self.renamed_by_class[class.index()] += 1;
                self.recycled_by_class[class.index()] += 1;
                self.reused_by_class[class.index()] += 1;
            }
            EventKind::Commit { class } => self.committed_by_class[class.index()] += 1,
            EventKind::ReuseDenied { class, cause } => {
                self.reuse_denied[cause.index()] += 1;
                self.reuse_denied_by_class[class.index()][cause.index()] += 1;
            }
            EventKind::Resolve {
                mispredicted,
                covered,
                cond,
                conf,
            } => {
                let row = self.branches.entry(ev.pc).or_default();
                if cond {
                    row.resolves += 1;
                    row.conf_sum += conf as u64;
                }
                if mispredicted {
                    row.mispredicts += 1;
                    if covered {
                        row.covered += 1;
                    }
                }
            }
            EventKind::Fork { .. } => self.branches.entry(ev.pc).or_default().forks += 1,
            EventKind::Respawn { .. } => self.branches.entry(ev.pc).or_default().respawns += 1,
            EventKind::ForkRefused { reason } => {
                self.fork_refused[reason.index()] += 1;
                self.branches.entry(ev.pc).or_default().refused[reason.index()] += 1;
            }
            EventKind::Squash { count } => {
                let site = self.squashes.entry(ev.pc).or_default();
                site.events += 1;
                site.instructions += count;
            }
            EventKind::PregStall => self.preg_stalls += 1,
            EventKind::Promote { .. } => self.promotes += 1,
            EventKind::Fetch { .. }
            | EventKind::Issue { .. }
            | EventKind::Merge { .. }
            | EventKind::BackMerge { .. } => {}
        }
    }
}

/// How a path node came to exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathNodeKind {
    /// A primary path observed from the start of the trace (no fork seen).
    Root,
    /// Forked as a speculative alternate.
    Fork,
    /// Re-spawned from an inactive trace's replay buffer.
    Respawn,
}

impl PathNodeKind {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            PathNodeKind::Root => "root",
            PathNodeKind::Fork => "fork",
            PathNodeKind::Respawn => "respawn",
        }
    }
}

/// One path (one occupancy of a hardware context) in the reconstructed
/// path DAG.
#[derive(Debug, Clone)]
pub struct PathNode {
    /// The hardware context the path lived in.
    pub ctx: u8,
    /// The node that forked this path (fork-tree parent), if known.
    pub parent: Option<usize>,
    /// How the path was created.
    pub kind: PathNodeKind,
    /// Fork/respawn point PC (0 for roots).
    pub fork_pc: u64,
    /// Cycle the path was created (0 for roots seen lazily).
    pub born_cycle: u64,
    /// Cycle the path's context was re-occupied, if that happened.
    pub end_cycle: Option<u64>,
    /// Instructions renamed on this path.
    pub renamed: u64,
    /// ... of which arrived via the recycle datapath.
    pub recycled: u64,
    /// ... of which were reused outright.
    pub reused: u64,
    /// Instructions squashed on this path.
    pub squashed: u64,
    /// Backward-branch self-merges taken on this path.
    pub back_merges: u64,
    /// Instructions covered by those back-merges.
    pub back_merge_insts: u64,
    /// Whether the path was promoted to primary (used by TME).
    pub promoted: bool,
    /// Fork-tree children (node indices), creation order.
    pub children: Vec<usize>,
}

/// One recycle-stream merge edge of the path DAG.
#[derive(Debug, Clone, Copy)]
pub struct MergeEdge {
    /// Source node (the path whose trace is consumed).
    pub from: usize,
    /// Target node (the path renaming from the stream).
    pub to: usize,
    /// Cycle the stream started.
    pub cycle: u64,
    /// Instructions covered by the stream.
    pub len: u64,
    /// Whether the stream was reuse-capable.
    pub reuse: bool,
}

/// Bound on recorded path nodes; beyond it the recorder saturates (keeps
/// counting on existing nodes, stops creating new ones) so pathological
/// runs stay bounded. Generous for any quick/full-budget kernel.
const NODE_CAP: usize = 65_536;

/// Reconstructs the fork/merge/squash path DAG from the event stream.
#[derive(Debug, Default)]
pub struct PathTreeSink {
    nodes: Vec<PathNode>,
    edges: Vec<MergeEdge>,
    /// Current node per hardware context.
    cur: Vec<Option<usize>>,
    saturated: bool,
    finished_at: u64,
}

impl PathTreeSink {
    /// An empty recorder.
    pub fn new() -> PathTreeSink {
        PathTreeSink::default()
    }

    /// The recorded nodes, creation order.
    pub fn nodes(&self) -> &[PathNode] {
        &self.nodes
    }

    /// The recorded merge edges, time order.
    pub fn edges(&self) -> &[MergeEdge] {
        &self.edges
    }

    /// Whether the node cap was hit (counts beyond it are partial).
    pub fn saturated(&self) -> bool {
        self.saturated
    }

    /// Closes the recording at `cycle` (call once, after the run).
    pub fn finish(&mut self, cycle: u64) {
        self.finished_at = cycle;
    }

    fn slot(&mut self, ctx: u8) -> &mut Option<usize> {
        let i = ctx as usize;
        if self.cur.len() <= i {
            self.cur.resize(i + 1, None);
        }
        &mut self.cur[i]
    }

    /// The current node for `ctx`, lazily creating a root.
    fn node_of(&mut self, ctx: u8, cycle: u64) -> Option<usize> {
        if let Some(id) = *self.slot(ctx) {
            return Some(id);
        }
        let id = self.push_node(PathNode {
            ctx,
            parent: None,
            kind: PathNodeKind::Root,
            fork_pc: 0,
            born_cycle: cycle,
            end_cycle: None,
            renamed: 0,
            recycled: 0,
            reused: 0,
            squashed: 0,
            back_merges: 0,
            back_merge_insts: 0,
            promoted: false,
            children: Vec::new(),
        })?;
        *self.slot(ctx) = Some(id);
        Some(id)
    }

    fn push_node(&mut self, node: PathNode) -> Option<usize> {
        if self.nodes.len() >= NODE_CAP {
            self.saturated = true;
            return None;
        }
        self.nodes.push(node);
        Some(self.nodes.len() - 1)
    }

    fn spawn(&mut self, kind: PathNodeKind, parent_ctx: u8, alt: u8, pc: u64, cycle: u64) {
        let parent = self.node_of(parent_ctx, cycle);
        // The alternate context's previous occupant (if any) is over.
        if let Some(old) = *self.slot(alt) {
            self.nodes[old].end_cycle = Some(cycle);
        }
        let id = self.push_node(PathNode {
            ctx: alt,
            parent,
            kind,
            fork_pc: pc,
            born_cycle: cycle,
            end_cycle: None,
            renamed: 0,
            recycled: 0,
            reused: 0,
            squashed: 0,
            back_merges: 0,
            back_merge_insts: 0,
            promoted: false,
            children: Vec::new(),
        });
        *self.slot(alt) = id;
        if let (Some(p), Some(c)) = (parent, id) {
            self.nodes[p].children.push(c);
        }
    }

    /// Aggregated merge edges: `(from, to, reuse) → (count, instructions)`.
    pub fn merge_summary(&self) -> BTreeMap<(usize, usize, bool), (u64, u64)> {
        let mut sum = BTreeMap::new();
        for e in &self.edges {
            let cell = sum.entry((e.from, e.to, e.reuse)).or_insert((0u64, 0u64));
            cell.0 += 1;
            cell.1 += e.len;
        }
        sum
    }

    /// Node counts by kind: `(roots, forks, respawns, promoted)`.
    pub fn kind_counts(&self) -> (u64, u64, u64, u64) {
        let mut c = (0u64, 0u64, 0u64, 0u64);
        for n in &self.nodes {
            match n.kind {
                PathNodeKind::Root => c.0 += 1,
                PathNodeKind::Fork => c.1 += 1,
                PathNodeKind::Respawn => c.2 += 1,
            }
            if n.promoted {
                c.3 += 1;
            }
        }
        c
    }

    fn label(&self, id: usize) -> String {
        let n = &self.nodes[id];
        let at = if n.kind == PathNodeKind::Root {
            String::new()
        } else {
            format!("@{:#x}", n.fork_pc)
        };
        format!("#{id} ctx{} {}{at}", n.ctx, n.kind.name())
    }

    /// Graphviz DOT export: solid edges are fork parentage, dashed edges
    /// are (aggregated) recycle-stream merges labelled with merge count,
    /// instruction total, and reuse capability. Promoted paths are drawn
    /// with a double border.
    pub fn dot(&self) -> String {
        let mut out = String::from("digraph multipath {\n  rankdir=LR;\n  node [shape=box];\n");
        for (id, n) in self.nodes.iter().enumerate() {
            let peripheries = if n.promoted { 2 } else { 1 };
            let _ = writeln!(
                out,
                "  n{id} [label=\"{}\\nrenamed {} (recycled {}, reused {})\\nsquashed {}\"\
                 , peripheries={peripheries}];",
                self.label(id),
                n.renamed,
                n.recycled,
                n.reused,
                n.squashed
            );
        }
        for (id, n) in self.nodes.iter().enumerate() {
            for &c in &n.children {
                let _ = writeln!(
                    out,
                    "  n{id} -> n{c} [label=\"{}@{:#x}\"];",
                    self.nodes[c].kind.name(),
                    self.nodes[c].fork_pc
                );
            }
        }
        for (&(from, to, reuse), &(count, insts)) in &self.merge_summary() {
            let tag = if reuse { ", reuse" } else { "" };
            let _ = writeln!(
                out,
                "  n{from} -> n{to} [style=dashed, label=\"{count} merge(s), {insts} insts{tag}\"];"
            );
        }
        out.push_str("}\n");
        out
    }

    /// ASCII rendering: the fork tree (one line per path, indented by
    /// parentage) followed by the aggregated merge edges.
    pub fn ascii(&self) -> String {
        let mut out = String::new();
        let roots: Vec<usize> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.parent.is_none())
            .map(|(i, _)| i)
            .collect();
        // Explicit work stack: fork chains can be tens of thousands of
        // nodes deep (one per re-fork), far past the call-stack limit.
        let mut work: Vec<(usize, String, bool)> = roots
            .iter()
            .rev()
            .map(|&r| (r, String::new(), true))
            .collect();
        while let Some((id, prefix, last)) = work.pop() {
            self.ascii_node(&mut out, id, &prefix, last);
            let n = &self.nodes[id];
            let child_prefix = if prefix.is_empty() {
                "  ".to_owned()
            } else {
                format!("{prefix}{}", if last { "   " } else { "│  " })
            };
            for (i, &c) in n.children.iter().enumerate().rev() {
                work.push((c, child_prefix.clone(), i + 1 == n.children.len()));
            }
        }
        let merges = self.merge_summary();
        if !merges.is_empty() {
            out.push_str("merges:\n");
            for (&(from, to, reuse), &(count, insts)) in &merges {
                let tag = if reuse { " reuse" } else { "" };
                let _ = writeln!(
                    out,
                    "  {} -> {}: {count} merge(s), {insts} insts{tag}",
                    self.label(from),
                    self.label(to)
                );
            }
        }
        if self.saturated {
            out.push_str("(node cap reached; tree truncated)\n");
        }
        out
    }

    fn ascii_node(&self, out: &mut String, id: usize, prefix: &str, last: bool) {
        let n = &self.nodes[id];
        let connector = if prefix.is_empty() {
            ""
        } else if last {
            "└─ "
        } else {
            "├─ "
        };
        let promoted = if n.promoted { " [promoted]" } else { "" };
        let back = if n.back_merges > 0 {
            format!(
                " back_merges={} ({} insts)",
                n.back_merges, n.back_merge_insts
            )
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "{prefix}{connector}{}  renamed={} recycled={} reused={} squashed={}{back}{promoted}",
            self.label(id),
            n.renamed,
            n.recycled,
            n.reused,
            n.squashed
        );
    }
}

impl ProbeSink for PathTreeSink {
    fn event(&mut self, ev: &Event) {
        match ev.kind {
            EventKind::Fork { alt } => self.spawn(PathNodeKind::Fork, ev.ctx, alt, ev.pc, ev.cycle),
            EventKind::Respawn { alt } => {
                self.spawn(PathNodeKind::Respawn, ev.ctx, alt, ev.pc, ev.cycle)
            }
            EventKind::Promote { alt } => {
                if let Some(id) = *self.slot(alt) {
                    self.nodes[id].promoted = true;
                }
            }
            EventKind::Merge { source, len, reuse } => {
                let from = self.node_of(source, ev.cycle);
                let to = self.node_of(ev.ctx, ev.cycle);
                if let (Some(from), Some(to)) = (from, to) {
                    self.edges.push(MergeEdge {
                        from,
                        to,
                        cycle: ev.cycle,
                        len,
                        reuse,
                    });
                }
            }
            EventKind::BackMerge { len } => {
                if let Some(id) = self.node_of(ev.ctx, ev.cycle) {
                    self.nodes[id].back_merges += 1;
                    self.nodes[id].back_merge_insts += len;
                }
            }
            EventKind::Rename { .. } => {
                if let Some(id) = self.node_of(ev.ctx, ev.cycle) {
                    self.nodes[id].renamed += 1;
                }
            }
            EventKind::Recycle { .. } => {
                if let Some(id) = self.node_of(ev.ctx, ev.cycle) {
                    self.nodes[id].renamed += 1;
                    self.nodes[id].recycled += 1;
                }
            }
            EventKind::Reuse { .. } => {
                if let Some(id) = self.node_of(ev.ctx, ev.cycle) {
                    self.nodes[id].renamed += 1;
                    self.nodes[id].recycled += 1;
                    self.nodes[id].reused += 1;
                }
            }
            EventKind::Squash { count } => {
                if let Some(id) = self.node_of(ev.ctx, ev.cycle) {
                    self.nodes[id].squashed += count;
                }
            }
            EventKind::Fetch { .. }
            | EventKind::Issue { .. }
            | EventKind::Commit { .. }
            | EventKind::Resolve { .. }
            | EventKind::PregStall
            | EventKind::ForkRefused { .. }
            | EventKind::ReuseDenied { .. } => {}
        }
    }
}

/// Renders the versioned explain document (`multipath-explain/v1`):
/// totals, the reuse-denial taxonomy (with per-class split), fork
/// refusals, per-class histograms, the top-N branch and squash tables,
/// the path-tree summary, and a reconciliation block stating the exact
/// identities the document satisfies against `stats`. Deterministic
/// byte-for-byte for a given run — the unit of the explain-drift gate.
pub fn explain_json(
    label: &str,
    features: &str,
    stats: &Stats,
    attr: &AttributionSink,
    tree: &PathTreeSink,
    top_n: usize,
) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n  \"schema\": \"multipath-explain/v1\",\n");
    let _ = writeln!(out, "  \"label\": \"{label}\",");
    let _ = writeln!(out, "  \"features\": \"{features}\",");
    out.push_str("  \"totals\": {");
    let totals: [(&str, u64); 12] = [
        ("renamed", stats.renamed),
        ("recycled", stats.recycled),
        ("reused", stats.reused),
        ("recycled_not_reused", stats.recycled - stats.reused),
        ("fork_candidates", stats.fork_candidates),
        ("forks", stats.forks),
        ("respawns", stats.respawns),
        ("fork_refused", stats.fork_refused()),
        ("mispredicts", stats.mispredicts),
        ("mispredicts_covered", stats.mispredicts_covered),
        ("squashed", stats.squashed),
        ("preg_stall_cycles", stats.preg_stall_cycles),
    ];
    for (i, (name, v)) in totals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{name}\": {v}");
    }
    out.push_str("\n  },\n  \"reuse_denied\": {\n    \"cause_names\": ");
    json_str_array(&mut out, ReuseDeny::ALL.iter().map(|d| d.name()));
    out.push_str(",\n    \"counts\": ");
    json_u64_array(&mut out, attr.reuse_denied.iter().copied());
    out.push_str(",\n    \"by_class\": [");
    for (i, row) in attr.reuse_denied_by_class.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_u64_array(&mut out, row.iter().copied());
    }
    out.push_str("]\n  },\n  \"fork_refused\": {\n    \"reason_names\": ");
    json_str_array(&mut out, RefuseReason::ALL.iter().map(|r| r.name()));
    out.push_str(",\n    \"counts\": ");
    json_u64_array(&mut out, attr.fork_refused.iter().copied());
    out.push_str("\n  },\n  \"per_class\": {\n    \"class_names\": ");
    json_str_array(&mut out, InstClass::ALL.iter().map(|c| c.name()));
    for (key, table) in [
        ("renamed", &attr.renamed_by_class),
        ("recycled", &attr.recycled_by_class),
        ("reused", &attr.reused_by_class),
        ("committed", &attr.committed_by_class),
    ] {
        let _ = write!(out, ",\n    \"{key}\": ");
        json_u64_array(&mut out, table.iter().copied());
    }
    let _ = write!(
        out,
        "\n  }},\n  \"branches\": {{\n    \"static_count\": {},\n    \"top\": [",
        attr.branches.len()
    );
    for (i, (pc, row)) in attr.top_branches(top_n).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n      {{ \"pc\": \"{pc:#x}\", \"resolves\": {}, \"mispredicts\": {}, \
             \"covered\": {}, \"forks\": {}, \"respawns\": {}, \"refused\": ",
            row.resolves, row.mispredicts, row.covered, row.forks, row.respawns
        );
        json_u64_array(&mut out, row.refused.iter().copied());
        let _ = write!(
            out,
            ", \"accuracy\": {:.2}, \"avg_confidence\": {:.2} }}",
            row.accuracy(),
            row.avg_confidence()
        );
    }
    let _ = write!(
        out,
        "\n    ]\n  }},\n  \"squashes\": {{\n    \"site_count\": {},\n    \
         \"total_instructions\": {},\n    \"top\": [",
        attr.squashes.len(),
        attr.squashed_total()
    );
    for (i, (pc, site)) in attr.top_squashes(top_n).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n      {{ \"pc\": \"{pc:#x}\", \"events\": {}, \"instructions\": {} }}",
            site.events, site.instructions
        );
    }
    let (roots, forks, respawns, promoted) = tree.kind_counts();
    let merged_insts: u64 = tree.edges().iter().map(|e| e.len).sum();
    let _ = write!(
        out,
        "\n    ]\n  }},\n  \"path_tree\": {{ \"nodes\": {}, \"roots\": {roots}, \
         \"forks\": {forks}, \"respawns\": {respawns}, \"promoted\": {promoted}, \
         \"merge_edges\": {}, \"merged_instructions\": {merged_insts}, \"saturated\": {} }},",
        tree.nodes().len(),
        tree.edges().len(),
        tree.saturated()
    );
    out.push_str("\n  \"reconciliation\": {");
    let recon: [(&str, u64, u64); 6] = [
        (
            "reuse_denied_total == recycled - reused",
            attr.reuse_denied_total(),
            stats.recycled - stats.reused,
        ),
        (
            "fork_refused_total == stats.fork_refused",
            attr.fork_refused_total(),
            stats.fork_refused(),
        ),
        (
            "branch_resolves == branches",
            attr.branches.values().map(|r| r.resolves).sum(),
            stats.branches,
        ),
        (
            "branch_mispredicts == mispredicts",
            attr.branches.values().map(|r| r.mispredicts).sum(),
            stats.mispredicts,
        ),
        (
            "branch_covered == mispredicts_covered",
            attr.branches.values().map(|r| r.covered).sum(),
            stats.mispredicts_covered,
        ),
        (
            "squashed_total == squashed",
            attr.squashed_total(),
            stats.squashed,
        ),
    ];
    for (i, (name, got, want)) in recon.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    \"{name}\": {{ \"observed\": {got}, \"expected\": {want}, \"exact\": {} }}",
            got == want
        );
    }
    out.push_str("\n  }\n}\n");
    out
}

fn md_pct(num: u64, den: u64) -> String {
    if den == 0 {
        "-".to_owned()
    } else {
        format!("{:.1}%", 100.0 * num as f64 / den as f64)
    }
}

/// Renders the human-readable attribution report (markdown).
pub fn explain_markdown(
    label: &str,
    features: &str,
    stats: &Stats,
    attr: &AttributionSink,
    tree: &PathTreeSink,
    top_n: usize,
) -> String {
    let mut out = String::with_capacity(4096);
    let _ = writeln!(out, "# `{label}` attribution ({features})\n");
    let _ = writeln!(
        out,
        "{} renamed, {} recycled ({}), {} reused ({} of recycled); \
         {} squashed; {} mispredicts, {} covered ({}).\n",
        stats.renamed,
        stats.recycled,
        md_pct(stats.recycled, stats.renamed),
        stats.reused,
        md_pct(stats.reused, stats.recycled),
        stats.squashed,
        stats.mispredicts,
        stats.mispredicts_covered,
        md_pct(stats.mispredicts_covered, stats.mispredicts)
    );
    let denied = stats.recycled - stats.reused;
    let _ = writeln!(out, "## Why recycled instructions were not reused\n");
    let _ = writeln!(out, "| cause | count | share |");
    let _ = writeln!(out, "|---|---:|---:|");
    for d in ReuseDeny::ALL {
        let n = attr.reuse_denied[d.index()];
        let _ = writeln!(out, "| {} | {} | {} |", d.name(), n, md_pct(n, denied));
    }
    let _ = writeln!(
        out,
        "| **total** | **{}** | recycled − reused = {} |\n",
        attr.reuse_denied_total(),
        denied
    );
    let _ = writeln!(out, "## Recycle/reuse yield by instruction class\n");
    let _ = writeln!(out, "| class | renamed | recycled | reused | reuse yield |");
    let _ = writeln!(out, "|---|---:|---:|---:|---:|");
    for c in InstClass::ALL {
        let i = c.index();
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} |",
            c.name(),
            attr.renamed_by_class[i],
            attr.recycled_by_class[i],
            attr.reused_by_class[i],
            md_pct(attr.reused_by_class[i], attr.recycled_by_class[i])
        );
    }
    let _ = writeln!(out, "\n## Fork refusals\n");
    let _ = writeln!(
        out,
        "{} candidates, {} forked, {} re-spawned, {} refused:\n",
        stats.fork_candidates,
        stats.forks - stats.respawns,
        stats.respawns,
        attr.fork_refused_total()
    );
    let _ = writeln!(out, "| reason | count |");
    let _ = writeln!(out, "|---|---:|");
    for r in RefuseReason::ALL {
        let _ = writeln!(out, "| {} | {} |", r.name(), attr.fork_refused[r.index()]);
    }
    let _ = writeln!(
        out,
        "\n## Top {top_n} branches by fork activity ({} static branch PCs)\n",
        attr.branches.len()
    );
    let _ = writeln!(
        out,
        "| pc | resolves | accuracy | mispred | covered | forks | respawns | refused | avg conf |"
    );
    let _ = writeln!(out, "|---|---:|---:|---:|---:|---:|---:|---:|---:|");
    for (pc, row) in attr.top_branches(top_n) {
        let _ = writeln!(
            out,
            "| {pc:#x} | {} | {:.1}% | {} | {} | {} | {} | {} | {:.2} |",
            row.resolves,
            row.accuracy(),
            row.mispredicts,
            row.covered,
            row.forks,
            row.respawns,
            row.refused.iter().sum::<u64>(),
            row.avg_confidence()
        );
    }
    let _ = writeln!(
        out,
        "\n## Top {top_n} squash sites ({} sites, {} instructions)\n",
        attr.squashes.len(),
        attr.squashed_total()
    );
    let _ = writeln!(out, "| pc | events | instructions |");
    let _ = writeln!(out, "|---|---:|---:|");
    for (pc, site) in attr.top_squashes(top_n) {
        let _ = writeln!(out, "| {pc:#x} | {} | {} |", site.events, site.instructions);
    }
    let (roots, forks, respawns, promoted) = tree.kind_counts();
    let _ = writeln!(
        out,
        "\n## Path tree\n\n{} paths ({roots} roots, {forks} forks, {respawns} respawns), \
         {promoted} promoted to primary, {} merge edges covering {} instructions{}.",
        tree.nodes().len(),
        tree.edges().len(),
        tree.edges().iter().map(|e| e.len).sum::<u64>(),
        if tree.saturated() { " (saturated)" } else { "" }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, ctx: u8, pc: u64, kind: EventKind) -> Event {
        Event {
            cycle,
            ctx,
            pc,
            kind,
        }
    }

    fn feed(sink: &mut dyn ProbeSink, events: &[Event]) {
        for e in events {
            sink.event(e);
        }
    }

    #[test]
    fn attribution_buckets_accumulate_and_reconcile() {
        let mut a = AttributionSink::default();
        let events = [
            ev(
                1,
                0,
                0x100,
                EventKind::Rename {
                    class: InstClass::IntAlu,
                },
            ),
            ev(
                2,
                0,
                0x104,
                EventKind::Recycle {
                    class: InstClass::Load,
                },
            ),
            ev(
                2,
                0,
                0x104,
                EventKind::ReuseDenied {
                    class: InstClass::Load,
                    cause: ReuseDeny::MemInvalidated,
                },
            ),
            ev(
                3,
                0,
                0x108,
                EventKind::Reuse {
                    class: InstClass::IntAlu,
                },
            ),
            ev(
                4,
                0,
                0x200,
                EventKind::Resolve {
                    mispredicted: true,
                    covered: true,
                    cond: true,
                    conf: 7,
                },
            ),
            ev(4, 0, 0x200, EventKind::Fork { alt: 1 }),
            ev(
                5,
                0,
                0x200,
                EventKind::ForkRefused {
                    reason: RefuseReason::NoSpare,
                },
            ),
            ev(6, 0, 0x300, EventKind::Squash { count: 9 }),
            ev(6, 0, 0, EventKind::PregStall),
            ev(7, 0, 0x200, EventKind::Promote { alt: 1 }),
        ];
        feed(&mut a, &events);
        assert_eq!(a.reuse_denied_total(), 1);
        assert_eq!(
            a.reuse_denied_by_class[InstClass::Load.index()][ReuseDeny::MemInvalidated.index()],
            1
        );
        assert_eq!(a.renamed_by_class.iter().sum::<u64>(), 3);
        assert_eq!(a.recycled_by_class.iter().sum::<u64>(), 2);
        assert_eq!(a.reused_by_class.iter().sum::<u64>(), 1);
        assert_eq!(a.fork_refused[RefuseReason::NoSpare.index()], 1);
        assert_eq!(a.preg_stalls, 1);
        assert_eq!(a.promotes, 1);
        let row = a.branches[&0x200];
        assert_eq!(row.resolves, 1);
        assert_eq!(row.mispredicts, 1);
        assert_eq!(row.covered, 1);
        assert_eq!(row.forks, 1);
        assert_eq!(row.refused[RefuseReason::NoSpare.index()], 1);
        assert_eq!(row.conf_sum, 7);
        assert!((row.avg_confidence() - 7.0).abs() < 1e-9);
        assert_eq!(a.squashes[&0x300].instructions, 9);
        assert_eq!(a.top_branches(5).first().unwrap().0, 0x200);
    }

    #[test]
    fn path_tree_reconstructs_forks_merges_and_promotion() {
        let mut t = PathTreeSink::new();
        let events = [
            ev(
                1,
                0,
                0x100,
                EventKind::Rename {
                    class: InstClass::IntAlu,
                },
            ),
            ev(5, 0, 0x200, EventKind::Fork { alt: 1 }),
            ev(
                6,
                1,
                0x204,
                EventKind::Recycle {
                    class: InstClass::IntAlu,
                },
            ),
            ev(
                8,
                0,
                0x240,
                EventKind::Merge {
                    source: 1,
                    len: 12,
                    reuse: true,
                },
            ),
            ev(9, 0, 0x200, EventKind::Promote { alt: 1 }),
            ev(10, 1, 0x260, EventKind::BackMerge { len: 4 }),
            ev(11, 1, 0x280, EventKind::Squash { count: 3 }),
        ];
        feed(&mut t, &events);
        t.finish(12);
        assert_eq!(t.nodes().len(), 2);
        let (roots, forks, respawns, promoted) = t.kind_counts();
        assert_eq!((roots, forks, respawns, promoted), (1, 1, 0, 1));
        let fork = &t.nodes()[1];
        assert_eq!(fork.parent, Some(0));
        assert_eq!(fork.fork_pc, 0x200);
        assert_eq!(fork.recycled, 1);
        assert!(fork.promoted);
        assert_eq!(fork.back_merges, 1);
        assert_eq!(fork.squashed, 3);
        assert_eq!(t.edges().len(), 1);
        let e = t.edges()[0];
        assert_eq!((e.from, e.to, e.len, e.reuse), (1, 0, 12, true));
        let dot = t.dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("reuse"));
        let ascii = t.ascii();
        assert!(ascii.contains("ctx0 root"));
        assert!(ascii.contains("ctx1 fork@0x200"));
        assert!(ascii.contains("[promoted]"));
        assert!(ascii.contains("merges:"));
    }

    #[test]
    fn explain_documents_render_and_reconcile() {
        let mut a = AttributionSink::default();
        let mut t = PathTreeSink::new();
        let events = [
            ev(
                1,
                0,
                0x100,
                EventKind::Recycle {
                    class: InstClass::IntAlu,
                },
            ),
            ev(
                1,
                0,
                0x100,
                EventKind::ReuseDenied {
                    class: InstClass::IntAlu,
                    cause: ReuseDeny::SourceOverwritten,
                },
            ),
            ev(
                2,
                0,
                0x104,
                EventKind::Reuse {
                    class: InstClass::IntAlu,
                },
            ),
        ];
        feed(&mut a, &events);
        feed(&mut t, &events);
        let mut stats = Stats::new(1);
        stats.renamed = 2;
        stats.recycled = 2;
        stats.reused = 1;
        let json = explain_json("demo", "REC+RS+RU", &stats, &a, &t, 8);
        assert!(json.contains("\"schema\": \"multipath-explain/v1\""));
        assert!(json.contains("\"source_overwritten\""));
        assert!(json.contains("\"exact\": true"));
        assert!(!json.contains("\"exact\": false"));
        let md = explain_markdown("demo", "REC+RS+RU", &stats, &a, &t, 8);
        assert!(md.contains("# `demo` attribution"));
        assert!(md.contains("source_overwritten"));
    }

    #[test]
    fn path_tree_saturation_is_flagged_not_fatal() {
        let mut t = PathTreeSink::new();
        for i in 0..(NODE_CAP + 10) {
            // Alternate between two contexts so every fork creates a node.
            t.event(&ev(i as u64, 0, 0x100, EventKind::Fork { alt: 1 }));
            t.event(&ev(i as u64, 1, 0x104, EventKind::Fork { alt: 0 }));
        }
        assert!(t.saturated());
        assert!(t.nodes().len() <= NODE_CAP);
        // Still serviceable after saturation.
        t.event(&ev(999_999, 0, 0x108, EventKind::Squash { count: 1 }));
        let _ = t.ascii();
    }
}
