//! Simulation statistics: everything needed for the paper's figures
//! (IPC) and Table 1 (recycling statistics).

/// Aggregate counters for one simulation run.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Useful (committed) instructions, all programs.
    pub committed: u64,
    /// Committed instructions per program.
    pub committed_per_program: Vec<u64>,
    /// Instructions inserted into the rename stage (including ones later
    /// squashed) — the denominator of Table 1's first two columns.
    pub renamed: u64,
    /// Renamed instructions that arrived via the recycle datapath.
    pub recycled: u64,
    /// Renamed instructions whose results were reused (no execution).
    pub reused: u64,
    /// Instructions fetched from the instruction cache.
    pub fetched: u64,
    /// Instructions squashed after rename.
    pub squashed: u64,
    /// Conditional branches resolved.
    pub branches: u64,
    /// Conditional branches mispredicted.
    pub mispredicts: u64,
    /// Mispredicted branches whose alternate path was live (covered by a
    /// speculative fork) — numerator of "Branch Miss Cov".
    pub mispredicts_covered: u64,
    /// Paths forked (TME spawns, including re-spawns of fresh paths but
    /// not re-activations).
    pub forks: u64,
    /// Forked paths that became the primary (used by TME).
    pub forks_used_tme: u64,
    /// Forked paths recycled from at least once.
    pub forks_recycled: u64,
    /// Forked paths re-spawned at least once.
    pub forks_respawned: u64,
    /// Re-spawn events.
    pub respawns: u64,
    /// Merge events (recycle streams started).
    pub merges: u64,
    /// Merge events that were backward-branch (primary-to-primary) merges.
    pub back_merges: u64,
    /// Sum over deleted alternate paths of (merges from that path); the
    /// denominator is `forks_recycled` ("Merges Per Alt Path" counts only
    /// paths that were recycled at least once, excluding back merges).
    pub alt_path_merge_sum: u64,
    /// Same-context (uncovered) misprediction recoveries.
    pub recoveries: u64,
    /// Cycles in which rename stalled for lack of physical registers.
    pub preg_stall_cycles: u64,
    /// Fork opportunities suppressed because a path with the same start
    /// address already existed (the REC design decision of Section 5.1).
    pub forks_suppressed: u64,
    /// Forked paths released before their branch resolved (pressure).
    pub forks_stolen: u64,
    /// Fork refusals: per-cycle fork limit reached.
    pub fork_refused_cap: u64,
    /// Fork refusals: no spare context available.
    pub fork_refused_nospare: u64,
    /// Low-confidence branches renamed (fork candidates).
    pub fork_candidates: u64,
    /// Conditional branches resolved that entered via recycling.
    pub branches_recycled: u64,
    /// ... of which mispredicted.
    pub mispredicts_recycled: u64,
}

/// Generates the fixed counter vector: `NUM_COUNTERS`, `COUNTER_NAMES`,
/// and `counters()` stay in lockstep with the field list by construction,
/// so the stats.json schema and the interval time series can never drift
/// from the struct.
macro_rules! counter_vector {
    ($($field:ident),* $(,)?) => {
        impl Stats {
            /// Number of scalar counters in [`Stats::counters`].
            pub const NUM_COUNTERS: usize = [$(stringify!($field)),*].len();

            /// Counter names, index-aligned with [`Stats::counters`].
            pub const COUNTER_NAMES: [&'static str; Stats::NUM_COUNTERS] =
                [$(stringify!($field)),*];

            /// Every scalar counter as a fixed-order vector — the unit of
            /// the interval time series and the stats-drift gate.
            pub fn counters(&self) -> [u64; Stats::NUM_COUNTERS] {
                [$(self.$field),*]
            }
        }
    };
}

counter_vector!(
    cycles,
    committed,
    renamed,
    recycled,
    reused,
    fetched,
    squashed,
    branches,
    mispredicts,
    mispredicts_covered,
    forks,
    forks_used_tme,
    forks_recycled,
    forks_respawned,
    respawns,
    merges,
    back_merges,
    alt_path_merge_sum,
    recoveries,
    preg_stall_cycles,
    forks_suppressed,
    forks_stolen,
    fork_refused_cap,
    fork_refused_nospare,
    fork_candidates,
    branches_recycled,
    mispredicts_recycled,
);

impl Stats {
    /// Creates zeroed statistics for `programs` programs.
    pub fn new(programs: usize) -> Stats {
        Stats {
            committed_per_program: vec![0; programs],
            ..Stats::default()
        }
    }

    /// Instructions per cycle over the whole run.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    fn pct(num: u64, den: u64) -> f64 {
        if den == 0 {
            0.0
        } else {
            100.0 * num as f64 / den as f64
        }
    }

    /// Table 1 column: % of renamed instructions that were recycled.
    pub fn pct_recycled(&self) -> f64 {
        Stats::pct(self.recycled, self.renamed)
    }

    /// Table 1 column: % of renamed instructions that were reused.
    pub fn pct_reused(&self) -> f64 {
        Stats::pct(self.reused, self.renamed)
    }

    /// Table 1 column: % of mispredicted branches covered by a fork.
    pub fn pct_miss_covered(&self) -> f64 {
        Stats::pct(self.mispredicts_covered, self.mispredicts)
    }

    /// Table 1 column: % of forks used by TME (alternate became primary).
    pub fn pct_forks_tme(&self) -> f64 {
        Stats::pct(self.forks_used_tme, self.forks)
    }

    /// Table 1 column: % of forks recycled at least once.
    pub fn pct_forks_recycled(&self) -> f64 {
        Stats::pct(self.forks_recycled, self.forks)
    }

    /// Table 1 column: % of forks re-spawned at least once.
    pub fn pct_forks_respawned(&self) -> f64 {
        Stats::pct(self.forks_respawned, self.forks)
    }

    /// Table 1 column: average merges per recycled alternate path.
    pub fn merges_per_alt_path(&self) -> f64 {
        if self.forks_recycled == 0 {
            0.0
        } else {
            self.alt_path_merge_sum as f64 / self.forks_recycled as f64
        }
    }

    /// Table 1 column: % of all merges that were backward-branch merges.
    pub fn pct_back_merges(&self) -> f64 {
        Stats::pct(self.back_merges, self.merges)
    }

    /// Total fork refusals across all causes (per-cycle cap, no spare
    /// context, duplicate path) — the denominator the explain layer's
    /// refusal taxonomy reconciles against.
    pub fn fork_refused(&self) -> u64 {
        self.fork_refused_cap + self.fork_refused_nospare + self.forks_suppressed
    }

    /// Branch prediction accuracy (conditional branches).
    pub fn branch_accuracy(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            100.0 * (self.branches - self.mispredicts) as f64 / self.branches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_handles_zero_cycles() {
        assert_eq!(Stats::new(1).ipc(), 0.0);
    }

    #[test]
    fn percentages() {
        let s = Stats {
            cycles: 100,
            committed: 250,
            renamed: 1000,
            recycled: 268,
            reused: 60,
            branches: 200,
            mispredicts: 50,
            mispredicts_covered: 35,
            forks: 40,
            forks_used_tme: 6,
            forks_recycled: 13,
            forks_respawned: 4,
            merges: 100,
            back_merges: 44,
            alt_path_merge_sum: 22,
            ..Stats::new(1)
        };
        assert!((s.ipc() - 2.5).abs() < 1e-9);
        assert!((s.pct_recycled() - 26.8).abs() < 1e-9);
        assert!((s.pct_reused() - 6.0).abs() < 1e-9);
        assert!((s.pct_miss_covered() - 70.0).abs() < 1e-9);
        assert!((s.pct_forks_tme() - 15.0).abs() < 1e-9);
        assert!((s.pct_forks_recycled() - 32.5).abs() < 1e-9);
        assert!((s.pct_forks_respawned() - 10.0).abs() < 1e-9);
        assert!((s.merges_per_alt_path() - 22.0 / 13.0).abs() < 1e-9);
        assert!((s.pct_back_merges() - 44.0).abs() < 1e-9);
        assert!((s.branch_accuracy() - 75.0).abs() < 1e-9);
    }

    #[test]
    fn counter_vector_is_aligned_with_names() {
        let mut s = Stats::new(1);
        s.cycles = 7;
        s.mispredicts_recycled = 9;
        let v = s.counters();
        assert_eq!(v.len(), Stats::NUM_COUNTERS);
        assert_eq!(Stats::COUNTER_NAMES.len(), Stats::NUM_COUNTERS);
        assert_eq!(Stats::COUNTER_NAMES[0], "cycles");
        assert_eq!(v[0], 7);
        assert_eq!(
            *Stats::COUNTER_NAMES.last().unwrap(),
            "mispredicts_recycled"
        );
        assert_eq!(*v.last().unwrap(), 9);
    }

    #[test]
    fn fork_refused_sums_all_three_causes() {
        let s = Stats {
            fork_refused_cap: 3,
            fork_refused_nospare: 5,
            forks_suppressed: 7,
            ..Stats::new(1)
        };
        assert_eq!(s.fork_refused(), 15);
    }

    #[test]
    fn zero_denominators_do_not_divide() {
        let s = Stats::new(2);
        assert_eq!(s.pct_recycled(), 0.0);
        assert_eq!(s.pct_miss_covered(), 0.0);
        assert_eq!(s.merges_per_alt_path(), 0.0);
        assert_eq!(s.branch_accuracy(), 0.0);
        assert_eq!(s.committed_per_program.len(), 2);
    }
}
