//! The shared physical register file with reference counting.
//!
//! An SMT/TME processor has one physical file per kind (integer, FP)
//! shared by all contexts (paper Section 2). Recycling adds the
//! complication of Section 3.5: a *reused* instruction writes its old
//! physical register into the new map entry, so a register can be
//! referenced by several mappings and by recyclable active-list entries at
//! once, and must not return to the free list while any of them stands.
//!
//! The paper tracks "the last reuse by the primary path"; we implement the
//! identical constraint with per-register reference counts (see DESIGN.md).
//! Holders of references are:
//!
//! * the active-list entry that allocated the register (released when the
//!   entry is squashed, reclaimed, or its *overwriter* commits);
//! * each reuse of the register as a new mapping (one reference per reuse);
//! * each in-flight reader between rename and execute (so a register can
//!   never be recycled out from under a consumer in another context).

use crate::ids::PhysReg;

/// One physical register file (values, readiness, refcounts, free list).
#[derive(Debug, Clone)]
struct Bank {
    values: Vec<u64>,
    ready: Vec<bool>,
    refcount: Vec<u32>,
    free: Vec<u16>,
}

impl Bank {
    fn new(size: usize) -> Bank {
        Bank {
            values: vec![0; size],
            ready: vec![false; size],
            refcount: vec![0; size],
            free: (0..size as u16).rev().collect(),
        }
    }

    fn alloc(&mut self) -> Option<u16> {
        let idx = self.free.pop()?;
        debug_assert_eq!(self.refcount[idx as usize], 0);
        self.refcount[idx as usize] = 1;
        self.ready[idx as usize] = false;
        self.values[idx as usize] = 0;
        Some(idx)
    }
}

/// The pair of physical register files.
#[derive(Debug, Clone)]
pub struct RegFiles {
    int: Bank,
    fp: Bank,
}

impl RegFiles {
    /// Creates files with the given capacities.
    pub fn new(phys_int: usize, phys_fp: usize) -> RegFiles {
        RegFiles {
            int: Bank::new(phys_int),
            fp: Bank::new(phys_fp),
        }
    }

    fn bank(&self, fp: bool) -> &Bank {
        if fp {
            &self.fp
        } else {
            &self.int
        }
    }

    fn bank_mut(&mut self, fp: bool) -> &mut Bank {
        if fp {
            &mut self.fp
        } else {
            &mut self.int
        }
    }

    /// Allocates a register from the requested file with refcount 1 and
    /// not-ready status. `None` when the file is exhausted (rename stalls).
    pub fn alloc(&mut self, fp: bool) -> Option<PhysReg> {
        self.bank_mut(fp).alloc().map(|index| PhysReg { fp, index })
    }

    /// Adds a reference (reuse mapping, in-flight reader).
    pub fn add_ref(&mut self, reg: PhysReg) {
        let rc = &mut self.bank_mut(reg.fp).refcount[reg.index as usize];
        debug_assert!(*rc > 0, "add_ref on dead register {reg}");
        *rc += 1;
    }

    /// Drops a reference; the register returns to the free list at zero.
    ///
    /// # Panics
    ///
    /// Panics on refcount underflow — that is a double-free in the
    /// renaming logic and must never be masked.
    pub fn release(&mut self, reg: PhysReg) {
        let bank = self.bank_mut(reg.fp);
        let rc = &mut bank.refcount[reg.index as usize];
        assert!(*rc > 0, "refcount underflow on {reg}");
        *rc -= 1;
        if *rc == 0 {
            bank.ready[reg.index as usize] = false;
            bank.free.push(reg.index);
        }
    }

    /// Writes a value and marks the register ready.
    pub fn write(&mut self, reg: PhysReg, value: u64) {
        let bank = self.bank_mut(reg.fp);
        bank.values[reg.index as usize] = value;
        bank.ready[reg.index as usize] = true;
    }

    /// Reads the current value (meaningful only when ready).
    pub fn read(&self, reg: PhysReg) -> u64 {
        self.bank(reg.fp).values[reg.index as usize]
    }

    /// Whether the producing instruction has written the register.
    pub fn is_ready(&self, reg: PhysReg) -> bool {
        self.bank(reg.fp).ready[reg.index as usize]
    }

    /// Marks a register ready without changing its value (used when
    /// seeding architectural state).
    pub fn set_ready(&mut self, reg: PhysReg) {
        self.bank_mut(reg.fp).ready[reg.index as usize] = true;
    }

    /// Current refcount (diagnostics and invariant tests).
    pub fn refcount(&self, reg: PhysReg) -> u32 {
        self.bank(reg.fp).refcount[reg.index as usize]
    }

    /// Free registers remaining in the given file.
    pub fn free_count(&self, fp: bool) -> usize {
        self.bank(fp).free.len()
    }

    /// Capacity of the given file.
    pub fn capacity(&self, fp: bool) -> usize {
        self.bank(fp).values.len()
    }

    /// Invariant: every register is either on the free list (refcount 0)
    /// or live (refcount > 0), with no overlap. Used by tests and debug
    /// assertions in the simulator loop.
    pub fn check_conservation(&self) {
        for (bank, name) in [(&self.int, "int"), (&self.fp, "fp")] {
            let free = bank.free.len();
            let live = bank.refcount.iter().filter(|&&rc| rc > 0).count();
            assert_eq!(
                free + live,
                bank.values.len(),
                "{name} file leaked registers: {free} free + {live} live != {}",
                bank.values.len()
            );
            for &idx in &bank.free {
                assert_eq!(
                    bank.refcount[idx as usize], 0,
                    "{name} free list holds live register"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_release_cycle() {
        let mut rf = RegFiles::new(4, 4);
        let a = rf.alloc(false).unwrap();
        assert_eq!(rf.refcount(a), 1);
        assert!(!rf.is_ready(a));
        rf.write(a, 42);
        assert!(rf.is_ready(a));
        assert_eq!(rf.read(a), 42);
        rf.release(a);
        assert_eq!(rf.refcount(a), 0);
        rf.check_conservation();
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut rf = RegFiles::new(2, 2);
        assert!(rf.alloc(false).is_some());
        assert!(rf.alloc(false).is_some());
        assert!(rf.alloc(false).is_none());
        assert!(rf.alloc(true).is_some(), "files are independent");
    }

    #[test]
    fn shared_register_survives_first_release() {
        let mut rf = RegFiles::new(2, 2);
        let a = rf.alloc(false).unwrap();
        rf.write(a, 7);
        rf.add_ref(a); // a reuse mapping
        rf.release(a); // original holder gone
        assert_eq!(rf.read(a), 7, "value must survive while references remain");
        assert_eq!(rf.refcount(a), 1);
        rf.release(a);
        rf.check_conservation();
    }

    #[test]
    fn freed_register_is_reallocated_clean() {
        let mut rf = RegFiles::new(1, 1);
        let a = rf.alloc(false).unwrap();
        rf.write(a, 99);
        rf.release(a);
        let b = rf.alloc(false).unwrap();
        assert_eq!(a.index, b.index);
        assert!(!rf.is_ready(b), "reallocated register must not be ready");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn double_release_panics() {
        let mut rf = RegFiles::new(2, 2);
        let a = rf.alloc(false).unwrap();
        rf.release(a);
        rf.release(a);
    }

    #[test]
    fn conservation_detects_leaks() {
        let mut rf = RegFiles::new(8, 8);
        let regs: Vec<PhysReg> = (0..5).map(|_| rf.alloc(false).unwrap()).collect();
        rf.check_conservation();
        for r in regs {
            rf.release(r);
        }
        rf.check_conservation();
        assert_eq!(rf.free_count(false), 8);
    }
}
