//! The writeback stage: completion events, branch resolution, recovery,
//! and the alternate-path consequences of resolution (stop / swap).

use crate::active_list::EntryState;
use crate::config::AltPolicy;
use crate::context::CtxState;
use crate::ids::CtxId;
use crate::sim::Simulator;
use multipath_isa::OperandClass;

impl Simulator {
    /// Processes all completions due this cycle.
    pub(crate) fn writeback_stage(&mut self) {
        loop {
            let due = matches!(self.events.peek(), Some(ev) if ev.0.at <= self.cycle);
            if !due {
                break;
            }
            let ev = self.events.pop().expect("peeked").0;
            self.contexts[ev.ctx.index()].in_flight =
                self.contexts[ev.ctx.index()].in_flight.saturating_sub(1);
            let al = &self.contexts[ev.ctx.index()].al;
            let valid = al.is_live(ev.seq) && al.at_seq(ev.seq).is_some_and(|e| e.tag == ev.tag);
            if !valid {
                // The instruction was squashed in flight; its registers
                // were already reclaimed.
                continue;
            }
            let new_preg = {
                let e = self.contexts[ev.ctx.index()]
                    .al
                    .at_seq_mut(ev.seq)
                    .expect("validated");
                e.state = EntryState::Done;
                e.executed = true;
                e.new_preg
            };
            if let (Some(result), Some(p)) = (ev.result, new_preg) {
                self.regs.write(p, result);
            }
            // Correctly predicted branches resolve immediately (their
            // effects are side-effect-free for older instructions);
            // mispredictions are applied in program order below.
            let correct = self.contexts[ev.ctx.index()]
                .al
                .at_seq(ev.seq)
                .and_then(|e| e.branch.as_ref())
                .is_some_and(|b| {
                    !b.resolved
                        && b.actual_taken == Some(b.predicted_taken)
                        && b.actual_target
                            .is_none_or(|t| !b.predicted_taken || t == b.predicted_target)
                });
            if correct {
                self.resolve_branch(ev.ctx, ev.seq);
            }
        }
        self.resolve_branches_in_order();
    }

    /// Applies branch-resolution side effects in program order per context.
    ///
    /// Branches *execute* out of order (their outcome is computed at issue),
    /// but squash/swap effects are applied only when a branch is the oldest
    /// unresolved control instruction in its context. This keeps nested
    /// speculation sound: a younger forked branch can never promote its
    /// alternate while an older branch on its own path might still turn the
    /// whole region into a wrong path.
    fn resolve_branches_in_order(&mut self) {
        for i in 0..self.contexts.len() {
            let ctx = CtxId(i as u8);
            loop {
                // Find the oldest unresolved control entry. Entries below
                // the active list's resolve hint were already scanned past
                // (resolved or branchless), so each cycle picks up where
                // the previous scan stopped instead of rescanning the
                // whole live window.
                let mut found = None;
                let mut scanned_to;
                {
                    let al = &self.contexts[i].al;
                    let start = al.resolve_scan_start();
                    scanned_to = start;
                    for seq in start..al.next_seq() {
                        let Some(e) = al.at_seq(seq) else { break };
                        if let Some(b) = &e.branch {
                            if !b.resolved {
                                found = Some((seq, b.actual_taken.is_some()));
                                break;
                            }
                        }
                        scanned_to = seq + 1;
                    }
                }
                self.contexts[i].al.set_resolve_hint(scanned_to);
                match found {
                    Some((seq, true)) => {
                        self.resolve_branch(ctx, seq);
                        // Resolution may have squashed or swapped; rescan.
                    }
                    _ => break,
                }
            }
        }
    }

    /// Resolves a control instruction: trains the predictor, and on a
    /// misprediction either swaps in the covering alternate path or
    /// squashes and redirects this context.
    fn resolve_branch(&mut self, ctx: CtxId, seq: u64) {
        let (
            pc,
            class,
            predicted_taken,
            predicted_target,
            history,
            fork,
            actual_taken,
            actual_target,
            tag,
        ) = {
            let e = self.contexts[ctx.index()]
                .al
                .at_seq_mut(seq)
                .expect("resolving live entry");
            let b = e.branch.as_mut().expect("control entry");
            b.resolved = true;
            let actual_taken = b.actual_taken.expect("set at execute");
            e.taken_path = Some(actual_taken);
            (
                e.pc,
                e.inst.op.operand_class(),
                b.predicted_taken,
                b.predicted_target,
                b.history,
                b.fork,
                actual_taken,
                b.actual_target.expect("set at execute"),
                e.tag,
            )
        };

        // Train at resolve time from every resolved branch. Alternate
        // paths re-execute instructions the program genuinely runs when
        // paths merge, so their outcomes are valid training samples; the
        // timeliness of resolve-time training matters more than the small
        // wrong-path pollution (measured).
        let was_recycled = self.contexts[ctx.index()]
            .al
            .at_seq(seq)
            .is_some_and(|e| e.recycled);
        // The JRS confidence counter as the fork decision saw it — read
        // before the update below trains it (observation only).
        let conf = if self.probing() {
            self.predictor.confidence_level(pc, history)
        } else {
            0
        };
        let mispredicted = match class {
            OperandClass::CondBr => {
                self.stats.branches += 1;
                if was_recycled {
                    self.stats.branches_recycled += 1;
                }
                self.predictor
                    .update(pc, history, actual_taken, predicted_taken);
                if actual_taken {
                    self.predictor.update_target(pc, actual_target);
                }
                actual_taken != predicted_taken
                    || (actual_taken && actual_target != predicted_target)
            }
            OperandClass::Jump => {
                self.predictor.update_target(pc, actual_target);
                actual_target != predicted_target
            }
            _ => false,
        };

        // Locate a still-attached alternate for this branch.
        let alt = fork.filter(|&a| {
            matches!(
                self.contexts[a.index()].state,
                CtxState::Alternate { parent, fork_tag, .. }
                    if parent == ctx && fork_tag == tag
            )
        });

        if self.probing() && matches!(class, OperandClass::CondBr | OperandClass::Jump) {
            self.probe(
                ctx,
                pc,
                crate::probe::EventKind::Resolve {
                    mispredicted,
                    covered: mispredicted && alt.is_some(),
                    cond: class == OperandClass::CondBr,
                    conf,
                },
            );
        }

        if !mispredicted {
            if let Some(a) = alt {
                self.alternate_resolved_correct(a);
            }
            return;
        }

        self.stats.mispredicts += 1;
        if was_recycled && class == OperandClass::CondBr {
            self.stats.mispredicts_recycled += 1;
        }
        if class == OperandClass::CondBr {
            self.contexts[ctx.index()].ghr.repair(history, actual_taken);
        } else {
            self.contexts[ctx.index()].ghr.set(history);
        }

        if let Some(a) = alt {
            // Covered: the alternate already runs the correct path.
            self.swap_primary(ctx, seq, a);
        } else {
            self.stats.recoveries += 1;
            self.recover_same_context(ctx, seq, actual_target);
        }
    }

    /// Same-context misprediction recovery: squash younger instructions,
    /// remember the retained wrong path as a merge source, and refetch.
    pub(crate) fn recover_same_context(&mut self, ctx: CtxId, branch_seq: u64, redirect: u64) {
        self.squash_ctx_from(ctx, branch_seq + 1);
        self.drop_stream(ctx);
        let recycle = self.config.features.recycle;
        let cycle = self.cycle;
        let c = &mut self.contexts[ctx.index()];
        c.decode_pipe.clear();
        c.log_fe(cycle, format!("recover -> {redirect:#x}"));
        c.fetch_pc = redirect;
        c.al_next_pc = redirect;
        c.fetch_stall_until = cycle + 1;
        c.fetch_stopped = false;
        c.squash_merge = if recycle {
            c.al.at_seq(branch_seq + 1)
                .map(|e| crate::context::MergePoint {
                    seq: branch_seq + 1,
                    pc: e.pc,
                })
        } else {
            None
        };
    }

    /// The forking branch resolved correctly: apply the alternate-path
    /// policy (Section 5.2) to the alternate.
    fn alternate_resolved_correct(&mut self, alt: CtxId) {
        if !self.config.features.recycle {
            // Plain TME discards the alternate immediately.
            self.release_alternate(alt);
            return;
        }
        if let CtxState::Alternate {
            parent, fork_tag, ..
        } = self.contexts[alt.index()].state
        {
            self.contexts[alt.index()].state = CtxState::Alternate {
                parent,
                fork_tag,
                resolved: true,
            };
        }
        match self.config.alt_policy {
            AltPolicy::Stop(_) => {
                self.undispatch(alt);
                self.drop_stream(alt);
                let cycle = self.cycle;
                let c = &mut self.contexts[alt.index()];
                c.decode_pipe.clear();
                c.fetch_stopped = true;
                c.state = CtxState::Inactive;
                c.last_used = cycle;
            }
            AltPolicy::FetchOnly(_) => {
                // Keep fetching (building the trace) but execute no more.
                self.undispatch(alt);
            }
            AltPolicy::NoStop(_) => {}
        }
    }

    /// Removes `ctx`'s pending instructions from the queues without
    /// squashing them: they stay in the trace as fetched-only entries.
    pub(crate) fn undispatch(&mut self, ctx: CtxId) {
        for fp in [false, true] {
            // Compact in place: other contexts' entries slide down in age
            // order; every entry of `ctx` leaves the queue.
            let mut q = std::mem::take(if fp {
                &mut self.iq_fp
            } else {
                &mut self.iq_int
            });
            let mut kept = 0;
            for i in 0..q.len() {
                let e = q[i];
                if e.ctx != ctx {
                    q[kept] = e;
                    kept += 1;
                    continue;
                }
                // Only live, still-pending entries hold reader references;
                // stale queue entries (already squashed) must not release
                // them a second time.
                let live = self.contexts[ctx.index()].al.is_live(e.seq);
                let valid = live
                    && self.contexts[ctx.index()]
                        .al
                        .at_seq(e.seq)
                        .is_some_and(|a| a.tag == e.tag && a.state == EntryState::Pending);
                if !valid {
                    continue;
                }
                for src in e.srcs.into_iter().flatten() {
                    self.regs.release(src);
                }
                let is_store = {
                    let a = self.contexts[ctx.index()]
                        .al
                        .at_seq_mut(e.seq)
                        .expect("validated");
                    a.fetched_only = true;
                    a.srcs = [None; 2];
                    a.inst.op.is_store()
                };
                if is_store {
                    self.contexts[ctx.index()].clear_pending_store(e.tag);
                }
            }
            q.truncate(kept);
            if fp {
                self.iq_fp = q;
            } else {
                self.iq_int = q;
            }
        }
    }
}
