//! Speculative store queues and store-to-load visibility.
//!
//! Stores never write functional memory until they commit; until then they
//! live in their context's store queue. A load must see, in order:
//!
//! 1. stores from its *own* context that are older than it;
//! 2. stores from its ancestor contexts (the thread it was forked from,
//!    transitively) that are older than the fork point;
//! 3. committed memory.
//!
//! Rather than forwarding only on exact address matches, loads materialise
//! their value byte-by-byte: start from committed memory and overlay every
//! visible store's bytes in age order. This is exact for arbitrary
//! overlap, which matters because wrong-path code computes wild addresses.

use crate::ids::{CtxId, InstTag};
use multipath_mem::Memory;

/// One buffered speculative store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreEntry {
    /// Global age tag of the store.
    pub tag: InstTag,
    /// Effective address.
    pub addr: u64,
    /// Access width in bytes (1, 4, or 8).
    pub width: u8,
    /// The data (low `width` bytes significant).
    pub value: u64,
}

/// A per-context store queue, ordered by age.
#[derive(Debug, Clone, Default)]
pub struct StoreQueue {
    entries: Vec<StoreEntry>,
}

impl StoreQueue {
    /// Creates an empty queue.
    pub fn new() -> StoreQueue {
        StoreQueue::default()
    }

    /// Inserts an executed store (entries arrive in tag order per context;
    /// out-of-order execution is handled by sorting on insert).
    pub fn insert(&mut self, entry: StoreEntry) {
        let pos = self.entries.partition_point(|e| e.tag < entry.tag);
        self.entries.insert(pos, entry);
    }

    /// Removes and returns the entry with `tag` (at commit or squash).
    pub fn remove(&mut self, tag: InstTag) -> Option<StoreEntry> {
        let pos = self.entries.iter().position(|e| e.tag == tag)?;
        Some(self.entries.remove(pos))
    }

    /// Drops all entries younger than or equal to `from` (squash).
    pub fn squash_from(&mut self, from: InstTag) {
        self.entries.retain(|e| e.tag < from);
    }

    /// Entries older than `before`, oldest first.
    pub fn older_than(&self, before: InstTag) -> impl Iterator<Item = &StoreEntry> + '_ {
        self.entries.iter().take_while(move |e| e.tag < before)
    }

    /// Number of buffered stores.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Clears the queue (context reset).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// A link in the fork ancestry: reads from this context may also see the
/// parent's stores older than the fork tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForkLink {
    /// The parent context.
    pub parent: CtxId,
    /// Only parent stores strictly older than this tag are visible.
    pub fork_tag: InstTag,
}

/// Materialises the value a load sees.
///
/// `chain` is the visibility chain starting with the loading context
/// itself: `(ctx_queue, age_bound)` pairs, own context first (bounded by
/// the load's tag), then each ancestor bounded by its fork tag.
pub fn load_value(memory: &Memory, chain: &[(&StoreQueue, InstTag)], addr: u64, width: u8) -> u64 {
    debug_assert!(matches!(width, 1 | 4 | 8));
    let mut bytes = [0u8; 8];
    let w = width as usize;
    memory.read_bytes(addr, &mut bytes[..w]);
    // Overlay visible stores oldest-first so younger stores win; walk the
    // chain from the most distant ancestor to self (ancestors are older).
    for &(queue, bound) in chain.iter().rev() {
        for store in queue.older_than(bound) {
            overlay(&mut bytes[..w], addr, store);
        }
    }
    u64::from_le_bytes(bytes)
}

fn overlay(bytes: &mut [u8], load_addr: u64, store: &StoreEntry) {
    let data = store.value.to_le_bytes();
    for i in 0..store.width as u64 {
        // Addresses wrap, matching `Memory::write_bytes`: wrong-path code
        // computes wild addresses, and a store whose range crosses
        // u64::MAX aliases the bottom of the address space — speculative
        // forwarding must see the same bytes the store will commit.
        let byte_addr = store.addr.wrapping_add(i);
        let offset = byte_addr.wrapping_sub(load_addr);
        if offset < bytes.len() as u64 {
            bytes[offset as usize] = data[i as usize];
        }
    }
}

/// Whether two byte ranges may overlap. Addresses wrap (matching
/// `Memory`), so a range crossing u64::MAX is conservatively treated as
/// overlapping everything — the callers use this to *block* a load or
/// *invalidate* a reuse entry, where over-approximation is always safe.
pub(crate) fn ranges_overlap(a_start: u64, a_len: u64, b_start: u64, b_len: u64) -> bool {
    match (a_start.checked_add(a_len), b_start.checked_add(b_len)) {
        (Some(a_end), Some(b_end)) => a_start < b_end && b_start < a_end,
        _ => true, // wrapping range: may alias anything
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st(tag: u64, addr: u64, width: u8, value: u64) -> StoreEntry {
        StoreEntry {
            tag: InstTag(tag),
            addr,
            width,
            value,
        }
    }

    #[test]
    fn forwarding_from_own_queue() {
        let mem = Memory::new();
        let mut sq = StoreQueue::new();
        sq.insert(st(5, 0x100, 8, 0xdead));
        // A load with tag 10 sees the store; tag 3 does not.
        assert_eq!(load_value(&mem, &[(&sq, InstTag(10))], 0x100, 8), 0xdead);
        assert_eq!(load_value(&mem, &[(&sq, InstTag(3))], 0x100, 8), 0);
    }

    #[test]
    fn younger_store_wins() {
        let mem = Memory::new();
        let mut sq = StoreQueue::new();
        sq.insert(st(1, 0x100, 8, 1));
        sq.insert(st(2, 0x100, 8, 2));
        assert_eq!(load_value(&mem, &[(&sq, InstTag(9))], 0x100, 8), 2);
    }

    #[test]
    fn partial_overlap_merges_bytes() {
        let mut mem = Memory::new();
        mem.write_u64(0x100, 0x1111_1111_1111_1111);
        let mut sq = StoreQueue::new();
        sq.insert(st(1, 0x102, 1, 0xff)); // one byte inside the quad
        let v = load_value(&mem, &[(&sq, InstTag(2))], 0x100, 8);
        assert_eq!(v, 0x1111_1111_11ff_1111);
    }

    #[test]
    fn ancestor_stores_bounded_by_fork_tag() {
        let mem = Memory::new();
        let mut parent = StoreQueue::new();
        parent.insert(st(10, 0x200, 8, 7)); // before fork
        parent.insert(st(30, 0x200, 8, 9)); // after fork — invisible
        let child = StoreQueue::new();
        let chain = [(&child, InstTag(100)), (&parent, InstTag(20))];
        assert_eq!(load_value(&mem, &chain, 0x200, 8), 7);
    }

    #[test]
    fn own_store_shadows_ancestor() {
        let mem = Memory::new();
        let mut parent = StoreQueue::new();
        parent.insert(st(10, 0x200, 8, 7));
        let mut child = StoreQueue::new();
        child.insert(st(40, 0x200, 8, 8));
        let chain = [(&child, InstTag(100)), (&parent, InstTag(20))];
        assert_eq!(load_value(&mem, &chain, 0x200, 8), 8);
    }

    #[test]
    fn out_of_order_insert_keeps_age_order() {
        let mut sq = StoreQueue::new();
        sq.insert(st(5, 0, 8, 5));
        sq.insert(st(2, 0, 8, 2));
        let tags: Vec<u64> = sq.older_than(InstTag(10)).map(|e| e.tag.0).collect();
        assert_eq!(tags, vec![2, 5]);
    }

    #[test]
    fn squash_drops_young_entries() {
        let mut sq = StoreQueue::new();
        sq.insert(st(1, 0, 8, 0));
        sq.insert(st(5, 0, 8, 0));
        sq.squash_from(InstTag(5));
        assert_eq!(sq.len(), 1);
        assert!(sq.remove(InstTag(1)).is_some());
    }

    #[test]
    fn remove_by_tag() {
        let mut sq = StoreQueue::new();
        sq.insert(st(3, 0x10, 4, 42));
        assert_eq!(sq.remove(InstTag(3)).unwrap().value, 42);
        assert!(sq.remove(InstTag(3)).is_none());
        assert!(sq.is_empty());
    }
}
