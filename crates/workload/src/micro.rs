//! Parameterised synthetic microbenchmarks.
//!
//! Where [`crate::kernels`] imitates whole SPEC95 programs, this module
//! generates loops with *one property dialled at a time* — loop size,
//! number of hard branch sites, branch bias, independent-chain ILP, data
//! footprint — so the simulator's mechanisms can be studied in isolation
//! (e.g. the paper's claim that only loops smaller than the active list
//! benefit from backward-branch recycling).
//!
//! # Examples
//!
//! ```
//! use multipath_workload::micro::{self, MicroParams};
//!
//! let p = micro::build(&MicroParams { loop_body: 64, ..MicroParams::default() }, 1);
//! assert!(p.text.len() >= 50);
//! ```

use crate::asm::Assembler;
use crate::data::{DataBuilder, SplitMix64};
use crate::program::Program;
use multipath_isa::regs::*;
use multipath_isa::IntReg;

/// Tunable properties of a generated loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroParams {
    /// Approximate loop-body length in instructions (≥ 8).
    pub loop_body: usize,
    /// Number of data-dependent hammock sites in the body.
    pub hard_sites: usize,
    /// Probability (percent) that a hard branch is taken.
    pub taken_percent: u8,
    /// Independent accumulator chains (instruction-level parallelism).
    pub ilp: usize,
    /// Data footprint in bytes (rounded up to a power of two, ≥ 4KiB).
    pub footprint: usize,
}

impl Default for MicroParams {
    /// A 32-instruction loop with one 30%-taken hammock, two chains, and
    /// an 8KiB footprint.
    fn default() -> MicroParams {
        MicroParams {
            loop_body: 32,
            hard_sites: 1,
            taken_percent: 30,
            ilp: 2,
            footprint: 8 << 10,
        }
    }
}

/// Builds the microbenchmark. Deterministic in `seed`; the program loops
/// forever (simulate to a commit budget).
///
/// # Panics
///
/// Panics if the parameters are degenerate (zero body, zero chains, or
/// more hard sites than the body can hold).
pub fn build(params: &MicroParams, seed: u64) -> Program {
    assert!(
        params.loop_body >= 8,
        "loop body must hold the loop plumbing"
    );
    assert!(params.ilp >= 1 && params.ilp <= 6, "1..=6 chains supported");
    // A site emits 10 instructions and the emission loop admits one while
    // `emitted + 8 < loop_body`, so the last site starts no later than
    // slot 10*(sites-1) — all sites fit iff that slot passes the guard.
    assert!(
        params.hard_sites * 10 <= params.loop_body + 1,
        "each hard site costs ten instructions"
    );
    let mut rng = SplitMix64::new(seed ^ 0x3317_c0de);
    let slots = (params.footprint.max(4096) / 8).next_power_of_two();
    let mut data = DataBuilder::new(crate::DATA_BASE);
    data.u64_array("table", (0..slots).map(|_| rng.next_u64()));
    let table = data.address_of("table") as i32;

    // Accumulator registers for the independent chains.
    const CHAINS: [IntReg; 6] = [R8, R9, R10, R11, R12, R13];
    let mut a = Assembler::new();
    a.li(R16, table);
    a.li(R2, 0);
    for &c in &CHAINS[..params.ilp] {
        a.li(c, 1);
    }

    a.label("loop");
    let mut emitted = 0usize;
    let mut site = 0usize;
    let threshold = (params.taken_percent as i64 * 256 / 100) as i16;
    while emitted + 8 < params.loop_body {
        if site < params.hard_sites {
            // A hammock: branch on a fresh random byte from the table.
            a.andi(R4, R2, (slots - 1) as i16);
            a.slli(R4, R4, 3);
            a.add(R4, R16, R4);
            a.ldq(R5, 0, R4);
            a.andi(R6, R5, 255);
            a.cmplti(R6, R6, threshold);
            let then = format!("s{site}_t");
            let join = format!("s{site}_j");
            a.bne(R6, &then);
            a.add(CHAINS[site % params.ilp], CHAINS[site % params.ilp], R5);
            a.br(&join);
            a.label(&then);
            a.xor(CHAINS[site % params.ilp], CHAINS[site % params.ilp], R5);
            a.label(&join);
            emitted += 10;
            site += 1;
        } else {
            // Plain chain work, rotated across the independent chains.
            let c = CHAINS[emitted % params.ilp];
            match emitted % 3 {
                0 => a.addi(c, c, 7),
                1 => a.slli(R5, c, 1),
                _ => a.xor(c, c, R5),
            }
            emitted += 1;
        }
    }
    a.addi(R2, R2, 1);
    a.br("loop");

    Program {
        name: format!(
            "micro-b{}s{}p{}i{}",
            params.loop_body, params.hard_sites, params.taken_percent, params.ilp
        ),
        text_base: crate::TEXT_BASE,
        text: a
            .assemble(crate::TEXT_BASE)
            .expect("microbenchmark assembles"),
        data: vec![data.build()],
        entry: crate::TEXT_BASE,
        initial_sp: crate::STACK_TOP,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_builds_and_sizes_track_request() {
        let small = build(
            &MicroParams {
                loop_body: 16,
                ..MicroParams::default()
            },
            1,
        );
        let large = build(
            &MicroParams {
                loop_body: 128,
                ..MicroParams::default()
            },
            1,
        );
        assert!(large.text.len() > small.text.len() * 3);
    }

    #[test]
    fn determinism_and_seed_sensitivity() {
        let p = MicroParams::default();
        assert_eq!(build(&p, 5), build(&p, 5));
        assert_ne!(build(&p, 5).data, build(&p, 6).data);
    }

    #[test]
    #[should_panic(expected = "ten instructions")]
    fn too_many_sites_rejected() {
        build(
            &MicroParams {
                loop_body: 16,
                hard_sites: 2,
                ..MicroParams::default()
            },
            1,
        );
    }

    #[test]
    fn every_requested_site_is_emitted() {
        for sites in 1..=4usize {
            let p = build(
                &MicroParams {
                    loop_body: sites * 10,
                    hard_sites: sites,
                    ..MicroParams::default()
                },
                3,
            );
            let branches = p
                .text
                .iter()
                .filter(|&&w| {
                    multipath_isa::Inst::decode(w)
                        .is_some_and(|i| i.op == multipath_isa::Opcode::Bne)
                })
                .count();
            assert_eq!(
                branches, sites,
                "one conditional hammock per requested site"
            );
        }
    }

    #[test]
    fn all_words_decode() {
        let p = build(
            &MicroParams {
                loop_body: 96,
                hard_sites: 4,
                ilp: 4,
                ..MicroParams::default()
            },
            2,
        );
        for &w in &p.text {
            assert!(multipath_isa::Inst::decode(w).is_some());
        }
    }
}
