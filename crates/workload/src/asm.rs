//! A label-based assembler DSL.
//!
//! Kernels are written against [`Assembler`]'s mnemonic methods; forward
//! references are expressed with string labels and resolved at
//! [`Assembler::assemble`] time. The emitted image is a `Vec<u32>` of
//! encoded words ready to be placed at the requested base address.
//!
//! # Examples
//!
//! ```
//! use multipath_workload::Assembler;
//! use multipath_isa::regs::*;
//!
//! let mut a = Assembler::new();
//! a.li(R1, 10);
//! a.label("loop");
//! a.subi(R1, R1, 1);
//! a.bne(R1, "loop");
//! a.halt();
//! let text = a.assemble(0x1_0000).unwrap();
//! assert!(text.len() >= 4);
//! ```

use multipath_isa::{FpReg, Inst, IntReg, Opcode, INST_BYTES};
use std::collections::HashMap;
use std::fmt;

/// Errors produced at assembly time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A branch references a label that was never defined.
    UndefinedLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A resolved displacement does not fit the 21-bit branch field.
    DisplacementOverflow {
        /// The offending label.
        label: String,
        /// The displacement in instructions.
        displacement: i64,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::DisplacementOverflow {
                label,
                displacement,
            } => {
                write!(
                    f,
                    "branch to `{label}` displacement {displacement} exceeds 21 bits"
                )
            }
        }
    }
}

impl std::error::Error for AsmError {}

/// One yet-unresolved item in the instruction stream.
#[derive(Debug, Clone)]
enum Item {
    /// A fully formed instruction.
    Ready(Inst),
    /// A conditional branch to a label.
    CondBr(Opcode, IntReg, String),
    /// An unconditional branch to a label.
    Br(String),
    /// A call to a label.
    Jsr(String),
}

/// A two-pass assembler with label resolution.
///
/// Instruction-emitting methods are named after mnemonics; every method
/// appends exactly one instruction except [`Assembler::li`], which may emit
/// one or two (wide constants need `ldih` + `lda`).
#[derive(Debug, Clone, Default)]
pub struct Assembler {
    items: Vec<Item>,
    labels: HashMap<String, usize>,
}

impl Assembler {
    /// Creates an empty assembler.
    pub fn new() -> Assembler {
        Assembler::default()
    }

    /// Defines `name` at the current position.
    ///
    /// # Panics
    ///
    /// Panics on duplicate definition (a kernel-authoring bug).
    pub fn label(&mut self, name: &str) {
        let prev = self.labels.insert(name.to_owned(), self.items.len());
        assert!(prev.is_none(), "duplicate label `{name}`");
    }

    /// Appends an already-formed instruction.
    pub fn inst(&mut self, inst: Inst) {
        self.items.push(Item::Ready(inst));
    }

    /// Number of instructions emitted so far (labels excluded).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Resolves labels and encodes the image based at `base`.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] for undefined labels or displacement overflow.
    pub fn assemble(&self, base: u64) -> Result<Vec<u32>, AsmError> {
        let resolve = |label: &str, at: usize| -> Result<i32, AsmError> {
            let target = *self
                .labels
                .get(label)
                .ok_or_else(|| AsmError::UndefinedLabel(label.to_owned()))?;
            // Displacement is relative to the *next* instruction.
            let disp = target as i64 - (at as i64 + 1);
            if !(-(1 << 20)..(1 << 20)).contains(&disp) {
                return Err(AsmError::DisplacementOverflow {
                    label: label.to_owned(),
                    displacement: disp,
                });
            }
            Ok(disp as i32)
        };
        let _ = base; // PC-relative encoding is position-independent.
        self.items
            .iter()
            .enumerate()
            .map(|(at, item)| {
                let inst = match item {
                    Item::Ready(i) => *i,
                    Item::CondBr(op, ra, label) => Inst::cond_branch(*op, *ra, resolve(label, at)?),
                    Item::Br(label) => Inst::branch(resolve(label, at)?),
                    Item::Jsr(label) => Inst::call(resolve(label, at)?),
                };
                Ok(inst.encode())
            })
            .collect()
    }

    /// The resolved address a label will have when based at `base`.
    ///
    /// # Panics
    ///
    /// Panics if the label is undefined.
    pub fn address_of(&self, label: &str, base: u64) -> u64 {
        let idx = *self
            .labels
            .get(label)
            .unwrap_or_else(|| panic!("undefined label `{label}`"));
        base + idx as u64 * INST_BYTES
    }
}

// ------------------------------------------------------------------
// Mnemonic methods. Grouped to mirror the opcode table.
// ------------------------------------------------------------------

macro_rules! rrr_methods {
    ($($name:ident => $op:ident),* $(,)?) => {
        impl Assembler {
            $(
                #[doc = concat!("`", stringify!($name), " rc, ra, rb`")]
                pub fn $name(&mut self, rc: IntReg, ra: IntReg, rb: IntReg) {
                    self.inst(Inst::rrr(Opcode::$op, rc, ra, rb));
                }
            )*
        }
    };
}

rrr_methods! {
    add => Add, sub => Sub, mul => Mul, and => And, or => Or, xor => Xor,
    sll => Sll, srl => Srl, sra => Sra,
    cmpeq => Cmpeq, cmplt => Cmplt, cmple => Cmple, cmpult => Cmpult,
}

macro_rules! rri_methods {
    ($($name:ident => $op:ident),* $(,)?) => {
        impl Assembler {
            $(
                #[doc = concat!("`", stringify!($name), " rc, ra, #imm`")]
                pub fn $name(&mut self, rc: IntReg, ra: IntReg, imm: i16) {
                    self.inst(Inst::rri(Opcode::$op, rc, ra, imm));
                }
            )*
        }
    };
}

rri_methods! {
    addi => Addi, subi => Subi, muli => Muli, andi => Andi, ori => Ori,
    xori => Xori, slli => Slli, srli => Srli, srai => Srai,
    cmpeqi => Cmpeqi, cmplti => Cmplti, cmplei => Cmplei, cmpulti => Cmpulti,
    lda => Lda, ldih => Ldih,
}

macro_rules! mem_methods {
    ($($name:ident => $op:ident / $kind:ident),* $(,)?) => {
        impl Assembler {
            $(
                #[doc = concat!("`", stringify!($name), " ra, disp(rb)`")]
                pub fn $name(&mut self, ra: IntReg, disp: i16, rb: IntReg) {
                    self.inst(Inst::$kind(Opcode::$op, ra, disp, rb));
                }
            )*
        }
    };
}

mem_methods! {
    ldq => Ldq / load, ldl => Ldl / load, ldbu => Ldbu / load,
    stq => Stq / store, stl => Stl / store, stb => Stb / store,
}

macro_rules! fp_methods {
    ($($name:ident => $op:ident),* $(,)?) => {
        impl Assembler {
            $(
                #[doc = concat!("`", stringify!($name), " fc, fa, fb`")]
                pub fn $name(&mut self, fc: FpReg, fa: FpReg, fb: FpReg) {
                    self.inst(Inst::fp(Opcode::$op, fc, fa, fb));
                }
            )*
        }
    };
}

fp_methods! { addt => Addt, subt => Subt, mult => Mult, divt => Divt }

macro_rules! condbr_methods {
    ($($name:ident => $op:ident),* $(,)?) => {
        impl Assembler {
            $(
                #[doc = concat!("`", stringify!($name), " ra, label`")]
                pub fn $name(&mut self, ra: IntReg, label: &str) {
                    self.items.push(Item::CondBr(Opcode::$op, ra, label.to_owned()));
                }
            )*
        }
    };
}

condbr_methods! {
    beq => Beq, bne => Bne, blt => Blt, ble => Ble, bgt => Bgt, bge => Bge,
}

impl Assembler {
    /// `ldt fa, disp(rb)` — floating-point load.
    pub fn ldt(&mut self, fa: FpReg, disp: i16, rb: IntReg) {
        self.inst(Inst::fload(fa, disp, rb));
    }

    /// `stt fa, disp(rb)` — floating-point store.
    pub fn stt(&mut self, fa: FpReg, disp: i16, rb: IntReg) {
        self.inst(Inst::fstore(fa, disp, rb));
    }

    /// `cmptlt rc, fa, fb`.
    pub fn cmptlt(&mut self, rc: IntReg, fa: FpReg, fb: FpReg) {
        self.inst(Inst::fp_cmp(Opcode::Cmptlt, rc, fa, fb));
    }

    /// `cmpteq rc, fa, fb`.
    pub fn cmpteq(&mut self, rc: IntReg, fa: FpReg, fb: FpReg) {
        self.inst(Inst::fp_cmp(Opcode::Cmpteq, rc, fa, fb));
    }

    /// `cmptle rc, fa, fb`.
    pub fn cmptle(&mut self, rc: IntReg, fa: FpReg, fb: FpReg) {
        self.inst(Inst::fp_cmp(Opcode::Cmptle, rc, fa, fb));
    }

    /// `cvtqt fc, ra` — integer to double.
    pub fn cvtqt(&mut self, fc: FpReg, ra: IntReg) {
        self.inst(Inst::cvtqt(fc, ra));
    }

    /// `cvttq rc, fa` — double to integer (truncating).
    pub fn cvttq(&mut self, rc: IntReg, fa: FpReg) {
        self.inst(Inst::cvttq(rc, fa));
    }

    /// `br label` — unconditional branch.
    pub fn br(&mut self, label: &str) {
        self.items.push(Item::Br(label.to_owned()));
    }

    /// `jsr label` — call, linking the return address into `r26`.
    pub fn jsr(&mut self, label: &str) {
        self.items.push(Item::Jsr(label.to_owned()));
    }

    /// `ret (r26)` — return through the link register.
    pub fn ret(&mut self) {
        self.inst(Inst::ret(IntReg::RA));
    }

    /// `jmp (rb)` — indirect jump.
    pub fn jmp(&mut self, rb: IntReg) {
        self.inst(Inst::jump(rb));
    }

    /// `nop`.
    pub fn nop(&mut self) {
        self.inst(Inst::nop());
    }

    /// `halt`.
    pub fn halt(&mut self) {
        self.inst(Inst::halt());
    }

    /// `mov rc, ra` (encoded as `or rc, ra, r31`).
    pub fn mov(&mut self, rc: IntReg, ra: IntReg) {
        self.or(rc, ra, IntReg::ZERO);
    }

    /// Loads a signed 32-bit constant, emitting one or two instructions
    /// (`lda` alone for values that fit 16 bits, otherwise `ldih` + `lda`
    /// with the usual sign-carry adjustment).
    ///
    /// # Panics
    ///
    /// Panics for values whose sign-carry-adjusted high half does not fit
    /// 16 bits (the range `0x7fff_8000..=0x7fff_ffff`), exactly as on
    /// Alpha, where such constants need a third instruction. Kernel
    /// addresses and constants are far below this.
    pub fn li(&mut self, rc: IntReg, value: i32) {
        let lo = value as i16;
        let hi64 = (value as i64 - lo as i64) >> 16;
        let hi = i16::try_from(hi64)
            .unwrap_or_else(|_| panic!("li({value:#x}) needs a 3-instruction sequence"));
        if hi != 0 {
            self.ldih(rc, IntReg::ZERO, hi);
            if lo != 0 {
                self.lda(rc, rc, lo);
            }
        } else {
            self.lda(rc, IntReg::ZERO, lo);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multipath_isa::regs::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Assembler::new();
        a.label("top");
        a.addi(R1, R1, 1);
        a.bne(R1, "skip");
        a.br("top");
        a.label("skip");
        a.halt();
        let text = a.assemble(0x1000).unwrap();
        // bne at index 1: target index 3 → disp = 3 - 2 = 1.
        let bne = Inst::decode(text[1]).unwrap();
        assert_eq!(bne.imm, 1);
        // br at index 2: target index 0 → disp = 0 - 3 = -3.
        let br = Inst::decode(text[2]).unwrap();
        assert_eq!(br.imm, -3);
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut a = Assembler::new();
        a.br("nowhere");
        assert_eq!(
            a.assemble(0).unwrap_err(),
            AsmError::UndefinedLabel("nowhere".to_owned())
        );
    }

    #[test]
    #[should_panic(expected = "duplicate label")]
    fn duplicate_label_panics() {
        let mut a = Assembler::new();
        a.label("x");
        a.label("x");
    }

    #[test]
    fn li_small_constant_is_one_inst() {
        let mut a = Assembler::new();
        a.li(R1, 100);
        assert_eq!(a.len(), 1);
        a.li(R2, -5);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn li_wide_constant_reconstructs_value() {
        // Verify the ldih/lda pair reconstructs tricky values by symbolic
        // evaluation: value = (hi << 16) + sign_extend(lo).
        for &v in &[
            0x10_0000i32,
            0x7fff_7fff,
            -0x10_0000,
            0x1_8000,
            0xffff,
            -0x8000,
        ] {
            let mut a = Assembler::new();
            a.li(R1, v);
            let text = a.assemble(0).unwrap();
            let mut acc: i64 = 0;
            for w in text {
                let i = Inst::decode(w).unwrap();
                match i.op {
                    Opcode::Ldih => acc += (i.imm as i64) << 16,
                    Opcode::Lda => acc += i.imm as i64,
                    other => panic!("unexpected {other}"),
                }
            }
            assert_eq!(acc, v as i64, "li({v:#x})");
        }
    }

    #[test]
    fn address_of_accounts_for_base() {
        let mut a = Assembler::new();
        a.nop();
        a.label("here");
        a.nop();
        assert_eq!(a.address_of("here", 0x1_0000), 0x1_0004);
    }

    #[test]
    fn mov_is_or_with_zero() {
        let mut a = Assembler::new();
        a.mov(R1, R2);
        let text = a.assemble(0).unwrap();
        let i = Inst::decode(text[0]).unwrap();
        assert_eq!(i.op, Opcode::Or);
        assert_eq!(i.src2, Some(IntReg::ZERO.into()));
    }
}

#[cfg(test)]
mod li_overflow_tests {
    use super::*;
    use multipath_isa::regs::*;

    #[test]
    #[should_panic(expected = "3-instruction")]
    fn li_unrepresentable_panics() {
        Assembler::new().li(R1, 0x7fff_ffff);
    }
}

#[cfg(test)]
mod error_display_tests {
    use super::*;
    use multipath_isa::regs::*;

    #[test]
    fn error_messages_are_informative() {
        assert_eq!(
            AsmError::UndefinedLabel("x".into()).to_string(),
            "undefined label `x`"
        );
        assert_eq!(
            AsmError::DuplicateLabel("y".into()).to_string(),
            "duplicate label `y`"
        );
        let overflow = AsmError::DisplacementOverflow {
            label: "far".into(),
            displacement: 1 << 21,
        };
        assert!(overflow.to_string().contains("far"));
        assert!(overflow.to_string().contains("21 bits"));
    }

    #[test]
    fn jsr_and_br_resolve_like_cond_branches() {
        let mut a = Assembler::new();
        a.jsr("f");
        a.br("f");
        a.label("f");
        a.ret();
        let text = a.assemble(0).unwrap();
        let jsr = multipath_isa::Inst::decode(text[0]).unwrap();
        let br = multipath_isa::Inst::decode(text[1]).unwrap();
        assert_eq!(jsr.imm, 1); // target idx 2, next idx 1
        assert_eq!(br.imm, 0);
    }

    #[test]
    fn len_and_is_empty_track_items() {
        let mut a = Assembler::new();
        assert!(a.is_empty());
        a.nop();
        a.label("here"); // labels are not instructions
        a.nop();
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
    }

    #[test]
    fn fp_mnemonics_assemble() {
        let mut a = Assembler::new();
        a.addt(F1, F2, F3);
        a.subt(F1, F2, F3);
        a.mult(F1, F2, F3);
        a.divt(F1, F2, F3);
        a.cmpteq(R1, F2, F3);
        a.cmptle(R1, F2, F3);
        a.cvtqt(F1, R2);
        a.cvttq(R1, F2);
        a.ldt(F4, 8, R5);
        a.stt(F4, 8, R5);
        a.jmp(R7);
        assert_eq!(a.assemble(0).unwrap().len(), 11);
    }
}
