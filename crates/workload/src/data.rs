//! Deterministic data-segment construction.
//!
//! Kernels need initial data whose *contents* drive their hard-to-predict
//! branches (data-dependent conditions are what defeat a gshare predictor
//! and trigger TME forking). [`SplitMix64`] provides a tiny, seedable,
//! dependency-free generator; [`DataBuilder`] lays out arrays in a data
//! segment and remembers their addresses by name.

use crate::program::DataSegment;
use std::collections::HashMap;

/// SplitMix64: a fast, high-quality 64-bit mixer (Steele et al.).
///
/// Used instead of `rand` inside workload construction so that program
/// images are bit-stable across `rand` versions — experiment
/// reproducibility depends on it.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A value uniform in `0..bound` (`bound > 0`).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// A double uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// Lays out named arrays in a single contiguous data segment.
///
/// # Examples
///
/// ```
/// use multipath_workload::{DataBuilder, SplitMix64};
///
/// let mut rng = SplitMix64::new(7);
/// let mut d = DataBuilder::new(0x10_0000);
/// let tbl = d.u64_array("table", (0..16).map(|_| rng.next_u64()));
/// assert_eq!(tbl, 0x10_0000);
/// assert_eq!(d.address_of("table"), tbl);
/// let seg = d.build();
/// assert_eq!(seg.bytes.len(), 16 * 8);
/// ```
#[derive(Debug, Clone)]
pub struct DataBuilder {
    base: u64,
    bytes: Vec<u8>,
    names: HashMap<String, u64>,
}

impl DataBuilder {
    /// Starts a segment at `base`.
    pub fn new(base: u64) -> DataBuilder {
        DataBuilder {
            base,
            bytes: Vec::new(),
            names: HashMap::new(),
        }
    }

    fn align(&mut self, alignment: usize) {
        while !self.bytes.len().is_multiple_of(alignment) {
            self.bytes.push(0);
        }
    }

    fn here(&self) -> u64 {
        self.base + self.bytes.len() as u64
    }

    fn record(&mut self, name: &str, addr: u64) {
        let prev = self.names.insert(name.to_owned(), addr);
        assert!(prev.is_none(), "duplicate data name `{name}`");
    }

    /// Appends an 8-byte-aligned array of u64s; returns its address.
    pub fn u64_array<I: IntoIterator<Item = u64>>(&mut self, name: &str, values: I) -> u64 {
        self.align(8);
        let addr = self.here();
        self.record(name, addr);
        for v in values {
            self.bytes.extend_from_slice(&v.to_le_bytes());
        }
        addr
    }

    /// Appends an 8-byte-aligned array of doubles; returns its address.
    pub fn f64_array<I: IntoIterator<Item = f64>>(&mut self, name: &str, values: I) -> u64 {
        self.align(8);
        let addr = self.here();
        self.record(name, addr);
        for v in values {
            self.bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        addr
    }

    /// Appends a byte array; returns its address.
    pub fn byte_array<I: IntoIterator<Item = u8>>(&mut self, name: &str, values: I) -> u64 {
        let addr = self.here();
        self.record(name, addr);
        self.bytes.extend(values);
        addr
    }

    /// Appends `count` zeroed u64 slots (8-byte aligned); returns address.
    pub fn zeros_u64(&mut self, name: &str, count: usize) -> u64 {
        self.u64_array(name, std::iter::repeat_n(0, count))
    }

    /// Address of a previously laid-out array.
    ///
    /// # Panics
    ///
    /// Panics if `name` was never laid out.
    pub fn address_of(&self, name: &str) -> u64 {
        *self
            .names
            .get(name)
            .unwrap_or_else(|| panic!("unknown data name `{name}`"))
    }

    /// Finishes the segment.
    pub fn build(self) -> DataSegment {
        DataSegment {
            base: self.base,
            bytes: self.bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(1);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_seeds_differ() {
        assert_ne!(SplitMix64::new(1).next_u64(), SplitMix64::new(2).next_u64());
    }

    #[test]
    fn chance_is_calibrated() {
        let mut rng = SplitMix64::new(99);
        let hits = (0..10_000).filter(|_| rng.chance(0.3)).count();
        assert!((2700..3300).contains(&hits), "got {hits}");
    }

    #[test]
    fn builder_layout_is_contiguous_and_aligned() {
        let mut d = DataBuilder::new(0x1000);
        d.byte_array("b", [1, 2, 3]);
        let a = d.u64_array("q", [42]);
        assert_eq!(a % 8, 0);
        assert_eq!(a, 0x1008); // 3 bytes + 5 padding
        let seg = d.build();
        assert_eq!(&seg.bytes[..3], &[1, 2, 3]);
        assert_eq!(seg.bytes[8], 42);
    }

    #[test]
    fn f64_round_trips_through_bytes() {
        let mut d = DataBuilder::new(0);
        d.f64_array("x", [1.5, -2.25]);
        let seg = d.build();
        let v = f64::from_bits(u64::from_le_bytes(seg.bytes[0..8].try_into().unwrap()));
        assert_eq!(v, 1.5);
    }

    #[test]
    #[should_panic(expected = "unknown data name")]
    fn unknown_name_panics() {
        DataBuilder::new(0).address_of("nope");
    }

    #[test]
    #[should_panic(expected = "duplicate data name")]
    fn duplicate_name_panics() {
        let mut d = DataBuilder::new(0);
        d.zeros_u64("x", 1);
        d.zeros_u64("x", 1);
    }
}
