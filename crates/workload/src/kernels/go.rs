//! `go` proxy: board evaluation with nested data-dependent conditionals.
//!
//! Personality: game-tree position evaluation. The loop body examines two
//! board points with *different* evaluation code (as a real evaluator's
//! specialised pattern matchers do), nesting data-dependent branches two
//! deep — eight distinct hard branch sites per iteration, the worst
//! prediction behaviour of the suite and the workload TME was built for.

use crate::asm::Assembler;
use crate::data::{DataBuilder, SplitMix64};
use crate::program::Program;
use multipath_isa::regs::*;

const BOARD: usize = 512; // padded 19x19 board, one byte per point

pub(crate) fn build(seed: u64) -> Program {
    let mut rng = SplitMix64::new(seed ^ 0x9009_0003);
    let mut data = DataBuilder::new(crate::DATA_BASE);
    // Cell states: 0 = empty (70%), 1 = black (15%), 2 = white (15%).
    data.byte_array(
        "board",
        (0..BOARD).map(|_| match rng.next_below(20) {
            0..=13 => 0u8,
            14..=16 => 1,
            _ => 2,
        }),
    );
    data.zeros_u64("score", 64);

    let board = data.address_of("board") as i32;
    let score = data.address_of("score") as i32;

    let mut a = Assembler::new();
    // r16=board, r17=score, r2=position, r9=eval accumulator, r20=influence
    a.li(R16, board);
    a.li(R17, score);
    a.li(R2, 0);
    a.li(R9, 0);
    a.li(R20, 0);

    a.label("outer");
    a.li(R3, 200);

    a.label("point");
    // ---- point A: territory evaluator ----
    a.andi(R4, R2, (BOARD - 1) as i16);
    a.add(R5, R16, R4);
    a.ldbu(R6, 0, R5);
    a.bne(R6, "a_occupied");
    a.addi(R4, R4, 1);
    a.andi(R4, R4, (BOARD - 1) as i16);
    a.add(R5, R16, R4);
    a.ldbu(R7, 0, R5);
    a.cmpeqi(R8, R7, 1);
    a.beq(R8, "a_white_side");
    a.addi(R9, R9, 3);
    a.br("a_join");
    a.label("a_white_side");
    a.subi(R9, R9, 3);
    a.br("a_join");
    a.label("a_occupied");
    a.cmpeqi(R8, R6, 1);
    a.beq(R8, "a_white_stone");
    a.addi(R4, R4, 20);
    a.andi(R4, R4, (BOARD - 1) as i16);
    a.add(R5, R16, R4);
    a.ldbu(R7, 0, R5);
    a.bne(R7, "a_black_bound");
    a.addi(R9, R9, 5);
    a.br("a_join");
    a.label("a_black_bound");
    a.addi(R9, R9, 1);
    a.br("a_join");
    a.label("a_white_stone");
    a.addi(R4, R4, 20);
    a.andi(R4, R4, (BOARD - 1) as i16);
    a.add(R5, R16, R4);
    a.ldbu(R7, 0, R5);
    a.bne(R7, "a_white_bound");
    a.subi(R9, R9, 5);
    a.br("a_join");
    a.label("a_white_bound");
    a.subi(R9, R9, 1);
    a.label("a_join");

    // ---- point B: influence evaluator (distinct code, different site) ----
    a.addi(R10, R2, 37);
    a.andi(R10, R10, (BOARD - 1) as i16);
    a.add(R11, R16, R10);
    a.ldbu(R12, 0, R11);
    a.cmpeqi(R13, R12, 2);
    a.bne(R13, "b_white");
    // empty or black: diagonal scan
    a.addi(R10, R10, 21);
    a.andi(R10, R10, (BOARD - 1) as i16);
    a.add(R11, R16, R10);
    a.ldbu(R14, 0, R11);
    a.add(R15, R12, R14);
    a.cmpulti(R15, R15, 2);
    a.beq(R15, "b_contested");
    a.addi(R20, R20, 2);
    a.br("b_join");
    a.label("b_contested");
    a.sub(R20, R20, R14);
    a.br("b_join");
    a.label("b_white");
    // white stone: ladder check
    a.addi(R10, R10, 19);
    a.andi(R10, R10, (BOARD - 1) as i16);
    a.add(R11, R16, R10);
    a.ldbu(R14, 0, R11);
    a.cmpeqi(R15, R14, 1);
    a.beq(R15, "b_no_ladder");
    a.slli(R14, R14, 1);
    a.sub(R20, R20, R14);
    a.br("b_join");
    a.label("b_no_ladder");
    a.subi(R20, R20, 1);
    a.label("b_join");

    // Occasionally record the running scores (biased, ~6% taken).
    a.andi(R8, R2, 15);
    a.bne(R8, "skip_store");
    a.andi(R8, R2, 63);
    a.srli(R8, R8, 4);
    a.slli(R8, R8, 3);
    a.add(R8, R17, R8);
    a.stq(R9, 0, R8);
    a.add(R9, R9, R20);
    a.label("skip_store");
    a.addi(R2, R2, 2);
    a.subi(R3, R3, 1);
    a.bne(R3, "point");
    a.br("outer");

    super::finish("go", &a, data)
}
