//! `perl` proxy: bytecode-interpreter dispatch over a mostly periodic
//! op stream.
//!
//! Personality: interpreter loops have high branch counts but high
//! predictability — the op sequence repeats, so a history-based predictor
//! learns the dispatch cascade. A 5% random substitution keeps a residue
//! of genuinely hard branches (perl shows 92% branch-miss coverage but
//! only 9% of instructions recycled in the paper: forks are rare and
//! paths are long).

use crate::asm::Assembler;
use crate::data::{DataBuilder, SplitMix64};
use crate::program::Program;
use multipath_isa::regs::*;

const OPS: usize = 1024;
const PATTERN: [u8; 12] = [0, 1, 2, 0, 1, 3, 0, 2, 1, 0, 4, 2];

pub(crate) fn build(seed: u64) -> Program {
    let mut rng = SplitMix64::new(seed ^ 0x9e71_0005);
    let mut data = DataBuilder::new(crate::DATA_BASE);
    data.byte_array(
        "ops",
        (0..OPS).map(|i| {
            if rng.chance(0.05) {
                rng.next_below(5) as u8
            } else {
                PATTERN[i % PATTERN.len()]
            }
        }),
    );
    data.byte_array("strbuf", (0..1024).map(|_| rng.next_u64() as u8));
    data.zeros_u64("stack", 64);

    let ops = data.address_of("ops") as i32;
    let strbuf = data.address_of("strbuf") as i32;
    let stack = data.address_of("stack") as i32;

    let mut a = Assembler::new();
    // r16=ops, r17=strbuf, r18=vm stack, r2=ip, r9=top of stack value,
    // r10=string cursor.
    a.li(R16, ops);
    a.li(R17, strbuf);
    a.li(R18, stack);
    a.li(R2, 0);
    a.li(R9, 0);
    a.li(R10, 0);

    a.label("outer");
    a.li(R3, 512);

    a.label("dispatch");
    a.andi(R4, R2, (OPS - 1) as i16);
    a.add(R5, R16, R4);
    a.ldbu(R6, 0, R5);
    a.bne(R6, "not_push");
    // op 0: push constant.
    a.andi(R7, R9, 63);
    a.slli(R7, R7, 3);
    a.add(R7, R18, R7);
    a.stq(R9, 0, R7);
    a.addi(R9, R9, 3);
    a.br("next");
    a.label("not_push");
    a.cmpeqi(R7, R6, 1);
    a.beq(R7, "not_add");
    // op 1: add top-of-stack.
    a.andi(R7, R9, 63);
    a.slli(R7, R7, 3);
    a.add(R7, R18, R7);
    a.ldq(R8, 0, R7);
    a.add(R9, R9, R8);
    a.br("next");
    a.label("not_add");
    a.cmpeqi(R7, R6, 2);
    a.beq(R7, "not_concat");
    // op 2: string byte op.
    a.andi(R7, R10, 1023);
    a.add(R7, R17, R7);
    a.ldbu(R8, 0, R7);
    a.xor(R9, R9, R8);
    a.stb(R9, 0, R7);
    a.addi(R10, R10, 1);
    a.br("next");
    a.label("not_concat");
    a.cmpeqi(R7, R6, 3);
    a.beq(R7, "op_misc");
    // op 3: match test — the interpreter's data-dependent branch.
    a.andi(R8, R9, 7);
    a.cmpulti(R8, R8, 1);
    a.beq(R8, "no_match");
    a.muli(R9, R9, 5);
    a.br("next");
    a.label("no_match");
    a.addi(R9, R9, 1);
    a.br("next");
    a.label("op_misc");
    // op 4: bookkeeping.
    a.srli(R9, R9, 1);
    a.xori(R9, R9, 0x2a);

    a.label("next");
    a.addi(R2, R2, 1);
    a.subi(R3, R3, 1);
    a.bne(R3, "dispatch");
    a.br("outer");

    super::finish("perl", &a, data)
}
