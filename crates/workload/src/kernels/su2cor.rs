//! `su2cor` proxy: FP vector kernel with evolving-data FP hammocks.
//!
//! Personality: quantum-physics Monte Carlo — long FP multiply/add chains
//! over vectors with data-dependent normalisation branches. The loop is
//! unrolled two ways with *different* correction paths, so two distinct
//! hard FP-compare sites are live per iteration. Branch conditions depend
//! on accumulators that evolve across outer iterations and never settle
//! into a learnable pattern; FP codes still fork usefully (78.5% miss
//! coverage and a 32% recycle rate in the paper).

use crate::asm::Assembler;
use crate::data::{DataBuilder, SplitMix64};
use crate::program::Program;
use multipath_isa::regs::*;

const VECTOR: usize = 64;

pub(crate) fn build(seed: u64) -> Program {
    let mut rng = SplitMix64::new(seed ^ 0x52c0_0006);
    let mut data = DataBuilder::new(crate::DATA_BASE);
    data.f64_array("a", (0..VECTOR).map(|_| rng.next_f64() * 2.0));
    data.f64_array("b", (0..VECTOR).map(|_| rng.next_f64() * 2.0));
    data.f64_array("c", (0..VECTOR).map(|_| rng.next_f64()));
    // consts: [0]=0.99 decay, [1]=1.0 threshold, [2]=2.0 normaliser,
    // [3]=0.7 second threshold.
    data.f64_array("consts", [0.99, 1.0, 2.0, 0.7]);

    let a_addr = data.address_of("a") as i32;
    let b_addr = data.address_of("b") as i32;
    let c_addr = data.address_of("c") as i32;
    let consts = data.address_of("consts") as i32;

    let mut a = Assembler::new();
    // r17=A, r18=B, r19=C bases; f7=decay, f8=threshold, f9=normaliser,
    // f10=second threshold.
    a.li(R17, a_addr);
    a.li(R18, b_addr);
    a.li(R19, c_addr);
    a.li(R20, consts);
    a.ldt(F7, 0, R20);
    a.ldt(F8, 8, R20);
    a.ldt(F9, 16, R20);
    a.ldt(F10, 24, R20);

    a.label("outer");
    a.mov(R4, R17);
    a.mov(R5, R18);
    a.mov(R6, R19);
    a.li(R3, (VECTOR / 2) as i32);

    a.label("inner");
    // ---- element 0: product + decay with normalisation hammock ----
    a.ldt(F1, 0, R4);
    a.ldt(F2, 0, R5);
    a.mult(F3, F1, F2);
    a.ldt(F4, 0, R6);
    a.mult(F4, F4, F7);
    a.addt(F3, F3, F4);
    a.stt(F3, 0, R6);
    a.cmptlt(R8, F3, F8);
    a.bne(R8, "small0");
    a.divt(F3, F3, F9);
    a.stt(F3, 0, R6);
    a.br("cont0");
    a.label("small0");
    a.addt(F3, F3, F4);
    a.stt(F3, 0, R6);
    a.label("cont0");

    // ---- element 1: contractive update with a different threshold site;
    // the iterate hovers around the threshold, so the branch never
    // becomes predictable ----
    a.ldt(F1, 8, R4);
    a.ldt(F2, 8, R5);
    a.subt(F5, F1, F2);
    a.ldt(F4, 8, R6);
    a.mult(F4, F4, F7);
    a.addt(F5, F5, F4);
    a.divt(F5, F5, F9); // halve: keeps the iterate bounded near zero
    a.stt(F5, 8, R6);
    a.cmptle(R8, F5, F10);
    a.bne(R8, "small1");
    a.subt(F5, F5, F10);
    a.stt(F5, 8, R6);
    a.br("cont1");
    a.label("small1");
    a.mult(F6, F2, F8);
    a.addt(F5, F5, F6);
    a.stt(F5, 8, R6);
    a.label("cont1");

    a.addi(R4, R4, 16);
    a.addi(R5, R5, 16);
    a.addi(R6, R6, 16);
    a.subi(R3, R3, 1);
    a.bne(R3, "inner");
    a.br("outer");

    super::finish("su2cor", &a, data)
}
