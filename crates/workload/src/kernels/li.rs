//! `li` proxy: recursive traversal of cons-cell lists.
//!
//! Personality: a lisp interpreter's workload is dominated by recursive
//! list walks — deep call/return chains (stressing the per-context return
//! stack), tag-dependent branches whose outcome is a property of the data,
//! and small pointer-chasing loads. The recursion is deliberately
//! non-tail (post-processing after each return) so a real stack frame is
//! live across every call.

use crate::asm::Assembler;
use crate::data::{DataBuilder, SplitMix64};
use crate::program::Program;
use multipath_isa::regs::*;

const LISTS: usize = 32;
const NODES_PER_LIST: usize = 16;
const NODE_BYTES: u64 = 16; // [0]=tagged value, [8]=cdr

pub(crate) fn build(seed: u64) -> Program {
    let mut rng = SplitMix64::new(seed ^ 0x7157_0004);
    let mut data = DataBuilder::new(crate::DATA_BASE);

    // Lay out the node arena first so addresses are known, then the heads.
    let nodes_base = crate::DATA_BASE;
    let mut node_words = Vec::with_capacity(LISTS * NODES_PER_LIST * 2);
    for list in 0..LISTS {
        for i in 0..NODES_PER_LIST {
            let node_index = list * NODES_PER_LIST + i;
            // ~25% atoms carrying a value; the rest are structural cells.
            let tagged = if rng.chance(0.25) {
                (rng.next_below(1 << 20) << 1) | 1
            } else {
                rng.next_below(1 << 20) << 1
            };
            let cdr = if i + 1 < NODES_PER_LIST {
                nodes_base + (node_index as u64 + 1) * NODE_BYTES
            } else {
                0 // nil
            };
            node_words.push(tagged);
            node_words.push(cdr);
        }
    }
    data.u64_array("nodes", node_words);
    data.u64_array(
        "heads",
        (0..LISTS).map(|l| nodes_base + (l * NODES_PER_LIST) as u64 * NODE_BYTES),
    );
    assert_eq!(data.address_of("nodes"), nodes_base);

    let heads = data.address_of("heads") as i32;

    let mut a = Assembler::new();
    // r16=heads, r30=SP, r2=list index, r9=accumulator, r4=current node.
    a.li(R16, heads);
    a.li(R30, crate::STACK_TOP as i32);
    a.li(R9, 0);
    a.br("outer");

    // sum(r4 = node): recursively folds a list into r9.
    a.label("sum");
    a.beq(R4, "leaf");
    a.subi(R30, R30, 16);
    a.stq(R26, 0, R30);
    a.stq(R4, 8, R30);
    a.ldq(R5, 0, R4); // tagged value
    a.andi(R6, R5, 1);
    a.beq(R6, "not_atom"); // data-dependent: ~25% atoms
    a.srai(R7, R5, 1);
    a.add(R9, R9, R7);
    a.br("get_cdr");
    a.label("not_atom");
    a.addi(R9, R9, 1);
    a.label("get_cdr");
    a.ldq(R4, 8, R4);
    a.jsr("sum");
    // Post-processing after the recursive call (forces real frames).
    a.ldq(R4, 8, R30);
    a.ldq(R5, 0, R4);
    a.srai(R5, R5, 2);
    a.xor(R9, R9, R5);
    a.ldq(R26, 0, R30);
    a.addi(R30, R30, 16);
    a.label("leaf");
    a.ret();

    a.label("outer");
    a.li(R2, 0);
    a.label("lists");
    a.slli(R5, R2, 3);
    a.add(R5, R16, R5);
    a.ldq(R4, 0, R5);
    a.jsr("sum");
    a.addi(R2, R2, 1);
    a.cmpeqi(R8, R2, LISTS as i16);
    a.beq(R8, "lists");
    a.br("outer");

    super::finish("li", &a, data)
}
