//! `tomcatv` proxy: streaming FP mesh relaxation.
//!
//! Personality: vectorisable mesh smoothing — long, perfectly predictable
//! inner loops of FP multiply/adds over streaming arrays, with only a rare
//! biased convergence check. The inner loop is unrolled four ways (as the
//! compiled original is), so its ~70-instruction body slightly exceeds a
//! 64-entry active list: backward-branch recycling covers it only
//! partially, matching the paper's modest (≈25%) recycle rate for
//! tomcatv. Almost no TME forking happens (3.5% miss coverage in the
//! paper).

use crate::asm::Assembler;
use crate::data::{DataBuilder, SplitMix64};
use crate::program::Program;
use multipath_isa::regs::*;

const MESH: usize = 128;
const UNROLL: usize = 4;

pub(crate) fn build(seed: u64) -> Program {
    let mut rng = SplitMix64::new(seed ^ 0x70c7_0007);
    let mut data = DataBuilder::new(crate::DATA_BASE);
    data.f64_array("x", (0..MESH + 8).map(|_| rng.next_f64() * 10.0));
    data.f64_array("y", (0..MESH + 8).map(|_| rng.next_f64() * 10.0));
    // consts: [0]=0.5, [1]=0.25, [2]=100.0 divergence guard.
    data.f64_array("consts", [0.5, 0.25, 100.0]);

    let x = data.address_of("x") as i32;
    let y = data.address_of("y") as i32;
    let consts = data.address_of("consts") as i32;

    let mut a = Assembler::new();
    a.li(R17, x);
    a.li(R18, y);
    a.li(R20, consts);
    a.ldt(F7, 0, R20); // 0.5
    a.ldt(F8, 8, R20); // 0.25
    a.ldt(F9, 16, R20); // guard

    a.label("outer");
    a.mov(R4, R17);
    a.mov(R5, R18);
    a.li(R3, (MESH / UNROLL) as i32);

    a.label("inner");
    for k in 0..UNROLL {
        let off = (k * 8) as i16;
        // X[i] = 0.5*X[i] + 0.25*X[i+1] + 0.25*Y[i]
        a.ldt(F1, off, R4);
        a.ldt(F2, off + 8, R4);
        a.ldt(F3, off, R5);
        a.mult(F4, F1, F7);
        a.mult(F5, F2, F8);
        a.addt(F4, F4, F5);
        a.mult(F5, F3, F8);
        a.addt(F4, F4, F5);
        a.stt(F4, off, R4);
        // Y[i] = 0.5*Y[i] + 0.5*X[i]'
        a.mult(F5, F3, F7);
        a.mult(F6, F4, F7);
        a.addt(F5, F5, F6);
        a.stt(F5, off, R5);
    }
    a.addi(R4, R4, (UNROLL * 8) as i16);
    a.addi(R5, R5, (UNROLL * 8) as i16);
    a.subi(R3, R3, 1);
    a.bne(R3, "inner");

    // Rare divergence check (essentially never taken: values are bounded).
    a.cmptlt(R8, F4, F9);
    a.beq(R8, "reset");
    a.br("outer");
    a.label("reset");
    // Re-seed the mesh from Y (cold path).
    a.ldt(F1, 0, R18);
    a.stt(F1, 0, R17);
    a.br("outer");

    super::finish("tomcatv", &a, data)
}
