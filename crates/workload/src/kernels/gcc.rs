//! `gcc` proxy: a token-dispatch cascade with handler calls.
//!
//! Personality: a compiler front-end reads a token stream and dispatches
//! through a compare cascade to per-token handlers, some of which call a
//! shared "emit" routine. The token distribution is skewed (frequent
//! tokens dominate) so the cascade's early branches are fairly predictable
//! while the tail is not — moderate overall accuracy, medium-length
//! hammocks, call/return traffic.

use crate::asm::Assembler;
use crate::data::{DataBuilder, SplitMix64};
use crate::program::Program;
use multipath_isa::regs::*;

const TOKENS: usize = 4096;

/// Skewed token kinds 0..6: roughly 55/20/10/6/4/3/2 percent.
fn token(rng: &mut SplitMix64) -> u8 {
    let r = rng.next_below(100);
    match r {
        0..=54 => 0,
        55..=74 => 1,
        75..=84 => 2,
        85..=90 => 3,
        91..=94 => 4,
        95..=97 => 5,
        _ => 6,
    }
}

pub(crate) fn build(seed: u64) -> Program {
    let mut rng = SplitMix64::new(seed ^ 0x6cc0_0002);
    let mut data = DataBuilder::new(crate::DATA_BASE);
    data.byte_array("tokens", (0..TOKENS).map(|_| token(&mut rng)));
    data.zeros_u64("ir", 1024);

    let tokens = data.address_of("tokens") as i32;
    let ir = data.address_of("ir") as i32;

    let mut a = Assembler::new();
    // r16=tokens, r17=ir, r2=index, r7=ir cursor, r9=accumulator
    a.li(R16, tokens);
    a.li(R17, ir);
    a.li(R30, crate::STACK_TOP as i32);
    a.li(R2, 0);
    a.li(R7, 0);
    a.li(R9, 0);
    a.br("outer");

    // emit(r4: value) — appends to the IR buffer.
    a.label("emit");
    a.andi(R5, R7, 1023);
    a.slli(R5, R5, 3);
    a.add(R5, R17, R5);
    a.stq(R4, 0, R5);
    a.addi(R7, R7, 1);
    a.ret();

    a.label("outer");
    a.li(R3, 512);

    a.label("dispatch");
    a.andi(R4, R2, (TOKENS - 1) as i16);
    a.add(R5, R16, R4);
    a.ldbu(R6, 0, R5); // token kind
                       // Compare cascade, frequent kinds first.
    a.bne(R6, "not0");
    // kind 0: identifier — hash it into the accumulator.
    a.muli(R8, R9, 33);
    a.xor(R9, R8, R6);
    a.br("next");
    a.label("not0");
    a.cmpeqi(R8, R6, 1);
    a.beq(R8, "not1");
    // kind 1: literal — emit it.
    a.add(R4, R9, R2);
    a.jsr("emit");
    a.br("next");
    a.label("not1");
    a.cmpeqi(R8, R6, 2);
    a.beq(R8, "not2");
    // kind 2: operator — fold.
    a.slli(R10, R9, 1);
    a.sub(R9, R10, R6);
    a.br("next");
    a.label("not2");
    a.cmpeqi(R8, R6, 3);
    a.beq(R8, "not3");
    // kind 3: open scope — emit marker and bump.
    a.li(R4, -1);
    a.jsr("emit");
    a.addi(R9, R9, 7);
    a.br("next");
    a.label("not3");
    a.cmpeqi(R8, R6, 4);
    a.beq(R8, "not4");
    // kind 4: close scope.
    a.srai(R9, R9, 1);
    a.br("next");
    a.label("not4");
    a.cmpeqi(R8, R6, 5);
    a.beq(R8, "rare");
    // kind 5: keyword.
    a.xori(R9, R9, 0x55);
    a.br("next");
    a.label("rare");
    // kind 6: error path — longer fix-up sequence.
    a.mov(R4, R9);
    a.jsr("emit");
    a.li(R9, 0);
    a.addi(R9, R9, 13);
    a.muli(R9, R9, 3);

    a.label("next");
    a.addi(R2, R2, 1);
    a.subi(R3, R3, 1);
    a.bne(R3, "dispatch");
    a.br("outer");

    super::finish("gcc", &a, data)
}
