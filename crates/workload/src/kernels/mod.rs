//! The eight SPEC95-proxy kernels.
//!
//! Each kernel is a hand-written program in the simulator's ISA whose
//! control-flow personality is modelled on one of the paper's benchmarks
//! (Section 4: compress, gcc, go, li, perl, su2cor, tomcatv, vortex). The
//! properties that matter for TME and recycling are:
//!
//! * **Hard (data-dependent) branches** — loaded from seeded pseudo-random
//!   data, so no history predictor can learn them. These are what the
//!   confidence estimator flags and TME forks on.
//! * **Hammocks** — if/else diamonds whose two sides re-merge: the shape
//!   that makes an alternate path's trace recyclable the next time the
//!   branch goes the other way.
//! * **Loops smaller than an active list** — the shape backward-branch
//!   (primary-to-primary) recycling exploits.
//! * **Calls/returns, FP mix, and footprint** — per-benchmark flavour.
//!
//! All kernels loop forever; the simulator stops at a committed-instruction
//! budget. Construction is deterministic in the seed.

mod compress;
mod gcc;
mod go;
mod li;
mod perl;
mod su2cor;
mod tomcatv;
mod vortex;

use crate::program::Program;

/// The eight benchmark proxies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Benchmark {
    /// LZW-style hash/dictionary loop; short unpredictable hammocks, tight
    /// loop — the paper's highest recycle and reuse rates.
    Compress,
    /// Token-dispatch cascade with handler calls; moderate predictability.
    Gcc,
    /// Board evaluation with nested data-dependent conditionals; the worst
    /// branch behaviour of the suite.
    Go,
    /// Recursive list traversal; call/return heavy with tag-dependent
    /// branches.
    Li,
    /// Bytecode-interpreter dispatch over a mostly periodic op stream; high
    /// prediction accuracy.
    Perl,
    /// FP vector kernel with an unpredictable FP-compare hammock.
    Su2cor,
    /// Streaming FP mesh relaxation; near-perfect prediction, loop-dominated.
    Tomcatv,
    /// Object-graph pointer chasing with type dispatch and a large
    /// footprint.
    Vortex,
}

impl Benchmark {
    /// All benchmarks, in the paper's listing order.
    pub const ALL: [Benchmark; 8] = [
        Benchmark::Compress,
        Benchmark::Gcc,
        Benchmark::Go,
        Benchmark::Li,
        Benchmark::Perl,
        Benchmark::Su2cor,
        Benchmark::Tomcatv,
        Benchmark::Vortex,
    ];

    /// The benchmark's (paper) name.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Compress => "compress",
            Benchmark::Gcc => "gcc",
            Benchmark::Go => "go",
            Benchmark::Li => "li",
            Benchmark::Perl => "perl",
            Benchmark::Su2cor => "su2cor",
            Benchmark::Tomcatv => "tomcatv",
            Benchmark::Vortex => "vortex",
        }
    }

    /// Whether the original benchmark is floating-point (su2cor, tomcatv).
    pub fn is_fp(self) -> bool {
        matches!(self, Benchmark::Su2cor | Benchmark::Tomcatv)
    }

    /// Parses a benchmark name.
    pub fn from_name(name: &str) -> Option<Benchmark> {
        Benchmark::ALL.iter().copied().find(|b| b.name() == name)
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Builds the proxy program for `bench`, deterministic in `seed`.
pub fn build(bench: Benchmark, seed: u64) -> Program {
    match bench {
        Benchmark::Compress => compress::build(seed),
        Benchmark::Gcc => gcc::build(seed),
        Benchmark::Go => go::build(seed),
        Benchmark::Li => li::build(seed),
        Benchmark::Perl => perl::build(seed),
        Benchmark::Su2cor => su2cor::build(seed),
        Benchmark::Tomcatv => tomcatv::build(seed),
        Benchmark::Vortex => vortex::build(seed),
    }
}

/// Shared finishing step for kernel builders.
pub(crate) fn finish(
    name: &str,
    asm: &crate::asm::Assembler,
    data: crate::data::DataBuilder,
) -> Program {
    let text = asm
        .assemble(crate::TEXT_BASE)
        .unwrap_or_else(|e| panic!("kernel `{name}` failed to assemble: {e}"));
    Program {
        name: name.to_owned(),
        text_base: crate::TEXT_BASE,
        text,
        data: vec![data.build()],
        entry: crate::TEXT_BASE,
        initial_sp: crate::STACK_TOP,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_assemble() {
        for b in Benchmark::ALL {
            let p = build(b, 1);
            assert!(!p.text.is_empty(), "{b} has no text");
            assert_eq!(p.entry, p.text_base);
            assert!(!p.data.is_empty(), "{b} has no data");
            // Every word decodes.
            for (i, &w) in p.text.iter().enumerate() {
                assert!(
                    multipath_isa::Inst::decode(w).is_some(),
                    "{b} word {i} undecodable"
                );
            }
        }
    }

    #[test]
    fn construction_is_deterministic() {
        for b in Benchmark::ALL {
            assert_eq!(build(b, 7), build(b, 7), "{b} not deterministic");
        }
    }

    #[test]
    fn seeds_change_data_not_structure() {
        for b in Benchmark::ALL {
            let a = build(b, 1);
            let c = build(b, 2);
            assert_eq!(a.text, c.text, "{b} text should not depend on seed");
            assert_ne!(a.data, c.data, "{b} data should depend on seed");
        }
    }

    #[test]
    fn names_round_trip() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::from_name(b.name()), Some(b));
        }
        assert_eq!(Benchmark::from_name("nope"), None);
    }

    #[test]
    fn fp_classification() {
        assert!(Benchmark::Su2cor.is_fp());
        assert!(Benchmark::Tomcatv.is_fp());
        assert!(!Benchmark::Gcc.is_fp());
    }
}
