//! `compress` proxy: an LZW-style hash/dictionary loop.
//!
//! Personality: a dictionary compressor's main loop — per input byte, a
//! hash probe with a data-dependent hit/miss hammock, a chain-extension
//! check, and periodic output flushing. The loop body processes two input
//! bytes (≈55 instructions) with four distinct data-dependent branch
//! sites of differing bias, so several low-confidence branch sites are
//! live at once, as in the real program. Short hammocks that re-merge
//! within a few instructions make this the suite's best recycling and
//! reuse candidate (paper Table 1).

use crate::asm::Assembler;
use crate::data::{DataBuilder, SplitMix64};
use crate::program::Program;
use multipath_isa::regs::*;

const INPUT_LEN: usize = 4096;
const TABLE_SLOTS: usize = 1024;

pub(crate) fn build(seed: u64) -> Program {
    let mut rng = SplitMix64::new(seed ^ 0xc0c0_0001);
    let mut data = DataBuilder::new(crate::DATA_BASE);
    data.byte_array("input", (0..INPUT_LEN).map(|_| rng.next_u64() as u8));
    data.u64_array("table", (0..TABLE_SLOTS).map(|_| rng.next_u64()));
    data.zeros_u64("output", 512);

    let input = data.address_of("input") as i32;
    let table = data.address_of("table") as i32;
    let output = data.address_of("output") as i32;

    let mut a = Assembler::new();
    // r16=input, r17=table, r18=output, r2=index, r7=prev code,
    // r13=emit count, r20=checksum.
    a.li(R16, input);
    a.li(R17, table);
    a.li(R18, output);
    a.li(R2, 0);
    a.li(R7, 0);
    a.li(R13, 0);
    a.li(R20, 0);

    a.label("outer");
    a.li(R3, 128); // inner trip count (predictable back edge)

    a.label("inner");
    // ---- byte 1: hash probe with hit/miss hammock (~35% taken) ----
    a.andi(R4, R2, 4095);
    a.add(R5, R16, R4);
    a.ldbu(R6, 0, R5);
    a.muli(R8, R6, 31);
    a.add(R8, R8, R7);
    a.andi(R8, R8, (TABLE_SLOTS - 1) as i16);
    a.slli(R9, R8, 3);
    a.add(R9, R17, R9);
    a.ldq(R10, 0, R9);
    a.andi(R11, R10, 255);
    a.cmpulti(R12, R11, 50);
    a.bne(R12, "hit1");
    // miss: install a new code, emit prev, reset chain.
    a.xor(R14, R10, R6);
    a.stq(R14, 0, R9);
    a.andi(R15, R13, 511);
    a.slli(R15, R15, 3);
    a.add(R15, R18, R15);
    a.stq(R7, 0, R15);
    a.addi(R13, R13, 1);
    a.mov(R7, R6);
    a.br("join1");
    a.label("hit1");
    // hit: extend the chain.
    a.srli(R14, R10, 8);
    a.add(R7, R14, R6);
    a.andi(R7, R7, 4095);
    a.label("join1");

    // ---- byte 2: second probe site with different bias (~55% taken) ----
    a.addi(R4, R4, 1);
    a.andi(R4, R4, 4095);
    a.add(R5, R16, R4);
    a.ldbu(R6, 0, R5);
    a.slli(R8, R7, 2);
    a.xor(R8, R8, R6);
    a.andi(R8, R8, (TABLE_SLOTS - 1) as i16);
    a.slli(R9, R8, 3);
    a.add(R9, R17, R9);
    a.ldq(R10, 0, R9);
    a.srli(R11, R10, 16);
    a.andi(R11, R11, 255);
    a.cmpulti(R12, R11, 210);
    a.beq(R12, "miss2");
    // hit: fold into the running chain.
    a.add(R7, R7, R11);
    a.andi(R7, R7, 4095);
    a.xor(R20, R20, R10);
    a.br("join2");
    a.label("miss2");
    a.addi(R14, R10, 1);
    a.stq(R14, 0, R9);
    a.add(R20, R20, R6);
    a.label("join2");

    // ---- code-width overflow check (~12% taken) ----
    a.andi(R14, R10, 15);
    a.cmpulti(R15, R14, 2);
    a.beq(R15, "no_flush");
    a.li(R7, 0);
    a.addi(R13, R13, 1);
    a.label("no_flush");

    // ---- ratio check: occasionally restart the dictionary (~6%) ----
    a.andi(R14, R20, 15);
    a.bne(R14, "no_reset");
    a.andi(R15, R20, 7);
    a.cmpulti(R15, R15, 3);
    a.beq(R15, "no_reset");
    a.srli(R20, R20, 1);
    a.label("no_reset");

    a.addi(R2, R2, 2);
    a.subi(R3, R3, 1);
    a.bne(R3, "inner");
    a.br("outer");

    super::finish("compress", &a, data)
}
