//! `vortex` proxy: object-graph pointer chasing with type dispatch.
//!
//! Personality: an object-oriented database traverses a large object graph
//! — dependent loads with a 64KB footprint (real L1 misses), skewed
//! type-dispatch cascades (well-predicted but not perfectly), and method
//! calls for the common types. The loop visits two independent cursors per
//! iteration (a transaction touching multiple collections), giving several
//! distinct dispatch sites. Prediction accuracy is high; the value of
//! recycling here is conserving fetch bandwidth.

use crate::asm::Assembler;
use crate::data::{DataBuilder, SplitMix64};
use crate::program::Program;
use multipath_isa::regs::*;

const OBJECTS: usize = 2048;
const OBJ_BYTES: u64 = 32; // [0]=type, [8]=next, [16]=field, [24]=alt next

pub(crate) fn build(seed: u64) -> Program {
    let mut rng = SplitMix64::new(seed ^ 0x0b7e_0008);
    let mut data = DataBuilder::new(crate::DATA_BASE);
    let base = crate::DATA_BASE;
    let mut words = Vec::with_capacity(OBJECTS * 4);
    for _ in 0..OBJECTS {
        // Types skewed 80/12/5/3.
        let ty = match rng.next_below(100) {
            0..=79 => 0u64,
            80..=91 => 1,
            92..=96 => 2,
            _ => 3,
        };
        let next = base + rng.next_below(OBJECTS as u64) * OBJ_BYTES;
        let alt = base + rng.next_below(OBJECTS as u64) * OBJ_BYTES;
        words.push(ty);
        words.push(next);
        words.push(rng.next_u64() >> 3);
        words.push(alt);
    }
    data.u64_array("objects", words);
    assert_eq!(data.address_of("objects"), base);

    let objects = base as i32;

    let mut a = Assembler::new();
    // r16=graph base, r30=SP, r4=cursor A, r10=cursor B, r9=accumulator.
    a.li(R16, objects);
    a.li(R30, crate::STACK_TOP as i32);
    a.li(R9, 0);
    a.br("outer");

    // method_touch(r4 = object): read-modify-write the field.
    a.label("method_touch");
    a.ldq(R5, 16, R4);
    a.addi(R5, R5, 1);
    a.stq(R5, 16, R4);
    a.add(R9, R9, R5);
    a.ret();

    // method_fold(r4 = object): fold the field into the accumulator.
    a.label("method_fold");
    a.ldq(R5, 16, R4);
    a.xor(R9, R9, R5);
    a.srli(R5, R5, 7);
    a.add(R9, R9, R5);
    a.ret();

    a.label("outer");
    a.mov(R4, R16); // cursor A restarts at object 0
    a.addi(R10, R16, 0x40); // cursor B starts two objects in
    a.li(R3, 512);

    a.label("chase");
    // ---- cursor A: full dispatch cascade ----
    a.ldq(R6, 0, R4);
    a.bne(R6, "a_not_t0");
    a.ldq(R7, 16, R4);
    a.add(R9, R9, R7);
    a.br("a_advance");
    a.label("a_not_t0");
    a.cmpeqi(R7, R6, 1);
    a.beq(R7, "a_not_t1");
    a.jsr("method_touch");
    a.br("a_advance");
    a.label("a_not_t1");
    a.cmpeqi(R7, R6, 2);
    a.beq(R7, "a_rare");
    a.jsr("method_fold");
    a.br("a_advance");
    a.label("a_rare");
    a.ldq(R7, 16, R4);
    a.slli(R7, R7, 1);
    a.stq(R7, 16, R4);
    a.subi(R9, R9, 3);
    a.label("a_advance");
    a.ldq(R4, 8, R4); // dependent load: follow the primary edge

    // ---- cursor B: index-maintenance dispatch (distinct sites) ----
    a.ldq(R12, 0, R10);
    a.cmpeqi(R13, R12, 0);
    a.bne(R13, "b_base");
    a.cmpeqi(R13, R12, 1);
    a.beq(R13, "b_other");
    // type 1: reindex
    a.ldq(R14, 16, R10);
    a.srli(R15, R14, 3);
    a.xor(R9, R9, R15);
    a.br("b_advance");
    a.label("b_other");
    // types 2/3: checksum walk
    a.ldq(R14, 16, R10);
    a.add(R9, R9, R14);
    a.andi(R15, R14, 7);
    a.cmpulti(R15, R15, 3);
    a.beq(R15, "b_advance");
    a.subi(R9, R9, 1);
    a.br("b_advance");
    a.label("b_base");
    // type 0: cheap tally
    a.addi(R9, R9, 2);
    a.label("b_advance");
    a.ldq(R10, 24, R10); // follow the alternate edge

    a.subi(R3, R3, 1);
    a.bne(R3, "chase");
    a.br("outer");

    super::finish("vortex", &a, data)
}
