//! Assembled program images.

use multipath_mem::Memory;

/// One data segment: bytes at an absolute address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataSegment {
    /// Absolute base address.
    pub base: u64,
    /// Initial contents.
    pub bytes: Vec<u8>,
}

/// An assembled, loadable program.
///
/// Produced by the kernels in [`crate::kernels`]; consumed by the
/// simulator, which loads it into a fresh address space and starts a
/// primary thread at [`Program::entry`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Human-readable name (e.g. `"compress"`).
    pub name: String,
    /// Address of `text[0]`.
    pub text_base: u64,
    /// Encoded instruction words.
    pub text: Vec<u32>,
    /// Initialised data segments.
    pub data: Vec<DataSegment>,
    /// Initial program counter.
    pub entry: u64,
    /// Initial stack pointer.
    pub initial_sp: u64,
}

impl Program {
    /// Loads text and data into an address space.
    pub fn load_into(&self, mem: &mut Memory) {
        for (i, &word) in self.text.iter().enumerate() {
            mem.write_u32(self.text_base + i as u64 * multipath_isa::INST_BYTES, word);
        }
        for seg in &self.data {
            mem.write_bytes(seg.base, &seg.bytes);
        }
    }

    /// The address one past the last text word.
    pub fn text_end(&self) -> u64 {
        self.text_base + self.text.len() as u64 * multipath_isa::INST_BYTES
    }

    /// Disassembles the whole text segment (debugging aid).
    pub fn listing(&self) -> String {
        multipath_isa::disasm::listing(self.text_base, &self.text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multipath_isa::Inst;

    fn tiny() -> Program {
        Program {
            name: "tiny".to_owned(),
            text_base: 0x1_0000,
            text: vec![Inst::nop().encode(), Inst::halt().encode()],
            data: vec![DataSegment {
                base: 0x10_0000,
                bytes: vec![1, 2, 3],
            }],
            entry: 0x1_0000,
            initial_sp: 0x7f_0000,
        }
    }

    #[test]
    fn load_places_text_and_data() {
        let p = tiny();
        let mut mem = Memory::new();
        p.load_into(&mut mem);
        assert_eq!(Inst::decode(mem.read_u32(0x1_0000)), Some(Inst::nop()));
        assert_eq!(Inst::decode(mem.read_u32(0x1_0004)), Some(Inst::halt()));
        assert_eq!(mem.read_u8(0x10_0000), 1);
        assert_eq!(mem.read_u8(0x10_0002), 3);
    }

    #[test]
    fn text_end() {
        assert_eq!(tiny().text_end(), 0x1_0008);
    }

    #[test]
    fn listing_mentions_entry() {
        let text = tiny().listing();
        assert!(text.contains("0x00010000: nop"));
    }
}
