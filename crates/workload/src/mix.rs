//! Workload composition for single- and multi-program experiments.
//!
//! The paper's multi-program results average "eight permutations of the
//! benchmarks that weight each of the benchmarks evenly" (Section 4).
//! [`rotations`] reproduces that: the i-th mix takes `n` consecutive
//! benchmarks starting at position i of the canonical order, wrapping —
//! eight mixes in which every benchmark appears exactly `n` times.

use crate::kernels::{self, Benchmark};
use crate::program::Program;

/// The eight evenly-weighted mixes of `n` programs each.
///
/// # Examples
///
/// ```
/// let mixes = multipath_workload::mix::rotations(2);
/// assert_eq!(mixes.len(), 8);
/// assert_eq!(mixes[0].len(), 2);
/// ```
///
/// # Panics
///
/// Panics if `n` is zero or greater than 8.
pub fn rotations(n: usize) -> Vec<Vec<Benchmark>> {
    assert!((1..=8).contains(&n), "mixes hold 1..=8 programs");
    (0..Benchmark::ALL.len())
        .map(|start| {
            (0..n)
                .map(|k| Benchmark::ALL[(start + k) % Benchmark::ALL.len()])
                .collect()
        })
        .collect()
}

/// Builds the programs for one mix. Co-scheduled copies of the same
/// benchmark get distinct seeds so their data (and thus their paths)
/// differ, as distinct processes would.
pub fn programs(mix: &[Benchmark], seed: u64) -> Vec<Program> {
    mix.iter()
        .enumerate()
        .map(|(i, &b)| kernels::build(b, seed.wrapping_add(i as u64 * 0x9e37)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotations_weight_evenly() {
        for n in [1, 2, 4] {
            let mixes = rotations(n);
            assert_eq!(mixes.len(), 8);
            let mut counts = std::collections::HashMap::new();
            for mix in &mixes {
                assert_eq!(mix.len(), n);
                for &b in mix {
                    *counts.entry(b).or_insert(0usize) += 1;
                }
            }
            for b in Benchmark::ALL {
                assert_eq!(counts[&b], n, "{b} unevenly weighted at n={n}");
            }
        }
    }

    #[test]
    fn single_program_mixes_cover_all_benchmarks() {
        let mixes = rotations(1);
        let got: Vec<Benchmark> = mixes.iter().map(|m| m[0]).collect();
        assert_eq!(got, Benchmark::ALL.to_vec());
    }

    #[test]
    fn co_scheduled_duplicates_get_distinct_data() {
        let progs = programs(&[Benchmark::Gcc, Benchmark::Gcc], 5);
        assert_eq!(progs[0].text, progs[1].text);
        assert_ne!(progs[0].data, progs[1].data);
    }

    #[test]
    #[should_panic(expected = "1..=8")]
    fn oversized_mix_rejected() {
        rotations(9);
    }
}
