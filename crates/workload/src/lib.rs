//! Workloads for the `multipath` simulator.
//!
//! The HPCA'99 paper evaluated eight SPEC95 benchmarks compiled for Alpha.
//! SPEC95 binaries (and an Alpha toolchain) are not reproducible here, so
//! this crate provides the substitution documented in `DESIGN.md`: eight
//! hand-written kernels in the simulator's own ISA whose *control-flow
//! personality* is modelled on the corresponding benchmark — branch
//! predictability, hammock density (fork/merge structure), loop sizes, call
//! depth, floating-point mix, and memory footprint. Recycling and TME
//! behaviour depend on exactly those properties.
//!
//! * [`asm::Assembler`] — a label-based assembler DSL used to write kernels.
//! * [`Program`] — an assembled program image (text + data + entry point).
//! * [`kernels`] — the eight SPEC95-proxy kernels.
//! * [`mix`] — single- and multi-program workload composition, including the
//!   paper's "eight permutations weighting each benchmark evenly".
//!
//! # Examples
//!
//! ```
//! use multipath_workload::{kernels, Benchmark};
//!
//! let program = kernels::build(Benchmark::Compress, 42);
//! assert!(program.text.len() > 10);
//! assert_eq!(program.entry, program.text_base);
//! ```

pub mod asm;
pub mod data;
pub mod kernels;
pub mod micro;
pub mod mix;
pub mod program;

pub use asm::{AsmError, Assembler};
pub use data::{DataBuilder, SplitMix64};
pub use kernels::Benchmark;
pub use program::Program;

/// Default base address for program text.
pub const TEXT_BASE: u64 = 0x1_0000;
/// Default base address for the data segment.
pub const DATA_BASE: u64 = 0x10_0000;
/// Initial stack pointer (stacks grow down).
pub const STACK_TOP: u64 = 0x7f_0000;
