//! `multipath-cli` — argument parsing for the `multipath` binary.
//!
//! Parsing lives in a library (separate from `main.rs`) so that other
//! code can validate command lines without executing them: the docs
//! suite parses every `$ multipath ...` invocation found in the
//! repository's markdown through [`parse_invocation`], which guarantees
//! documented commands cannot rot silently.
//!
//! Parsers are pure: they touch no files, print nothing, and report
//! problems as `Err(String)`. Name → value resolution for features,
//! machines, and policies is delegated to `multipath-core`
//! ([`Features::from_name`], [`SimConfig::from_machine_name`],
//! [`AltPolicy::from_label`]) so the CLI, the serving API, and the docs
//! all share one vocabulary.

use multipath_core::{AltPolicy, EventFilter, Features, SimConfig};
use multipath_serve::ServeConfig;
use multipath_workload::Benchmark;

/// The figure names `multipath figures` accepts, in render order.
pub const FIGURES: [&str; 6] = ["fig3", "fig4", "fig5", "fig6", "table1", "explain"];

/// The usage text printed on any parse error.
pub const USAGE: &str = "usage:\n  multipath run [OPTIONS] <BENCH>...\n  \
    multipath trace [OPTIONS] <BENCH>...\n  \
    multipath explain [OPTIONS] <BENCH>...\n  \
    multipath compare [OPTIONS] <BENCH>...\n  \
    multipath figures [fig3|fig4|fig5|fig6|table1|explain]...\n  \
    multipath serve [SERVE OPTIONS]\n  \
    multipath list\n  multipath disasm <BENCH>\n\noptions:\n  \
    --features smt|tme|rec|rec-ru|rec-rs|rec-rs-ru\n  \
    --machine big.2.16|big.1.8|small.2.8|small.1.8\n  --policy stop-N|fetch-N|nostop-N\n  \
    --commits N   --seed N\n\ntrace options:\n  \
    --interval N   --events LIST   --out PATH   --stats-out PATH\n  \
    --format json|csv   --timeline N   --print-events N\n\nexplain options:\n  \
    --top N   --json-out PATH   --report-out PATH   --dot-out PATH   --tree\n\n\
    serve options:\n  \
    --addr HOST:PORT (default 127.0.0.1:8273)   --workers N (default: all cores)\n  \
    --queue N (default 64)   --cache-mb N (default 64)\n\n\
    environment (figures):\n  \
    MULTIPATH_THREADS=N   sweep worker count (default: all cores)\n  \
    MULTIPATH_BUDGET=quick   smoke-sized sweep\n  MP_FORMAT=csv   CSV output\n";

/// Workload options shared by `run`, `trace`, `explain`, and `compare`.
#[derive(Debug, Clone)]
pub struct Options {
    /// Feature set (default `rec-rs-ru`).
    pub features: Features,
    /// Machine geometry (default `big.2.16`).
    pub machine: SimConfig,
    /// Alternate-path fetch policy override, if given.
    pub policy: Option<AltPolicy>,
    /// Committed instructions per program (default 30000).
    pub commits: u64,
    /// Workload seed (default 1).
    pub seed: u64,
    /// The kernels to co-schedule (at least one).
    pub benches: Vec<Benchmark>,
}

/// `multipath trace`-specific options.
#[derive(Debug, Clone)]
pub struct TraceOptions {
    /// Time-series interval width in cycles (default 100).
    pub interval: u64,
    /// Event filter (default: all events).
    pub filter: EventFilter,
    /// Perfetto/Chrome-trace output path.
    pub out: String,
    /// Stats-document output path.
    pub stats_out: String,
    /// Emit interval CSV instead of the stats JSON document.
    pub csv: bool,
    /// Also print a text timeline of the last N cycles.
    pub timeline: Option<u64>,
    /// Dump the last N events as text.
    pub print_events: Option<usize>,
}

/// `multipath explain`-specific options.
#[derive(Debug, Clone)]
pub struct ExplainOptions {
    /// Rows per attribution table (default 10).
    pub top: usize,
    /// `multipath-explain/v1` output path.
    pub json_out: String,
    /// Also write the markdown report here.
    pub report_out: Option<String>,
    /// Write the path DAG as Graphviz DOT here.
    pub dot_out: Option<String>,
    /// Print the ASCII path tree after the report.
    pub tree: bool,
}

/// `multipath serve` options, resolved into a ready [`ServeConfig`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// The server configuration to bind with.
    pub config: ServeConfig,
}

/// One fully parsed `multipath` command line.
#[derive(Debug, Clone)]
pub enum Invocation {
    /// `multipath run` — simulate one workload, print the summary line.
    Run(Options),
    /// `multipath trace` — run with probes, write trace + stats files.
    Trace(TraceOptions, Options),
    /// `multipath explain` — attribution report + path tree.
    Explain(ExplainOptions, Options),
    /// `multipath compare` — all six feature configurations side by side.
    Compare(Options),
    /// `multipath figures` — regenerate the named paper figures.
    Figures(Vec<&'static str>),
    /// `multipath serve` — run the persistent simulation service.
    Serve(ServeOptions),
    /// `multipath list` — list benchmarks, machines, policies.
    List,
    /// `multipath disasm` — disassemble one kernel.
    Disasm(Benchmark),
}

/// Parses a full argument vector (without the program name).
pub fn parse_invocation(args: &[String]) -> Result<Invocation, String> {
    let (cmd, rest) = args
        .split_first()
        .ok_or_else(|| "missing command".to_owned())?;
    match cmd.as_str() {
        "run" => Ok(Invocation::Run(parse_options(rest)?)),
        "trace" => {
            let (topts, rest) = parse_trace_options(rest)?;
            Ok(Invocation::Trace(topts, parse_options(&rest)?))
        }
        "explain" => {
            let (eopts, rest) = parse_explain_options(rest)?;
            Ok(Invocation::Explain(eopts, parse_options(&rest)?))
        }
        "compare" => Ok(Invocation::Compare(parse_options(rest)?)),
        "figures" => Ok(Invocation::Figures(parse_figures(rest)?)),
        "serve" => Ok(Invocation::Serve(parse_serve_options(rest)?)),
        "list" => {
            require_no_args("list", rest)?;
            Ok(Invocation::List)
        }
        "disasm" => {
            let name = rest
                .first()
                .ok_or_else(|| "disasm needs a benchmark name".to_owned())?;
            if rest.len() > 1 {
                return Err(format!("disasm takes one benchmark, got {}", rest.len()));
            }
            let bench = Benchmark::from_name(name)
                .ok_or_else(|| format!("unknown benchmark '{name}' (see `multipath list`)"))?;
            Ok(Invocation::Disasm(bench))
        }
        other => Err(format!("unknown command '{other}'")),
    }
}

/// Parses the shared workload options (everything after the subcommand
/// for `run`/`compare`; the remainder for `trace`/`explain`).
pub fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        features: Features::rec_rs_ru(),
        machine: SimConfig::big_2_16(),
        policy: None,
        commits: 30_000,
        seed: 1,
        benches: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--features" => {
                let v = flag_value(&mut it, "--features")?;
                opts.features =
                    Features::from_name(v).ok_or_else(|| format!("unknown features '{v}'"))?;
            }
            "--machine" => {
                let v = flag_value(&mut it, "--machine")?;
                opts.machine = SimConfig::from_machine_name(v)
                    .ok_or_else(|| format!("unknown machine '{v}'"))?;
            }
            "--policy" => {
                let v = flag_value(&mut it, "--policy")?;
                opts.policy =
                    Some(AltPolicy::from_label(v).ok_or_else(|| format!("unknown policy '{v}'"))?);
            }
            "--commits" => opts.commits = parse_number(flag_value(&mut it, "--commits")?)?,
            "--seed" => opts.seed = parse_number(flag_value(&mut it, "--seed")?)?,
            name => match Benchmark::from_name(name) {
                Some(b) => opts.benches.push(b),
                None => {
                    return Err(format!(
                        "unknown benchmark or option '{name}' (see `multipath list`)"
                    ))
                }
            },
        }
    }
    if opts.benches.is_empty() {
        return Err("no benchmarks given (see `multipath list`)".to_owned());
    }
    if opts.benches.len() > opts.machine.contexts {
        return Err(format!(
            "{} programs exceed the machine's {} hardware contexts",
            opts.benches.len(),
            opts.machine.contexts
        ));
    }
    Ok(opts)
}

/// Splits the trace-specific flags off `args`, returning the remainder
/// (which parses as ordinary run options).
pub fn parse_trace_options(args: &[String]) -> Result<(TraceOptions, Vec<String>), String> {
    let mut topts = TraceOptions {
        interval: 100,
        filter: EventFilter::all(),
        out: "multipath-trace.json".to_owned(),
        stats_out: "multipath-stats.json".to_owned(),
        csv: false,
        timeline: None,
        print_events: None,
    };
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--interval" => topts.interval = parse_number(flag_value(&mut it, "--interval")?)?,
            "--events" => {
                topts.filter = EventFilter::parse(flag_value(&mut it, "--events")?)?;
            }
            "--out" => topts.out = flag_value(&mut it, "--out")?.to_owned(),
            "--stats-out" => topts.stats_out = flag_value(&mut it, "--stats-out")?.to_owned(),
            "--format" => {
                topts.csv = match flag_value(&mut it, "--format")? {
                    "csv" => true,
                    "json" => false,
                    other => {
                        return Err(format!(
                            "unknown stats format '{other}' (expected json or csv)"
                        ))
                    }
                }
            }
            "--timeline" => {
                topts.timeline = Some(parse_number(flag_value(&mut it, "--timeline")?)?)
            }
            "--print-events" => {
                topts.print_events = Some(parse_number(flag_value(&mut it, "--print-events")?)?)
            }
            _ => rest.push(arg.clone()),
        }
    }
    Ok((topts, rest))
}

/// Splits the explain-specific flags off `args`, returning the remainder
/// (which parses as ordinary run options).
pub fn parse_explain_options(args: &[String]) -> Result<(ExplainOptions, Vec<String>), String> {
    let mut eopts = ExplainOptions {
        top: 10,
        json_out: "multipath-explain.json".to_owned(),
        report_out: None,
        dot_out: None,
        tree: false,
    };
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--top" => eopts.top = parse_number(flag_value(&mut it, "--top")?)?,
            "--json-out" => eopts.json_out = flag_value(&mut it, "--json-out")?.to_owned(),
            "--report-out" => {
                eopts.report_out = Some(flag_value(&mut it, "--report-out")?.to_owned())
            }
            "--dot-out" => eopts.dot_out = Some(flag_value(&mut it, "--dot-out")?.to_owned()),
            "--tree" => eopts.tree = true,
            _ => rest.push(arg.clone()),
        }
    }
    Ok((eopts, rest))
}

/// Validates figure names against [`FIGURES`]; no names means all.
pub fn parse_figures(args: &[String]) -> Result<Vec<&'static str>, String> {
    if args.is_empty() {
        return Ok(FIGURES.to_vec());
    }
    args.iter()
        .map(|a| {
            FIGURES
                .iter()
                .find(|&&f| f == a.as_str())
                .copied()
                .ok_or_else(|| {
                    format!(
                        "unknown figure '{a}' (expected one of {})",
                        FIGURES.join(" ")
                    )
                })
        })
        .collect()
}

/// Parses the `multipath serve` flags into a [`ServeConfig`].
pub fn parse_serve_options(args: &[String]) -> Result<ServeOptions, String> {
    let mut config = ServeConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => config.addr = flag_value(&mut it, "--addr")?.to_owned(),
            "--workers" => config.workers = parse_number(flag_value(&mut it, "--workers")?)?,
            "--queue" => {
                config.queue = parse_number(flag_value(&mut it, "--queue")?)?;
                if config.queue == 0 {
                    return Err("--queue must be positive".to_owned());
                }
            }
            "--cache-mb" => {
                let mb: usize = parse_number(flag_value(&mut it, "--cache-mb")?)?;
                config.cache_bytes = mb << 20;
            }
            other => return Err(format!("unknown serve option '{other}'")),
        }
    }
    Ok(ServeOptions { config })
}

fn flag_value<'a>(it: &mut std::slice::Iter<'a, String>, flag: &str) -> Result<&'a str, String> {
    it.next()
        .map(String::as_str)
        .ok_or_else(|| format!("{flag} needs a value"))
}

fn parse_number<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad number '{s}'"))
}

fn require_no_args(cmd: &str, rest: &[String]) -> Result<(), String> {
    if rest.is_empty() {
        Ok(())
    } else {
        Err(format!("{cmd} takes no arguments"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(line: &str) -> Vec<String> {
        line.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn parses_every_subcommand() {
        assert!(matches!(
            parse_invocation(&argv("run compress gcc --features rec --commits 500")),
            Ok(Invocation::Run(o)) if o.benches.len() == 2 && o.commits == 500
        ));
        assert!(matches!(
            parse_invocation(&argv("trace compress --interval 50 --stats-out s.json")),
            Ok(Invocation::Trace(t, o)) if t.interval == 50 && o.benches.len() == 1
        ));
        assert!(matches!(
            parse_invocation(&argv("explain compress --top 3 --tree")),
            Ok(Invocation::Explain(e, _)) if e.top == 3 && e.tree
        ));
        assert!(matches!(
            parse_invocation(&argv("compare li go")),
            Ok(Invocation::Compare(_))
        ));
        assert!(matches!(
            parse_invocation(&argv("figures fig3 table1")),
            Ok(Invocation::Figures(f)) if f == vec!["fig3", "table1"]
        ));
        assert!(matches!(
            parse_invocation(&argv("figures")),
            Ok(Invocation::Figures(f)) if f.len() == FIGURES.len()
        ));
        assert!(matches!(
            parse_invocation(&argv("list")),
            Ok(Invocation::List)
        ));
        assert!(matches!(
            parse_invocation(&argv("disasm compress")),
            Ok(Invocation::Disasm(b)) if b.name() == "compress"
        ));
        assert!(matches!(
            parse_invocation(&argv("serve --addr 127.0.0.1:0 --workers 2 --queue 8 --cache-mb 16")),
            Ok(Invocation::Serve(s))
                if s.config.addr == "127.0.0.1:0"
                    && s.config.workers == 2
                    && s.config.queue == 8
                    && s.config.cache_bytes == 16 << 20
        ));
    }

    #[test]
    fn rejects_malformed_command_lines() {
        for bad in [
            "",
            "frobnicate",
            "run",
            "run nonesuch",
            "run compress --features warp",
            "run compress --machine tiny.0.0",
            "run compress --policy stop8",
            "run compress --commits many",
            "trace compress --format yaml",
            "figures fig9",
            "disasm",
            "disasm nonesuch",
            "list extra",
            "serve --queue 0",
            "serve --frob",
        ] {
            assert!(parse_invocation(&argv(bad)).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn context_capacity_is_enforced() {
        // big.1.8 has 8 contexts; 9 programs cannot co-schedule.
        let nine = "run compress gcc go li perl su2cor tomcatv vortex compress --machine big.1.8";
        assert!(parse_invocation(&argv(nine)).is_err());
    }
}
