//! `multipath` — command-line driver for the instruction-recycling
//! simulator.
//!
//! ```text
//! multipath run [OPTIONS] <BENCH>...       simulate one workload
//! multipath trace [OPTIONS] <BENCH>...     run with probes: Perfetto + stats.json
//! multipath explain [OPTIONS] <BENCH>...   reuse/recycle attribution + path tree
//! multipath compare [OPTIONS] <BENCH>...   all six configurations side by side
//! multipath figures [FIG]...               regenerate paper figures (parallel sweep)
//! multipath serve [SERVE OPTIONS]          persistent HTTP simulation service
//! multipath list                           list benchmarks, machines, policies
//! multipath disasm <BENCH>                 disassemble a kernel
//!
//! Options:
//!   --features <smt|tme|rec|rec-ru|rec-rs|rec-rs-ru>   (run/trace/explain; default rec-rs-ru)
//!   --machine  <big.2.16|big.1.8|small.2.8|small.1.8>  (default big.2.16)
//!   --policy   <stop-N|fetch-N|nostop-N>               (default stop-8)
//!   --commits  <N>      committed instructions per program (default 30000)
//!   --seed     <N>      workload seed (default 1)
//!
//! Trace options:
//!   --interval <N>      time-series interval width in cycles (default 100)
//!   --events <LIST>     comma-separated event filter (default all)
//!   --out <PATH>        Perfetto/Chrome-trace output (default multipath-trace.json)
//!   --stats-out <PATH>  stats output (default multipath-stats.json)
//!   --format <json|csv> stats output format: stats.json document, or one CSV
//!                       row per interval under a COUNTER_NAMES header
//!   --timeline <N>      also print the text timeline of the last N cycles
//!   --print-events <N>  dump the last N events as text
//!
//! Explain options:
//!   --top <N>           rows per attribution table (default 10)
//!   --json-out <PATH>   multipath-explain/v1 document (default multipath-explain.json)
//!   --report-out <PATH> also write the markdown report to a file
//!   --dot-out <PATH>    write the fork/merge/squash path DAG as Graphviz DOT
//!   --tree              print the ASCII path tree after the report
//!
//! Serve options:
//!   --addr <HOST:PORT>  bind address (default 127.0.0.1:8273)
//!   --workers <N>       worker threads (default: one per core)
//!   --queue <N>         request-queue bound before 429s (default 64)
//!   --cache-mb <N>      result-cache budget in MiB (default 64)
//!
//! Output paths get their parent directories created on demand.
//!
//! `figures` takes any of fig3 fig4 fig5 fig6 table1 explain (default:
//! all), and
//! honours MULTIPATH_THREADS (worker count), MULTIPATH_BUDGET=quick
//! (smoke-sized sweep), and MP_FORMAT=csv.
//! ```

use multipath_cli::{
    parse_invocation, ExplainOptions, Invocation, Options, ServeOptions, TraceOptions, USAGE,
};
use multipath_core::{stats_json, Features, ProbeConfig, SimConfig, Simulator, Stats};
use multipath_serve::{signal, Server};
use multipath_workload::{kernels, mix};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprint!("{USAGE}");
    ExitCode::from(2)
}

/// Writes `contents` to `path`, creating missing parent directories first
/// (so `--out reports/a/trace.json` works on a fresh checkout).
fn write_creating_dirs(path: &str, contents: &str) -> std::io::Result<()> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, contents)
}

fn configure(opts: &Options, features: Features) -> SimConfig {
    let mut config = opts.machine.clone().with_features(features);
    if let Some(p) = opts.policy {
        config = config.with_alt_policy(p);
    }
    config
}

fn simulate(opts: &Options, features: Features) -> Stats {
    let programs = mix::programs(&opts.benches, opts.seed);
    let mut sim = Simulator::new(configure(opts, features), programs);
    let total = opts.commits * opts.benches.len() as u64;
    sim.run(total, total.saturating_mul(100).max(1_000_000));
    sim.stats().clone()
}

fn print_stats(label: &str, s: &Stats) {
    println!(
        "{label:10} IPC {:5.2} | acc {:5.1}% | recycled {:5.1}% reused {:4.2}% | \
         forks {:6} cov {:5.1}% | merges {:5} (back {:4.1}%) respawns {:5}",
        s.ipc(),
        s.branch_accuracy(),
        s.pct_recycled(),
        s.pct_reused(),
        s.forks,
        s.pct_miss_covered(),
        s.merges,
        s.pct_back_merges(),
        s.respawns,
    );
}

fn cmd_run(opts: &Options) -> ExitCode {
    let stats = simulate(opts, opts.features);
    let names: Vec<&str> = opts.benches.iter().map(|b| b.name()).collect();
    println!(
        "workload: {} | {} committed in {} cycles",
        names.join("+"),
        stats.committed,
        stats.cycles
    );
    print_stats(opts.features.label(), &stats);
    ExitCode::SUCCESS
}

fn cmd_trace(topts: &TraceOptions, opts: &Options) -> ExitCode {
    let programs = mix::programs(&opts.benches, opts.seed);
    let mut sim = Simulator::new(configure(opts, opts.features), programs);
    sim.enable_probes(ProbeConfig {
        ring: topts.print_events.map(|n| n.max(1)),
        interval: Some(topts.interval.max(1)),
        spans: true,
        explain: false,
        filter: topts.filter,
    });
    sim.enable_host_profile();

    let total = opts.commits * opts.benches.len() as u64;
    sim.run(total, total.saturating_mul(100).max(1_000_000));

    // The text timeline samples *after* the commit target: the machine is
    // warmed up and still running (unless the programs halted).
    let timeline = topts.timeline.map(|cycles| {
        let samples = multipath_core::trace::sample_window(&mut sim, cycles);
        let stride = (cycles / 48).max(1) as usize;
        multipath_core::trace::render_timeline(&samples, stride)
    });
    sim.finish_probes();

    let stats = sim.stats().clone();
    let names: Vec<&str> = opts.benches.iter().map(|b| b.name()).collect();
    let label = names.join("+");
    println!(
        "workload: {label} | {} committed in {} cycles",
        stats.committed, stats.cycles
    );
    print_stats(opts.features.label(), &stats);
    if let Some(prof) = sim.host_profile() {
        print!("{}", prof.report(stats.ipc()));
    }
    if let Some(text) = timeline {
        println!();
        print!("{text}");
    }

    let probes = sim.take_probes().expect("probes were enabled");
    if let Some(ring) = &probes.ring {
        println!();
        println!("last {} events ({} dropped):", ring.len(), ring.dropped);
        for ev in ring.events() {
            println!("{}", ev.render());
        }
    }
    let doc = if topts.csv {
        multipath_core::intervals_csv(probes.interval.as_ref().expect("interval sink on"))
    } else {
        stats_json(
            &label,
            opts.features.label(),
            &stats,
            probes.interval.as_ref(),
        )
    };
    if let Err(e) = write_creating_dirs(&topts.stats_out, &doc) {
        eprintln!("error: writing {}: {e}", topts.stats_out);
        return ExitCode::FAILURE;
    }
    let trace = probes
        .spans
        .as_ref()
        .expect("spans were enabled")
        .chrome_trace_json(sim.config().contexts);
    if let Err(e) = write_creating_dirs(&topts.out, &trace) {
        eprintln!("error: writing {}: {e}", topts.out);
        return ExitCode::FAILURE;
    }
    println!();
    println!(
        "wrote {} and {} (open the trace at https://ui.perfetto.dev)",
        topts.out, topts.stats_out
    );
    ExitCode::SUCCESS
}

fn cmd_explain(eopts: &ExplainOptions, opts: &Options) -> ExitCode {
    let programs = mix::programs(&opts.benches, opts.seed);
    let mut sim = Simulator::new(configure(opts, opts.features), programs);
    sim.enable_probes(ProbeConfig {
        ring: None,
        interval: None,
        spans: false,
        explain: true,
        filter: multipath_core::EventFilter::all(),
    });

    let total = opts.commits * opts.benches.len() as u64;
    sim.run(total, total.saturating_mul(100).max(1_000_000));
    sim.finish_probes();

    let stats = sim.stats().clone();
    let names: Vec<&str> = opts.benches.iter().map(|b| b.name()).collect();
    let label = names.join("+");
    let probes = sim.take_probes().expect("probes were enabled");
    let attr = probes.attribution.as_ref().expect("attribution sink on");
    let tree = probes.tree.as_ref().expect("path-tree sink on");

    let report = multipath_core::explain_markdown(
        &label,
        opts.features.label(),
        &stats,
        attr,
        tree,
        eopts.top,
    );
    print!("{report}");
    if eopts.tree {
        println!();
        print!("{}", tree.ascii());
    }

    let doc =
        multipath_core::explain_json(&label, opts.features.label(), &stats, attr, tree, eopts.top);
    if let Err(e) = write_creating_dirs(&eopts.json_out, &doc) {
        eprintln!("error: writing {}: {e}", eopts.json_out);
        return ExitCode::FAILURE;
    }
    let mut wrote = vec![eopts.json_out.clone()];
    if let Some(path) = &eopts.report_out {
        if let Err(e) = write_creating_dirs(path, &report) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        wrote.push(path.clone());
    }
    if let Some(path) = &eopts.dot_out {
        if let Err(e) = write_creating_dirs(path, &tree.dot()) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        wrote.push(path.clone());
    }
    println!();
    println!("wrote {}", wrote.join(" and "));
    ExitCode::SUCCESS
}

fn cmd_compare(opts: &Options) -> ExitCode {
    let names: Vec<&str> = opts.benches.iter().map(|b| b.name()).collect();
    println!("workload: {}", names.join("+"));
    for features in Features::all_six() {
        let stats = simulate(opts, features);
        print_stats(features.label(), &stats);
    }
    ExitCode::SUCCESS
}

fn cmd_list() -> ExitCode {
    println!("benchmarks:");
    for b in multipath_workload::Benchmark::ALL {
        println!(
            "  {:10} {}",
            b.name(),
            if b.is_fp() { "(floating point)" } else { "" }
        );
    }
    println!("machines:   big.2.16  big.1.8  small.2.8  small.1.8");
    println!("features:   smt  tme  rec  rec-ru  rec-rs  rec-rs-ru");
    println!("policies:   stop-N  fetch-N  nostop-N   (default stop-8)");
    ExitCode::SUCCESS
}

fn cmd_figures(requested: &[&str]) -> ExitCode {
    let budget = multipath_bench::Budget::from_env();
    let csv = multipath_bench::csv_requested();
    eprintln!(
        "sweeping on {} worker thread(s); {} committed per program, {} mixes",
        multipath_bench::parallel::thread_count(),
        budget.committed_per_program,
        budget.mixes
    );
    for (i, fig) in requested.iter().enumerate() {
        if i > 0 {
            println!();
        }
        if requested.len() > 1 {
            println!("== {fig} ==");
        }
        match *fig {
            "fig3" => {
                let rows = multipath_bench::figure3(&budget);
                if csv {
                    print!("{}", multipath_bench::render_figure3_csv(&rows));
                } else {
                    print!("{}", multipath_bench::render_figure3(&rows));
                }
            }
            "fig4" => {
                let rows = multipath_bench::figure4(&budget);
                if csv {
                    print!("{}", multipath_bench::render_figure4_csv(&rows));
                } else {
                    print!("{}", multipath_bench::render_figure4(&rows));
                }
            }
            "fig5" => {
                let rows = multipath_bench::figure5(&budget);
                if csv {
                    print!("{}", multipath_bench::render_figure5_csv(&rows));
                } else {
                    print!("{}", multipath_bench::render_figure5(&rows));
                }
            }
            "fig6" => {
                let rows = multipath_bench::figure6(&budget);
                if csv {
                    print!("{}", multipath_bench::render_figure6_csv(&rows));
                } else {
                    print!("{}", multipath_bench::render_figure6(&rows));
                }
            }
            "table1" => {
                let rows = multipath_bench::table1(&budget);
                if csv {
                    print!("{}", multipath_bench::render_table1_csv(&rows));
                } else {
                    print!("{}", multipath_bench::render_table1(&rows));
                }
            }
            "explain" => {
                let rows = multipath_bench::explain_rows(&budget);
                if csv {
                    print!("{}", multipath_bench::render_explain_csv(&rows));
                } else {
                    print!("{}", multipath_bench::render_explain(&rows));
                }
            }
            _ => unreachable!("validated by the parser"),
        }
    }
    ExitCode::SUCCESS
}

fn cmd_disasm(bench: multipath_workload::Benchmark) -> ExitCode {
    let program = kernels::build(bench, 1);
    print!("{}", program.listing());
    ExitCode::SUCCESS
}

fn cmd_serve(sopts: &ServeOptions) -> ExitCode {
    let server = match Server::bind(&sopts.config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: binding {}: {e}", sopts.config.addr);
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "multipath serve listening on http://{} ({} workers, queue {}, cache {} MiB)",
        server.local_addr(),
        server.workers(),
        sopts.config.queue,
        sopts.config.cache_bytes >> 20,
    );
    eprintln!(
        "endpoints: POST /v1/run  POST /v1/sweep  GET /v1/explain/:kernel  /healthz  /metrics"
    );
    // SIGINT/ctrl-c and SIGTERM request a graceful drain: the accept loop
    // stops, in-flight simulations finish, workers join.
    server.run(signal::install());
    eprintln!("multipath serve: drained, shutting down");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_invocation(&args) {
        Ok(Invocation::Run(opts)) => cmd_run(&opts),
        Ok(Invocation::Trace(topts, opts)) => cmd_trace(&topts, &opts),
        Ok(Invocation::Explain(eopts, opts)) => cmd_explain(&eopts, &opts),
        Ok(Invocation::Compare(opts)) => cmd_compare(&opts),
        Ok(Invocation::Figures(figs)) => cmd_figures(&figs),
        Ok(Invocation::Serve(sopts)) => cmd_serve(&sopts),
        Ok(Invocation::List) => cmd_list(),
        Ok(Invocation::Disasm(bench)) => cmd_disasm(bench),
        Err(msg) => {
            eprintln!("error: {msg}");
            usage()
        }
    }
}
