//! The serving-layer smoke test: proves the HTTP service is a faithful,
//! faster front to the exact pipeline behind `multipath trace`.
//!
//! Eight concurrent clients each request a different kernel through
//! `POST /v1/run` (cold pass), then repeat the same requests (cached
//! pass). The test then runs the real `multipath` binary for every
//! kernel and asserts the served documents are **byte-identical** to
//! what `--stats-out` wrote — determinism is the contract that makes the
//! content-addressed cache sound. Finally it checks the cache paid for
//! itself (median latency ≥10x better on the repeat pass) and that the
//! `/metrics` counters reconcile exactly with the requests made.

use multipath_serve::{ServeConfig, Server};
use multipath_testkit::http;
use std::process::Command;
use std::time::Instant;

const KERNELS: [&str; 8] = [
    "compress", "gcc", "go", "li", "perl", "su2cor", "tomcatv", "vortex",
];
const COMMITS: u64 = 2000;

/// One timed pass: every kernel requested concurrently; returns
/// `(kernel, latency_seconds, body, cache_header)` in kernel order.
fn request_all(addr: std::net::SocketAddr) -> Vec<(&'static str, f64, Vec<u8>, String)> {
    let clients: Vec<_> = KERNELS
        .iter()
        .map(|&kernel| {
            std::thread::spawn(move || {
                let body = format!("{{\"benches\": [\"{kernel}\"], \"commits\": {COMMITS}}}");
                let started = Instant::now();
                let reply = http::post_json(addr, "/v1/run", &body).expect("POST /v1/run");
                let latency = started.elapsed().as_secs_f64();
                assert_eq!(reply.status, 200, "{kernel}: {}", reply.text());
                let outcome = reply
                    .header("x-multipath-cache")
                    .expect("cache outcome header")
                    .to_owned();
                (kernel, latency, reply.body, outcome)
            })
        })
        .collect();
    clients.into_iter().map(|c| c.join().unwrap()).collect()
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

#[test]
fn served_results_are_byte_identical_to_the_cli_and_cached() {
    let server = Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 8,
        ..ServeConfig::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr();
    let handle = server.start();

    // Pass 1: all eight kernels, concurrently, cold.
    let cold = request_all(addr);
    for (kernel, _, _, outcome) in &cold {
        assert_eq!(outcome, "miss", "{kernel} must simulate on first sight");
    }

    // Pass 2: identical requests — answered from the cache.
    let cached = request_all(addr);
    for ((kernel, _, cold_body, _), (_, _, cached_body, outcome)) in cold.iter().zip(&cached) {
        assert_eq!(outcome, "hit", "{kernel} must be cached on repeat");
        assert_eq!(cold_body, cached_body, "{kernel}: cache altered the bytes");
    }

    // The cache must buy at least an order of magnitude on this workload:
    // a loopback round-trip versus a full simulation.
    let cold_median = median(cold.iter().map(|(_, l, _, _)| *l).collect());
    let cached_median = median(cached.iter().map(|(_, l, _, _)| *l).collect());
    assert!(
        cold_median >= 10.0 * cached_median,
        "expected ≥10x from cache hits: cold median {:.1} ms, cached median {:.3} ms",
        cold_median * 1e3,
        cached_median * 1e3,
    );

    // The served documents are byte-identical to what the CLI writes.
    let tmp = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("serve_smoke");
    std::fs::create_dir_all(&tmp).expect("create tmp dir");
    for (kernel, _, served, _) in &cold {
        let stats_path = tmp.join(format!("{kernel}-stats.json"));
        let trace_path = tmp.join(format!("{kernel}-trace.json"));
        let status = Command::new(env!("CARGO_BIN_EXE_multipath"))
            .args([
                "trace",
                kernel,
                "--commits",
                &COMMITS.to_string(),
                "--stats-out",
                stats_path.to_str().unwrap(),
                "--out",
                trace_path.to_str().unwrap(),
            ])
            .output()
            .expect("run the multipath binary");
        assert!(status.status.success(), "{kernel}: multipath trace failed");
        let cli_bytes = std::fs::read(&stats_path).expect("read CLI stats doc");
        assert_eq!(
            served, &cli_bytes,
            "{kernel}: served document differs from `multipath trace --stats-out`"
        );
    }

    // The metrics reconcile exactly: 16 run requests = 8 misses (cold
    // pass) + 8 hits (cached pass), nothing coalesced, nothing lost.
    let metrics = http::get(addr, "/metrics").expect("GET /metrics");
    let doc = multipath_testkit::Json::parse(&metrics.text()).expect("metrics parse");
    let get = |path: [&str; 2]| {
        doc.get(path[0])
            .and_then(|s| s.get(path[1]))
            .and_then(multipath_testkit::Json::as_u64)
            .unwrap_or_else(|| panic!("missing {path:?} in {}", metrics.text()))
    };
    assert_eq!(get(["requests", "run"]), 16);
    assert_eq!(get(["cache", "misses"]), 8);
    assert_eq!(get(["cache", "hits"]), 8);
    assert_eq!(get(["cache", "coalesced"]), 0);
    assert_eq!(
        get(["cache", "hits"]) + get(["cache", "misses"]) + get(["cache", "coalesced"]),
        get(["requests", "run"]),
        "every request classified exactly once"
    );
    assert_eq!(get(["cache", "entries"]), 8);
    assert!(get(["host_profile", "steps"]) > 0, "profile aggregated");

    handle.shutdown();
}
