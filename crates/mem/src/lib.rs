//! Memory substrate for the `multipath` simulator.
//!
//! Two orthogonal concerns, matching how execution-driven simulators are
//! built:
//!
//! * **Functional state** — [`Memory`] is a sparse, paged, byte-addressable
//!   64-bit address space. Each simulated program owns one (separate address
//!   spaces, as separate SPEC95 processes had). Values read/written here are
//!   architecturally real; speculative stores are buffered in the pipeline's
//!   store queues and only reach [`Memory`] at commit.
//! * **Timing** — [`Cache`] models tags, LRU and bank occupancy only (no
//!   data; the functional state lives in [`Memory`]), and
//!   [`MemoryHierarchy`] stacks three levels with the paper's latencies:
//!   64KB direct-mapped L1 I/D, 256KB 4-way L2, 4MB L3, 64-byte lines,
//!   8-way banked on chip, miss penalties 6 (L2), +12 (L3), +62 (memory).
//!
//! Multiple programs share the caches; lines are disambiguated by an
//! address-space identifier ([`Asid`]).
//!
//! # Examples
//!
//! ```
//! use multipath_mem::{Asid, HierarchyConfig, Memory, MemoryHierarchy};
//!
//! let mut mem = Memory::new();
//! mem.write_u64(0x1000, 42);
//! assert_eq!(mem.read_u64(0x1000), 42);
//!
//! let mut hier = MemoryHierarchy::new(HierarchyConfig::baseline());
//! let asid = Asid(0);
//! let cold = hier.data_access(asid, 0x1000, false, 0);
//! let warm = hier.data_access(asid, 0x1000, false, cold.ready_at);
//! assert!(cold.latency() > warm.latency());
//! ```

pub mod cache;
pub mod hierarchy;
pub mod memory;

pub use cache::{Cache, CacheConfig};
pub use hierarchy::{AccessResult, HierarchyConfig, HierarchyStats, MemoryHierarchy};
pub use memory::Memory;

/// An address-space identifier: which simulated program an access belongs
/// to. Caches tag lines with it so co-scheduled programs contend for
/// capacity without aliasing each other's data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Asid(pub u16);
