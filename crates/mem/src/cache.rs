//! Timing-only set-associative cache with banking.

use crate::Asid;

/// Geometry and banking of one cache level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes (64 in the paper).
    pub line_bytes: usize,
    /// Associativity (1 = direct-mapped).
    pub ways: usize,
    /// Number of banks; simultaneous accesses to one bank serialise.
    pub banks: usize,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> usize {
        self.size_bytes / self.line_bytes / self.ways
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    /// Tag combines the address tag with the ASID so co-scheduled programs
    /// never alias.
    tag: u64,
    valid: bool,
    lru: u64,
}

const INVALID: Line = Line {
    tag: 0,
    valid: false,
    lru: 0,
};

/// A set-associative, LRU, banked cache model (tags only — data lives in
/// [`crate::Memory`]).
///
/// Banking models throughput: each bank can begin one access per cycle;
/// an access finding its bank busy is delayed until the bank frees. The
/// paper's on-chip caches are 8-way banked.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    lines: Vec<Line>,
    bank_busy_until: Vec<u64>,
    set_mask: u64,
    line_shift: u32,
    clock: u64,
    hits: u64,
    misses: u64,
    bank_conflicts: u64,
}

/// How an access behaves when its bank is busy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankPolicy {
    /// Wait in line: the access reserves the slot after the queue drains
    /// (data-side accesses, which cannot be replayed by the pipeline).
    Queue,
    /// Bounce: the access is rejected and the requester retries later
    /// (instruction fetch, which simply stalls the thread). A rejected
    /// probe reserves nothing — re-reserving on every retry would let the
    /// bank's queue run away from real time.
    Reject,
}

/// Result of a tag probe: whether it hit and how long the bank made us wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Probe {
    /// Tag-array hit? (Meaningless when `accepted` is false.)
    pub hit: bool,
    /// Cycles of delay due to bank contention (0 when the bank was free).
    pub bank_delay: u64,
    /// Whether the access actually happened this cycle. Always true under
    /// [`BankPolicy::Queue`]; under [`BankPolicy::Reject`] a busy bank
    /// bounces the access and the caller must retry after `bank_delay`.
    pub accepted: bool,
}

impl Cache {
    /// Builds a cache from its geometry.
    ///
    /// # Panics
    ///
    /// Panics if sizes are not powers of two or the geometry is
    /// inconsistent.
    pub fn new(config: CacheConfig) -> Cache {
        assert!(
            config.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(
            config.banks.is_power_of_two(),
            "bank count must be a power of two"
        );
        assert!(config.ways > 0, "associativity must be positive");
        let num_sets = config.num_sets();
        assert!(
            num_sets > 0 && num_sets.is_power_of_two(),
            "set count must be a positive power of two (size={} line={} ways={})",
            config.size_bytes,
            config.line_bytes,
            config.ways
        );
        Cache {
            lines: vec![INVALID; num_sets * config.ways],
            bank_busy_until: vec![0; config.banks],
            set_mask: (num_sets - 1) as u64,
            line_shift: config.line_bytes.trailing_zeros(),
            clock: 0,
            hits: 0,
            misses: 0,
            bank_conflicts: 0,
            config,
        }
    }

    fn set_of(&self, asid: Asid, addr: u64) -> usize {
        // Programs are loaded at identical *virtual* addresses; an OS maps
        // them to distinct physical pages. Folding the ASID into the index
        // models that — without it, co-scheduled programs would alias
        // set-for-set and thrash a direct-mapped cache pathologically.
        (((addr >> self.line_shift) ^ (asid.0 as u64).wrapping_mul(0x9e37)) & self.set_mask)
            as usize
    }

    fn tag_of(&self, asid: Asid, addr: u64) -> u64 {
        // Fold the ASID into the tag's top bits; simulated programs use
        // well under 2^48 of address space.
        ((addr >> self.line_shift) >> self.set_mask.count_ones()) | ((asid.0 as u64) << 48)
    }

    fn bank_of(&self, addr: u64) -> usize {
        ((addr >> self.line_shift) as usize) & (self.config.banks - 1)
    }

    /// Probes the tags for `addr` at time `now`, accounting bank occupancy
    /// per `policy`, and updates LRU/fills on miss (the line is brought in;
    /// latency of the fill is the hierarchy's concern).
    pub fn access(&mut self, asid: Asid, addr: u64, now: u64, policy: BankPolicy) -> Probe {
        let bank = self.bank_of(addr);
        let free_at = self.bank_busy_until[bank];
        if free_at > now {
            self.bank_conflicts += 1;
            match policy {
                BankPolicy::Reject => {
                    // Bounced: no tag access, no reservation.
                    return Probe {
                        hit: false,
                        bank_delay: free_at - now,
                        accepted: false,
                    };
                }
                BankPolicy::Queue => {
                    let bank_delay = free_at - now;
                    self.bank_busy_until[bank] = free_at + 1;
                    return self.finish_probe(asid, addr, bank_delay);
                }
            }
        }
        self.bank_busy_until[bank] = now + 1;
        self.finish_probe(asid, addr, 0)
    }

    fn finish_probe(&mut self, asid: Asid, addr: u64, bank_delay: u64) -> Probe {
        self.clock += 1;
        let hit = self.touch(asid, addr);
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        Probe {
            hit,
            bank_delay,
            accepted: true,
        }
    }

    /// Tag probe + LRU update + fill-on-miss, with no timing side effects.
    /// Returns whether it was a hit.
    fn touch(&mut self, asid: Asid, addr: u64) -> bool {
        let set = self.set_of(asid, addr);
        let tag = self.tag_of(asid, addr);
        let ways = self.config.ways;
        let clock = self.clock;
        let base = set * ways;
        let set_lines = &mut self.lines[base..base + ways];
        if let Some(line) = set_lines.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = clock;
            return true;
        }
        // Miss: fill into the invalid or LRU way.
        let victim = set_lines
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| if l.valid { l.lru } else { 0 })
            .map(|(i, _)| i)
            .expect("ways > 0");
        set_lines[victim] = Line {
            tag,
            valid: true,
            lru: clock,
        };
        false
    }

    /// Whether `addr` is currently resident (no LRU/timing side effects).
    pub fn contains(&self, asid: Asid, addr: u64) -> bool {
        let set = self.set_of(asid, addr);
        let tag = self.tag_of(asid, addr);
        let base = set * self.config.ways;
        self.lines[base..base + self.config.ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates every line (e.g. between independent simulations).
    pub fn flush(&mut self) {
        self.lines.fill(INVALID);
        self.bank_busy_until.fill(0);
    }

    /// The geometry this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// (hits, misses, bank conflicts) since construction.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.bank_conflicts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    trait TestAccess {
        fn access_q(&mut self, asid: Asid, addr: u64, now: u64) -> Probe;
    }
    impl TestAccess for Cache {
        fn access_q(&mut self, asid: Asid, addr: u64, now: u64) -> Probe {
            self.access(asid, addr, now, BankPolicy::Queue)
        }
    }

    fn small() -> Cache {
        // 1KB, 64B lines, 2-way, 2 banks → 8 sets.
        Cache::new(CacheConfig {
            size_bytes: 1024,
            line_bytes: 64,
            ways: 2,
            banks: 2,
        })
    }

    #[test]
    fn geometry() {
        let c = small();
        assert_eq!(c.config().num_sets(), 8);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        let a = Asid(0);
        assert!(!c.access_q(a, 0x1000, 0).hit);
        assert!(c.access_q(a, 0x1000, 10).hit);
        // Same line, different offset → still a hit.
        assert!(c.access_q(a, 0x103f, 20).hit);
        // Next line → miss.
        assert!(!c.access_q(a, 0x1040, 30).hit);
    }

    #[test]
    fn asid_disambiguates() {
        let mut c = small();
        assert!(!c.access_q(Asid(0), 0x1000, 0).hit);
        assert!(
            !c.access_q(Asid(1), 0x1000, 10).hit,
            "other program's line must not hit"
        );
        assert!(c.access_q(Asid(0), 0x1000, 20).hit);
    }

    #[test]
    fn lru_eviction() {
        let mut c = small();
        let a = Asid(0);
        // Three lines mapping to the same set (set stride = 8 sets * 64B = 512B).
        c.access_q(a, 0x0000, 0);
        c.access_q(a, 0x0200, 1);
        c.access_q(a, 0x0000, 2); // touch first so 0x0200 is LRU
        c.access_q(a, 0x0400, 3); // evicts 0x0200
        assert!(c.contains(a, 0x0000));
        assert!(!c.contains(a, 0x0200));
        assert!(c.contains(a, 0x0400));
    }

    #[test]
    fn bank_conflict_delays_second_access() {
        let mut c = small();
        let a = Asid(0);
        // Lines 0 and 2 share bank 0 (2 banks, bank = line & 1).
        let p1 = c.access_q(a, 0x0000, 100);
        assert_eq!(p1.bank_delay, 0);
        let p2 = c.access_q(a, 0x0080, 100); // line index 2 → bank 0, same cycle
        assert_eq!(p2.bank_delay, 1);
        // Different bank, same cycle: no delay.
        let p3 = c.access_q(a, 0x0040, 100); // line index 1 → bank 1
        assert_eq!(p3.bank_delay, 0);
    }

    #[test]
    fn flush_empties() {
        let mut c = small();
        c.access_q(Asid(0), 0x1000, 0);
        assert!(c.contains(Asid(0), 0x1000));
        c.flush();
        assert!(!c.contains(Asid(0), 0x1000));
    }

    #[test]
    fn direct_mapped_conflicts() {
        // 512B direct-mapped, 64B lines → 8 sets.
        let mut c = Cache::new(CacheConfig {
            size_bytes: 512,
            line_bytes: 64,
            ways: 1,
            banks: 1,
        });
        let a = Asid(0);
        c.access_q(a, 0x0000, 0);
        c.access_q(a, 0x0200, 1); // same set, evicts
        assert!(!c.contains(a, 0x0000));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_rejected() {
        Cache::new(CacheConfig {
            size_bytes: 1024,
            line_bytes: 48,
            ways: 2,
            banks: 1,
        });
    }
}
