//! Sparse paged functional memory.

use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const OFFSET_MASK: u64 = (PAGE_SIZE - 1) as u64;

/// A sparse 64-bit byte-addressable address space.
///
/// Pages are allocated on first touch and zero-initialised, so wrong-path
/// loads to arbitrary addresses are always defined (they read zero) — a
/// requirement for multipath execution, where alternate paths may compute
/// wild addresses before being squashed.
///
/// All multi-byte accesses are little-endian and may straddle page
/// boundaries.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// Creates an empty address space.
    pub fn new() -> Memory {
        Memory::default()
    }

    fn page(&self, addr: u64) -> Option<&[u8; PAGE_SIZE]> {
        self.pages.get(&(addr >> PAGE_SHIFT)).map(|b| &**b)
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_SIZE] {
        self.pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0; PAGE_SIZE]))
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.page(addr) {
            Some(p) => p[(addr & OFFSET_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        self.page_mut(addr)[(addr & OFFSET_MASK) as usize] = value;
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u64, buf: &mut [u8]) {
        for (i, b) in buf.iter_mut().enumerate() {
            *b = self.read_u8(addr.wrapping_add(i as u64));
        }
    }

    /// Writes `data` starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) {
        for (i, &b) in data.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u64), b);
        }
    }

    /// Reads a little-endian u32.
    pub fn read_u32(&self, addr: u64) -> u32 {
        let mut b = [0u8; 4];
        self.read_bytes(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Writes a little-endian u32.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads a little-endian u64.
    pub fn read_u64(&self, addr: u64) -> u64 {
        let mut b = [0u8; 8];
        self.read_bytes(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian u64.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads an IEEE double stored at `addr`.
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes an IEEE double at `addr`.
    pub fn write_f64(&mut self, addr: u64, value: f64) {
        self.write_u64(addr, value.to_bits());
    }

    /// Number of resident (touched) pages — a footprint proxy for tests.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_memory_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read_u64(0xdead_beef_0000), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn round_trip_widths() {
        let mut m = Memory::new();
        m.write_u8(10, 0xab);
        m.write_u32(100, 0xdead_beef);
        m.write_u64(200, 0x0123_4567_89ab_cdef);
        m.write_f64(300, -1.5);
        assert_eq!(m.read_u8(10), 0xab);
        assert_eq!(m.read_u32(100), 0xdead_beef);
        assert_eq!(m.read_u64(200), 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_f64(300), -1.5);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = Memory::new();
        m.write_u32(0, 0x0403_0201);
        assert_eq!(m.read_u8(0), 1);
        assert_eq!(m.read_u8(3), 4);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = (1 << PAGE_SHIFT) - 4; // straddles the page boundary
        m.write_u64(addr, u64::MAX);
        assert_eq!(m.read_u64(addr), u64::MAX);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn overwrite_is_visible() {
        let mut m = Memory::new();
        m.write_u64(64, 1);
        m.write_u64(64, 2);
        assert_eq!(m.read_u64(64), 2);
    }

    #[test]
    fn address_wraparound_reads_are_defined() {
        let m = Memory::new();
        let mut buf = [0u8; 8];
        m.read_bytes(u64::MAX - 3, &mut buf);
        assert_eq!(buf, [0; 8]);
    }
}
