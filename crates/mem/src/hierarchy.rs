//! The three-level memory hierarchy of the simulated machine.

use crate::cache::{BankPolicy, Cache, CacheConfig};
use crate::Asid;

/// Latencies and geometries for the full hierarchy.
///
/// Defaults come from the paper's Section 4.1: 64KB direct-mapped L1
/// instruction and data caches, 256KB 4-way L2, 4MB off-chip L3, all with
/// 64-byte lines; on-chip caches 8-way banked; conflict-free miss penalties
/// of 6 cycles to L2, another 12 to L3, and another 62 to memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// Off-chip L3 geometry.
    pub l3: CacheConfig,
    /// Extra cycles on an L1 miss that hits in L2.
    pub l2_penalty: u64,
    /// Extra cycles on an L2 miss that hits in L3.
    pub l3_penalty: u64,
    /// Extra cycles on an L3 miss (DRAM access).
    pub memory_penalty: u64,
}

impl HierarchyConfig {
    /// The paper's baseline hierarchy (the "big" machine).
    pub fn baseline() -> HierarchyConfig {
        HierarchyConfig {
            l1i: CacheConfig {
                size_bytes: 64 << 10,
                line_bytes: 64,
                ways: 1,
                banks: 8,
            },
            l1d: CacheConfig {
                size_bytes: 64 << 10,
                line_bytes: 64,
                ways: 1,
                banks: 8,
            },
            l2: CacheConfig {
                size_bytes: 256 << 10,
                line_bytes: 64,
                ways: 4,
                banks: 8,
            },
            l3: CacheConfig {
                size_bytes: 4 << 20,
                line_bytes: 64,
                ways: 1,
                banks: 1,
            },
            l2_penalty: 6,
            l3_penalty: 12,
            memory_penalty: 62,
        }
    }

    /// The "small" machine of Section 5.3: half the cache sizes.
    pub fn small() -> HierarchyConfig {
        let mut c = HierarchyConfig::baseline();
        c.l1i.size_bytes /= 2;
        c.l1d.size_bytes /= 2;
        c.l2.size_bytes /= 2;
        c.l3.size_bytes /= 2;
        c
    }
}

/// Where an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitLevel {
    /// L1 hit.
    L1,
    /// L1 miss, L2 hit.
    L2,
    /// L2 miss, L3 hit.
    L3,
    /// Full miss to DRAM.
    Memory,
}

/// The timing outcome of one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Cycle the access was initiated.
    pub issued_at: u64,
    /// Cycle the data is available.
    pub ready_at: u64,
    /// Which level satisfied it.
    pub level: HitLevel,
    /// The request bounced off a busy bank: nothing happened; retry at
    /// `ready_at`. Only instruction fetches bounce (see
    /// [`MemoryHierarchy::inst_access`]).
    pub bounced: bool,
}

impl AccessResult {
    /// Total added latency in cycles (0 for a conflict-free L1 hit).
    pub fn latency(&self) -> u64 {
        self.ready_at - self.issued_at
    }
}

/// Aggregate hierarchy statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// Instruction-fetch accesses and L1I misses.
    pub inst_accesses: u64,
    /// L1I misses.
    pub inst_misses: u64,
    /// Data accesses and L1D misses.
    pub data_accesses: u64,
    /// L1D misses.
    pub data_misses: u64,
    /// Accesses that went all the way to DRAM.
    pub memory_accesses: u64,
}

/// A three-level cache hierarchy with banked on-chip caches.
///
/// Inclusive fills: a miss installs the line at every level it traversed.
/// Timing composes the per-level penalties with L1 bank-conflict delays;
/// deeper-level bank contention is folded into the fixed penalties, as the
/// paper models throughput "at all levels" but reports only the
/// conflict-free figures.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    config: HierarchyConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    l3: Cache,
    stats: HierarchyStats,
}

impl MemoryHierarchy {
    /// Builds the hierarchy.
    pub fn new(config: HierarchyConfig) -> MemoryHierarchy {
        MemoryHierarchy {
            l1i: Cache::new(config.l1i.clone()),
            l1d: Cache::new(config.l1d.clone()),
            l2: Cache::new(config.l2.clone()),
            l3: Cache::new(config.l3.clone()),
            stats: HierarchyStats::default(),
            config,
        }
    }

    /// An instruction fetch of the line containing `addr` at cycle `now`.
    ///
    /// A busy L1I bank bounces the request: the result then carries only
    /// the retry delay (level reported as [`HitLevel::L1`]) and the fetch
    /// unit stalls and retries — a bounced probe reserves nothing.
    pub fn inst_access(&mut self, asid: Asid, addr: u64, now: u64) -> AccessResult {
        let probe = self.l1i.access(asid, addr, now, BankPolicy::Reject);
        if !probe.accepted {
            return AccessResult {
                issued_at: now,
                ready_at: now + probe.bank_delay,
                level: HitLevel::L1,
                bounced: true,
            };
        }
        self.stats.inst_accesses += 1;
        if !probe.hit {
            self.stats.inst_misses += 1;
        }
        self.complete(asid, addr, now, probe.hit, probe.bank_delay)
    }

    /// A data access (load or store) at cycle `now`.
    ///
    /// Stores are write-allocate/write-back, so they probe identically;
    /// `is_store` only affects statistics today but keeps the API honest
    /// for policy extensions.
    pub fn data_access(&mut self, asid: Asid, addr: u64, is_store: bool, now: u64) -> AccessResult {
        let _ = is_store;
        self.stats.data_accesses += 1;
        let probe = self.l1d.access(asid, addr, now, BankPolicy::Queue);
        if !probe.hit {
            self.stats.data_misses += 1;
        }
        self.complete(asid, addr, now, probe.hit, probe.bank_delay)
    }

    fn complete(
        &mut self,
        asid: Asid,
        addr: u64,
        now: u64,
        l1_hit: bool,
        bank_delay: u64,
    ) -> AccessResult {
        let mut latency = bank_delay;
        let level = if l1_hit {
            HitLevel::L1
        } else {
            latency += self.config.l2_penalty;
            let l2 = self.l2.access(asid, addr, now + latency, BankPolicy::Queue);
            latency += l2.bank_delay;
            if l2.hit {
                HitLevel::L2
            } else {
                latency += self.config.l3_penalty;
                let l3 = self.l3.access(asid, addr, now + latency, BankPolicy::Queue);
                latency += l3.bank_delay;
                if l3.hit {
                    HitLevel::L3
                } else {
                    self.stats.memory_accesses += 1;
                    latency += self.config.memory_penalty;
                    HitLevel::Memory
                }
            }
        };
        AccessResult {
            issued_at: now,
            ready_at: now + latency,
            level,
            bounced: false,
        }
    }

    /// Statistics since construction.
    pub fn stats(&self) -> HierarchyStats {
        self.stats
    }

    /// The configuration in use.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Invalidates all levels (between independent simulation runs).
    pub fn flush(&mut self) {
        self.l1i.flush();
        self.l1d.flush();
        self.l2.flush();
        self.l3.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_access_pays_full_penalty() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::baseline());
        let r = h.data_access(Asid(0), 0x1000, false, 0);
        assert_eq!(r.level, HitLevel::Memory);
        assert_eq!(r.latency(), 6 + 12 + 62);
    }

    #[test]
    fn warm_access_is_l1_hit() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::baseline());
        let cold = h.data_access(Asid(0), 0x1000, false, 0);
        let warm = h.data_access(Asid(0), 0x1000, false, cold.ready_at);
        assert_eq!(warm.level, HitLevel::L1);
        assert_eq!(warm.latency(), 0);
    }

    #[test]
    fn l1_eviction_falls_back_to_l2() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::baseline());
        let a = Asid(0);
        h.data_access(a, 0x0, false, 0);
        // 64KB direct-mapped L1: +64KB aliases to the same set and evicts.
        h.data_access(a, 64 << 10, false, 200);
        let r = h.data_access(a, 0x0, false, 400);
        assert_eq!(r.level, HitLevel::L2);
        assert_eq!(r.latency(), 6);
    }

    #[test]
    fn inst_and_data_l1_are_separate() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::baseline());
        let a = Asid(0);
        h.inst_access(a, 0x1000, 0);
        // The line is now in L1I and L2/L3; a *data* access misses L1D but
        // hits L2.
        let r = h.data_access(a, 0x1000, false, 200);
        assert_eq!(r.level, HitLevel::L2);
    }

    #[test]
    fn stats_accumulate() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::baseline());
        h.inst_access(Asid(0), 0x0, 0);
        h.data_access(Asid(0), 0x0, true, 100);
        h.data_access(Asid(0), 0x0, false, 300);
        let s = h.stats();
        assert_eq!(s.inst_accesses, 1);
        assert_eq!(s.inst_misses, 1);
        assert_eq!(s.data_accesses, 2);
        assert_eq!(s.data_misses, 1);
        assert_eq!(s.memory_accesses, 1); // L2/L3 filled by the inst access
    }

    #[test]
    fn small_machine_has_half_capacity() {
        let c = HierarchyConfig::small();
        assert_eq!(c.l1d.size_bytes, 32 << 10);
        assert_eq!(c.l2.size_bytes, 128 << 10);
        let _ = MemoryHierarchy::new(c); // geometry still valid
    }

    #[test]
    fn programs_contend_but_do_not_alias() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::baseline());
        h.data_access(Asid(0), 0x1000, false, 0);
        let other = h.data_access(Asid(1), 0x1000, false, 200);
        assert_ne!(other.level, HitLevel::L1, "different ASID must not hit");
    }
}
