//! Property tests for the memory substrate.

use multipath_mem::{
    cache::BankPolicy, Asid, Cache, CacheConfig, HierarchyConfig, Memory, MemoryHierarchy,
};
use multipath_testkit::{prop_assert, prop_assert_eq, prop_test, TestRng};
use std::collections::HashMap;

prop_test! {
    /// Functional memory behaves like a flat map of bytes.
    fn memory_matches_reference_model(
        ops in |rng: &mut TestRng| rng.vec(1..200, |r| (r.below(0x10_0000), r.next_u64(), r.next_bool()))
    ) {
        let mut mem = Memory::new();
        let mut model: HashMap<u64, u8> = HashMap::new();
        for (addr, value, is_u64) in ops {
            if is_u64 {
                mem.write_u64(addr, value);
                for (i, b) in value.to_le_bytes().iter().enumerate() {
                    model.insert(addr + i as u64, *b);
                }
            } else {
                mem.write_u8(addr, value as u8);
                model.insert(addr, value as u8);
            }
        }
        for (&addr, &byte) in &model {
            prop_assert_eq!(mem.read_u8(addr), byte);
        }
    }

    /// A cache never reports a hit for a line that was never accessed, and
    /// repeated accesses to a resident line always hit.
    fn cache_hit_soundness(addrs in |rng: &mut TestRng| rng.vec(1..100, |r| r.below(0x4000))) {
        let mut cache = Cache::new(CacheConfig {
            size_bytes: 2048, line_bytes: 64, ways: 2, banks: 2,
        });
        let asid = Asid(0);
        let mut now = 0;
        for &a in &addrs {
            let first = cache.access(asid, a, now, BankPolicy::Queue);
            now += 10;
            // Immediately re-probing must hit (nothing else intervened).
            let second = cache.access(asid, a, now, BankPolicy::Queue);
            now += 10;
            prop_assert!(second.hit, "line filled at {a:#x} must still be resident");
            let _ = first;
        }
    }

    /// Hierarchy latency is always one of the composable penalty sums plus
    /// bounded bank delay, and ready_at never precedes issue.
    fn hierarchy_latency_is_bounded(
        addrs in |rng: &mut TestRng| rng.vec(1..100, |r| r.below(0x100_0000))
    ) {
        let mut h = MemoryHierarchy::new(HierarchyConfig::baseline());
        let mut now = 0;
        for &a in &addrs {
            let r = h.data_access(Asid(0), a, false, now);
            prop_assert!(r.ready_at >= now);
            // Max possible: full miss + worst-case bank delays (small).
            prop_assert!(r.latency() <= 6 + 12 + 62 + 16);
            now = r.ready_at + 1;
        }
    }

    /// Sequential same-line accesses after a fill always hit L1.
    fn spatial_locality_hits(base in |rng: &mut TestRng| rng.below(0x1000)) {
        let base = base & !63; // line-align
        let mut h = MemoryHierarchy::new(HierarchyConfig::baseline());
        let first = h.data_access(Asid(0), base, false, 0);
        let mut now = first.ready_at + 1;
        for off in (0..64).step_by(8) {
            let r = h.data_access(Asid(0), base + off, false, now);
            prop_assert_eq!(r.latency(), 0, "same-line access must be an L1 hit");
            now = r.ready_at + 2; // avoid bank back-pressure
        }
    }

    /// LRU guarantee (checked against a reference model): a line re-accessed
    /// before `ways` other distinct lines touch its set always hits.
    fn lru_recency_guarantee(addrs in |rng: &mut TestRng| rng.vec(2..300, |r| r.below(0x8000))) {
        use std::collections::VecDeque;
        let ways = 2usize;
        let mut cache = Cache::new(CacheConfig {
            size_bytes: 4096, line_bytes: 64, ways, banks: 1,
        });
        let asid = Asid(0); // hash contribution is zero: set = (addr>>6) & mask
        let sets = 4096 / 64 / ways;
        // Reference model: per-set LRU queues of line numbers.
        let mut model: Vec<VecDeque<u64>> = vec![VecDeque::new(); sets];
        let mut now = 0;
        for &a in &addrs {
            let line = a >> 6;
            let set = (line as usize) % sets;
            let model_hit = model[set].contains(&line);
            let probe = cache.access(asid, a, now, BankPolicy::Queue);
            prop_assert_eq!(probe.hit, model_hit, "line {}, set {}", line, set);
            // Update the model LRU.
            model[set].retain(|&l| l != line);
            model[set].push_back(line);
            if model[set].len() > ways {
                model[set].pop_front();
            }
            now += 2;
        }
    }
}
