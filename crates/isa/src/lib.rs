//! An Alpha-like 64-bit RISC instruction set for the `multipath` simulator.
//!
//! The HPCA'99 instruction-recycling study ran Alpha 21264 executables; this
//! crate provides the equivalent substrate: 32 integer and 32 floating-point
//! logical registers, a compact fixed-width 32-bit encoding, and precise
//! functional semantics (implemented by the execution stage in
//! `multipath-core`).
//!
//! The crate has three layers:
//!
//! * [`reg`] — logical register names ([`IntReg`], [`FpReg`], [`Reg`]).
//! * [`inst`] — the decoded instruction form ([`Inst`], [`Opcode`]) that the
//!   pipeline, active lists, and recycling datapath operate on.
//! * [`encode`] / [`disasm`] — 32-bit binary encoding and textual
//!   disassembly, used by the assembler in `multipath-workload` and by the
//!   fetch stage (instruction memory stores encoded words).
//!
//! # Examples
//!
//! ```
//! use multipath_isa::{Inst, IntReg, Opcode};
//!
//! // r3 = r1 + r2
//! let add = Inst::rrr(Opcode::Add, IntReg::R3, IntReg::R1, IntReg::R2);
//! let word = add.encode();
//! assert_eq!(Inst::decode(word), Some(add));
//! assert_eq!(add.to_string(), "add r3, r1, r2");
//! ```

#![deny(missing_docs)]

pub mod disasm;
pub mod encode;
pub mod inst;
pub mod reg;

pub use inst::{FuClass, Inst, MemWidth, Opcode, OperandClass};
pub use reg::names as regs;
pub use reg::{FpReg, IntReg, Reg, NUM_FP_REGS, NUM_INT_REGS, NUM_LOGICAL_REGS};

/// Size of one encoded instruction in bytes.
pub const INST_BYTES: u64 = 4;
