//! Textual disassembly.
//!
//! [`Inst`] implements [`std::fmt::Display`] in the assembler's own syntax,
//! so traces and test failures read like listings:
//!
//! ```
//! use multipath_isa::{Inst, IntReg, Opcode};
//!
//! let i = Inst::load(Opcode::Ldq, IntReg::R4, -8, IntReg::R5);
//! assert_eq!(i.to_string(), "ldq r4, -8(r5)");
//! ```

use crate::inst::{Inst, OperandClass};
use crate::reg::Reg;
use std::fmt;

fn r(reg: Option<Reg>) -> String {
    match reg {
        Some(reg) => reg.to_string(),
        None => "r31".to_owned(),
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.op.mnemonic();
        match self.op.operand_class() {
            OperandClass::Rrr | OperandClass::Fp | OperandClass::FpCmp => {
                write!(
                    f,
                    "{m} {}, {}, {}",
                    r(self.dest),
                    r(self.src1),
                    r(self.src2)
                )
            }
            OperandClass::Rri => {
                write!(f, "{m} {}, {}, #{}", r(self.dest), r(self.src1), self.imm)
            }
            OperandClass::Mem => {
                let data = if self.op.is_store() {
                    self.src2
                } else {
                    self.dest
                };
                write!(f, "{m} {}, {}({})", r(data), self.imm, r(self.src1))
            }
            OperandClass::CondBr => {
                write!(f, "{m} {}, {:+}", r(self.src1), self.imm)
            }
            OperandClass::Br => write!(f, "{m} {:+}", self.imm),
            OperandClass::Jump => write!(f, "{m} ({})", r(self.src1)),
            OperandClass::Cvt => {
                write!(f, "{m} {}, {}", r(self.dest), r(self.src1))
            }
            OperandClass::None => f.write_str(m),
        }
    }
}

/// Disassembles an encoded word, or formats it as raw data if undecodable.
pub fn disassemble(word: u32) -> String {
    match Inst::decode(word) {
        Some(inst) => inst.to_string(),
        None => format!(".word {word:#010x}"),
    }
}

/// Disassembles a code region as an address-annotated listing.
///
/// `base` is the address of `words[0]`. Useful for debugging generated
/// kernels:
///
/// ```
/// use multipath_isa::{disasm::listing, Inst};
///
/// let code = [Inst::nop().encode(), Inst::halt().encode()];
/// let text = listing(0x1000, &code);
/// assert!(text.contains("0x00001000: nop"));
/// ```
pub fn listing(base: u64, words: &[u32]) -> String {
    use fmt::Write as _;
    let mut out = String::with_capacity(words.len() * 32);
    for (i, &w) in words.iter().enumerate() {
        let addr = base + i as u64 * crate::INST_BYTES;
        let _ = writeln!(out, "{addr:#010x}: {}", disassemble(w));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Opcode;
    use crate::reg::{FpReg, IntReg};

    #[test]
    fn display_forms() {
        assert_eq!(
            Inst::rrr(Opcode::Add, IntReg::R3, IntReg::R1, IntReg::R2).to_string(),
            "add r3, r1, r2"
        );
        assert_eq!(
            Inst::rri(Opcode::Addi, IntReg::R3, IntReg::R1, -5).to_string(),
            "addi r3, r1, #-5"
        );
        assert_eq!(
            Inst::store(Opcode::Stq, IntReg::R4, 8, IntReg::R5).to_string(),
            "stq r4, 8(r5)"
        );
        assert_eq!(
            Inst::cond_branch(Opcode::Beq, IntReg::R1, -4).to_string(),
            "beq r1, -4"
        );
        assert_eq!(Inst::branch(7).to_string(), "br +7");
        assert_eq!(Inst::ret(IntReg::RA).to_string(), "ret (r26)");
        assert_eq!(
            Inst::fp(Opcode::Addt, FpReg::F1, FpReg::F2, FpReg::F3).to_string(),
            "addt f1, f2, f3"
        );
        assert_eq!(
            Inst::cvtqt(FpReg::F1, IntReg::R2).to_string(),
            "cvtqt f1, r2"
        );
        assert_eq!(Inst::nop().to_string(), "nop");
    }

    #[test]
    fn undecodable_word_formats_as_data() {
        assert_eq!(disassemble(u32::MAX), ".word 0xffffffff");
    }

    #[test]
    fn listing_includes_addresses() {
        let code = [Inst::nop().encode(), Inst::halt().encode()];
        let text = listing(0x2000, &code);
        assert!(text.contains("0x00002000: nop"));
        assert!(text.contains("0x00002004: halt"));
    }
}
