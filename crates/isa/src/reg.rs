//! Logical register names.
//!
//! The ISA has 32 integer registers (`r0`–`r31`, with `r31` hardwired to
//! zero, as on Alpha) and 32 floating-point registers (`f0`–`f31`, with
//! `f31` hardwired to +0.0). The unified [`Reg`] type gives every logical
//! register a dense index in `0..64`, which the renaming hardware in
//! `multipath-core` uses to address its per-context map regions and the
//! written-bit array used for reuse detection.

use std::fmt;

/// Number of integer logical registers.
pub const NUM_INT_REGS: usize = 32;
/// Number of floating-point logical registers.
pub const NUM_FP_REGS: usize = 32;
/// Total logical registers per context (integer + floating point).
pub const NUM_LOGICAL_REGS: usize = NUM_INT_REGS + NUM_FP_REGS;

/// An integer logical register, `r0`–`r31`.
///
/// `r31` ([`IntReg::ZERO`]) always reads as zero and writes to it are
/// discarded. By software convention `r26` ([`IntReg::RA`]) holds return
/// addresses and `r30` ([`IntReg::SP`]) the stack pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IntReg(u8);

impl IntReg {
    /// The hardwired zero register, `r31`.
    pub const ZERO: IntReg = IntReg(31);
    /// The conventional return-address register, `r26`.
    pub const RA: IntReg = IntReg(26);
    /// The conventional stack pointer, `r30`.
    pub const SP: IntReg = IntReg(30);

    /// Creates an integer register from its number.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub fn new(n: u8) -> IntReg {
        assert!(n < NUM_INT_REGS as u8, "integer register {n} out of range");
        IntReg(n)
    }

    /// Shorthand constructors `R0..=R30` live on the type for assembler use.
    pub const fn const_new(n: u8) -> IntReg {
        assert!(n < 32);
        IntReg(n)
    }

    /// The register number, `0..32`.
    pub fn number(self) -> u8 {
        self.0
    }

    /// Whether this is the hardwired zero register.
    pub fn is_zero(self) -> bool {
        self.0 == 31
    }
}

macro_rules! int_reg_consts {
    ($($name:ident = $n:expr),* $(,)?) => {
        impl IntReg {
            $(
                #[doc = concat!("Integer register r", stringify!($n), ".")]
                pub const $name: IntReg = IntReg::const_new($n);
            )*
        }
    };
}

int_reg_consts! {
    R0 = 0, R1 = 1, R2 = 2, R3 = 3, R4 = 4, R5 = 5, R6 = 6, R7 = 7,
    R8 = 8, R9 = 9, R10 = 10, R11 = 11, R12 = 12, R13 = 13, R14 = 14,
    R15 = 15, R16 = 16, R17 = 17, R18 = 18, R19 = 19, R20 = 20, R21 = 21,
    R22 = 22, R23 = 23, R24 = 24, R25 = 25, R26 = 26, R27 = 27, R28 = 28,
    R29 = 29, R30 = 30, R31 = 31,
}

impl fmt::Display for IntReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A floating-point logical register, `f0`–`f31`.
///
/// `f31` ([`FpReg::ZERO`]) always reads as +0.0 and writes to it are
/// discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FpReg(u8);

impl FpReg {
    /// The hardwired zero register, `f31`.
    pub const ZERO: FpReg = FpReg(31);

    /// Creates a floating-point register from its number.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub fn new(n: u8) -> FpReg {
        assert!(n < NUM_FP_REGS as u8, "fp register {n} out of range");
        FpReg(n)
    }

    /// `const` constructor for assembler tables.
    pub const fn const_new(n: u8) -> FpReg {
        assert!(n < 32);
        FpReg(n)
    }

    /// The register number, `0..32`.
    pub fn number(self) -> u8 {
        self.0
    }

    /// Whether this is the hardwired zero register.
    pub fn is_zero(self) -> bool {
        self.0 == 31
    }
}

macro_rules! fp_reg_consts {
    ($($name:ident = $n:expr),* $(,)?) => {
        impl FpReg {
            $(
                #[doc = concat!("Floating-point register f", stringify!($n), ".")]
                pub const $name: FpReg = FpReg::const_new($n);
            )*
        }
    };
}

fp_reg_consts! {
    F0 = 0, F1 = 1, F2 = 2, F3 = 3, F4 = 4, F5 = 5, F6 = 6, F7 = 7,
    F8 = 8, F9 = 9, F10 = 10, F11 = 11, F12 = 12, F13 = 13, F14 = 14,
    F15 = 15, F16 = 16, F17 = 17, F18 = 18, F19 = 19, F20 = 20, F21 = 21,
    F22 = 22, F23 = 23, F24 = 24, F25 = 25, F26 = 26, F27 = 27, F28 = 28,
    F29 = 29, F30 = 30, F31 = 31,
}

impl fmt::Display for FpReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A logical register of either file, with a dense unified index.
///
/// Integer registers map to indices `0..32` and floating-point registers to
/// `32..64`. The renaming map regions and the written-bit array in
/// `multipath-core` are indexed by [`Reg::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Reg {
    /// An integer register.
    Int(IntReg),
    /// A floating-point register.
    Fp(FpReg),
}

impl Reg {
    /// The dense unified index in `0..NUM_LOGICAL_REGS`.
    pub fn index(self) -> usize {
        match self {
            Reg::Int(r) => r.number() as usize,
            Reg::Fp(r) => NUM_INT_REGS + r.number() as usize,
        }
    }

    /// Reconstructs a register from its dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_LOGICAL_REGS`.
    pub fn from_index(index: usize) -> Reg {
        assert!(
            index < NUM_LOGICAL_REGS,
            "register index {index} out of range"
        );
        if index < NUM_INT_REGS {
            Reg::Int(IntReg::new(index as u8))
        } else {
            Reg::Fp(FpReg::new((index - NUM_INT_REGS) as u8))
        }
    }

    /// Whether this register is hardwired to zero (`r31` or `f31`).
    pub fn is_zero(self) -> bool {
        match self {
            Reg::Int(r) => r.is_zero(),
            Reg::Fp(r) => r.is_zero(),
        }
    }

    /// Whether this is an integer register.
    pub fn is_int(self) -> bool {
        matches!(self, Reg::Int(_))
    }
}

impl From<IntReg> for Reg {
    fn from(r: IntReg) -> Reg {
        Reg::Int(r)
    }
}

impl From<FpReg> for Reg {
    fn from(r: FpReg) -> Reg {
        Reg::Fp(r)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::Int(r) => r.fmt(f),
            Reg::Fp(r) => r.fmt(f),
        }
    }
}

/// Bare register names for assembler-style code.
///
/// `use multipath_isa::regs::*;` brings `R0..R31` and `F0..F31` into scope
/// as free constants, which keeps hand-written kernels readable.
pub mod names {
    use super::{FpReg, IntReg};

    macro_rules! bare_names {
        ($ty:ident : $($name:ident = $n:expr),* $(,)?) => {
            $(
                #[doc = concat!("Register ", stringify!($name), ".")]
                pub const $name: $ty = $ty::const_new($n);
            )*
        };
    }

    bare_names! { IntReg:
        R0 = 0, R1 = 1, R2 = 2, R3 = 3, R4 = 4, R5 = 5, R6 = 6, R7 = 7,
        R8 = 8, R9 = 9, R10 = 10, R11 = 11, R12 = 12, R13 = 13, R14 = 14,
        R15 = 15, R16 = 16, R17 = 17, R18 = 18, R19 = 19, R20 = 20,
        R21 = 21, R22 = 22, R23 = 23, R24 = 24, R25 = 25, R26 = 26,
        R27 = 27, R28 = 28, R29 = 29, R30 = 30, R31 = 31,
    }

    bare_names! { FpReg:
        F0 = 0, F1 = 1, F2 = 2, F3 = 3, F4 = 4, F5 = 5, F6 = 6, F7 = 7,
        F8 = 8, F9 = 9, F10 = 10, F11 = 11, F12 = 12, F13 = 13, F14 = 14,
        F15 = 15, F16 = 16, F17 = 17, F18 = 18, F19 = 19, F20 = 20,
        F21 = 21, F22 = 22, F23 = 23, F24 = 24, F25 = 25, F26 = 26,
        F27 = 27, F28 = 28, F29 = 29, F30 = 30, F31 = 31,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_reg_numbers_round_trip() {
        for n in 0..32 {
            assert_eq!(IntReg::new(n).number(), n);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn int_reg_out_of_range_panics() {
        IntReg::new(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fp_reg_out_of_range_panics() {
        FpReg::new(32);
    }

    #[test]
    fn zero_registers() {
        assert!(IntReg::ZERO.is_zero());
        assert!(FpReg::ZERO.is_zero());
        assert!(!IntReg::R0.is_zero());
        assert!(Reg::Int(IntReg::ZERO).is_zero());
        assert!(Reg::Fp(FpReg::ZERO).is_zero());
    }

    #[test]
    fn unified_index_is_dense_and_invertible() {
        for i in 0..NUM_LOGICAL_REGS {
            assert_eq!(Reg::from_index(i).index(), i);
        }
        assert_eq!(Reg::Int(IntReg::R5).index(), 5);
        assert_eq!(Reg::Fp(FpReg::F5).index(), 37);
    }

    #[test]
    fn display_names() {
        assert_eq!(IntReg::R17.to_string(), "r17");
        assert_eq!(FpReg::F3.to_string(), "f3");
        assert_eq!(Reg::Int(IntReg::SP).to_string(), "r30");
    }

    #[test]
    fn conventions() {
        assert_eq!(IntReg::RA.number(), 26);
        assert_eq!(IntReg::SP.number(), 30);
    }
}
