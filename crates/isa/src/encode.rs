//! 32-bit binary encoding.
//!
//! Instruction memory holds encoded words; the fetch stage pulls words
//! through the instruction cache and the decode stage recovers [`Inst`]s.
//! The layout is Alpha-flavoured: a 6-bit primary opcode in the top bits,
//! then fields determined by the opcode's [`OperandClass`]:
//!
//! ```text
//! Rrr    | op:6 | ra:5 | rb:5 | rc:5 | 0:11 |
//! Rri    | op:6 | ra:5 | rc:5 | imm:16      |
//! Mem    | op:6 | ra:5 | rb:5 | disp:16     |
//! CondBr | op:6 | ra:5 | disp:21            |
//! Br     | op:6 | 0:5  | disp:21            |
//! Jump   | op:6 | rb:5 | 0:21               |
//! Fp     | op:6 | fa:5 | fb:5 | fc:5 | 0:11 |
//! FpCmp  | op:6 | fa:5 | fb:5 | rc:5 | 0:11 |
//! Cvt    | op:6 | rs:5 | rd:5 | 0:16        |
//! None   | op:6 | 0:26                      |
//! ```

use crate::inst::{Inst, Opcode, OperandClass};
use crate::reg::{FpReg, IntReg, Reg};

const OP_SHIFT: u32 = 26;
const RA_SHIFT: u32 = 21;
const RB_SHIFT: u32 = 16;
const RC_SHIFT: u32 = 11;
const REG_MASK: u32 = 0x1f;
const IMM_MASK: u32 = 0xffff;
const DISP21_MASK: u32 = 0x1f_ffff;

fn reg_num(r: Option<Reg>) -> u32 {
    // Absent destinations encode as the hardwired zero register.
    match r {
        Some(Reg::Int(r)) => r.number() as u32,
        Some(Reg::Fp(r)) => r.number() as u32,
        None => 31,
    }
}

fn sext16(v: u32) -> i32 {
    (v as u16) as i16 as i32
}

fn sext21(v: u32) -> i32 {
    let v = v & DISP21_MASK;
    if v & (1 << 20) != 0 {
        (v | !DISP21_MASK) as i32
    } else {
        v as i32
    }
}

impl Inst {
    /// Encodes this instruction into its 32-bit word.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if an immediate or displacement does not fit
    /// its field; the assembler in `multipath-workload` checks ranges before
    /// emitting.
    pub fn encode(&self) -> u32 {
        let op = (self.op.code() as u32) << OP_SHIFT;
        match self.op.operand_class() {
            OperandClass::Rrr => {
                op | (reg_num(self.src1) << RA_SHIFT)
                    | (reg_num(self.src2) << RB_SHIFT)
                    | (reg_num(self.dest) << RC_SHIFT)
            }
            OperandClass::Rri => {
                debug_assert!(i16::try_from(self.imm).is_ok());
                op | (reg_num(self.src1) << RA_SHIFT)
                    | (reg_num(self.dest) << RB_SHIFT)
                    | (self.imm as u32 & IMM_MASK)
            }
            OperandClass::Mem => {
                debug_assert!(i16::try_from(self.imm).is_ok());
                let ra = if self.op.is_store() {
                    self.src2
                } else {
                    self.dest
                };
                op | (reg_num(ra) << RA_SHIFT)
                    | (reg_num(self.src1) << RB_SHIFT)
                    | (self.imm as u32 & IMM_MASK)
            }
            OperandClass::CondBr => {
                op | (reg_num(self.src1) << RA_SHIFT) | (self.imm as u32 & DISP21_MASK)
            }
            OperandClass::Br => op | (self.imm as u32 & DISP21_MASK),
            OperandClass::Jump => op | (reg_num(self.src1) << RA_SHIFT),
            OperandClass::Fp => {
                op | (reg_num(self.src1) << RA_SHIFT)
                    | (reg_num(self.src2) << RB_SHIFT)
                    | (reg_num(self.dest) << RC_SHIFT)
            }
            OperandClass::FpCmp => {
                op | (reg_num(self.src1) << RA_SHIFT)
                    | (reg_num(self.src2) << RB_SHIFT)
                    | (reg_num(self.dest) << RC_SHIFT)
            }
            OperandClass::Cvt => {
                op | (reg_num(self.src1) << RA_SHIFT) | (reg_num(self.dest) << RB_SHIFT)
            }
            OperandClass::None => op,
        }
    }

    /// Decodes a 32-bit word; `None` if the opcode field is unassigned.
    pub fn decode(word: u32) -> Option<Inst> {
        let op = Opcode::from_code((word >> OP_SHIFT) as u8)?;
        let ra = (word >> RA_SHIFT) & REG_MASK;
        let rb = (word >> RB_SHIFT) & REG_MASK;
        let rc = (word >> RC_SHIFT) & REG_MASK;
        let ir = |n: u32| IntReg::new(n as u8);
        let fr = |n: u32| FpReg::new(n as u8);
        Some(match op.operand_class() {
            OperandClass::Rrr => Inst::rrr(op, ir(rc), ir(ra), ir(rb)),
            OperandClass::Rri => Inst::rri(op, ir(rb), ir(ra), sext16(word) as i16),
            OperandClass::Mem => {
                let disp = sext16(word) as i16;
                match op {
                    Opcode::Ldt => Inst::fload(fr(ra), disp, ir(rb)),
                    Opcode::Stt => Inst::fstore(fr(ra), disp, ir(rb)),
                    _ if op.is_load() => Inst::load(op, ir(ra), disp, ir(rb)),
                    _ => Inst::store(op, ir(ra), disp, ir(rb)),
                }
            }
            OperandClass::CondBr => Inst::cond_branch(op, ir(ra), sext21(word)),
            OperandClass::Br => match op {
                Opcode::Jsr => Inst::call(sext21(word)),
                _ => Inst::branch(sext21(word)),
            },
            OperandClass::Jump => match op {
                Opcode::Ret => Inst::ret(ir(ra)),
                _ => Inst::jump(ir(ra)),
            },
            OperandClass::Fp => Inst::fp(op, fr(rc), fr(ra), fr(rb)),
            OperandClass::FpCmp => Inst::fp_cmp(op, ir(rc), fr(ra), fr(rb)),
            OperandClass::Cvt => match op {
                Opcode::Cvtqt => Inst::cvtqt(fr(rb), ir(ra)),
                _ => Inst::cvttq(ir(rb), fr(ra)),
            },
            OperandClass::None => match op {
                Opcode::Halt => Inst::halt(),
                _ => Inst::nop(),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(i: Inst) {
        let w = i.encode();
        assert_eq!(Inst::decode(w), Some(i), "word {w:#010x}");
    }

    #[test]
    fn round_trip_representative_instructions() {
        round_trip(Inst::rrr(Opcode::Add, IntReg::R1, IntReg::R2, IntReg::R3));
        round_trip(Inst::rrr(
            Opcode::Cmpult,
            IntReg::R30,
            IntReg::R29,
            IntReg::R28,
        ));
        round_trip(Inst::rri(Opcode::Addi, IntReg::R7, IntReg::R8, -123));
        round_trip(Inst::rri(Opcode::Lda, IntReg::R1, IntReg::ZERO, 0x7fff));
        round_trip(Inst::rri(Opcode::Ldih, IntReg::R1, IntReg::R1, -0x8000));
        round_trip(Inst::load(Opcode::Ldq, IntReg::R4, -8, IntReg::R5));
        round_trip(Inst::store(Opcode::Stb, IntReg::R4, 255, IntReg::R5));
        round_trip(Inst::fload(FpReg::F2, 16, IntReg::R9));
        round_trip(Inst::fstore(FpReg::F2, 16, IntReg::R9));
        round_trip(Inst::cond_branch(Opcode::Beq, IntReg::R3, -1024));
        round_trip(Inst::cond_branch(Opcode::Bge, IntReg::R3, (1 << 20) - 1));
        round_trip(Inst::branch(-(1 << 20)));
        round_trip(Inst::call(4242));
        round_trip(Inst::ret(IntReg::RA));
        round_trip(Inst::jump(IntReg::R27));
        round_trip(Inst::fp(Opcode::Mult, FpReg::F1, FpReg::F2, FpReg::F3));
        round_trip(Inst::fp_cmp(
            Opcode::Cmptlt,
            IntReg::R1,
            FpReg::F2,
            FpReg::F3,
        ));
        round_trip(Inst::cvtqt(FpReg::F0, IntReg::R0));
        round_trip(Inst::cvttq(IntReg::R0, FpReg::F0));
        round_trip(Inst::nop());
        round_trip(Inst::halt());
    }

    #[test]
    fn zero_dest_encodes_as_r31() {
        let i = Inst::rrr(Opcode::Add, IntReg::ZERO, IntReg::R1, IntReg::R2);
        assert_eq!(i.dest, None);
        round_trip(i);
    }

    #[test]
    fn undefined_opcode_decodes_to_none() {
        assert_eq!(Inst::decode(63 << 26), None);
        assert_eq!(Inst::decode(u32::MAX), None);
    }

    #[test]
    fn displacement_sign_extension() {
        let b = Inst::cond_branch(Opcode::Bne, IntReg::R1, -1);
        let d = Inst::decode(b.encode()).unwrap();
        assert_eq!(d.imm, -1);
    }
}
