//! Decoded instruction form.
//!
//! [`Inst`] is the representation the pipeline works with: after the decode
//! stage every in-flight instruction carries one, and the active lists store
//! it so the recycling datapath can re-inject instructions into rename
//! without repeating fetch or decode (the paper's Section 3.3).

use crate::reg::{FpReg, IntReg, Reg};
use std::fmt;

/// The functional-unit class an instruction issues to.
///
/// The baseline machine has 12 integer units (8 of which can perform
/// loads/stores) and 6 floating-point units (paper Section 4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuClass {
    /// Simple integer ALU operation (also conditional/unconditional branches).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Load or store (integer units with load/store capability).
    LoadStore,
    /// Floating-point add/compare/convert.
    FpAdd,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide.
    FpDiv,
}

/// Access width of a memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// One byte (zero-extended on load).
    Byte,
    /// Four bytes (zero-extended on load).
    Word,
    /// Eight bytes.
    Quad,
}

impl MemWidth {
    /// The width in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            MemWidth::Byte => 1,
            MemWidth::Word => 4,
            MemWidth::Quad => 8,
        }
    }
}

/// Operand-format class of an opcode; determines the binary encoding layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperandClass {
    /// `op rc, ra, rb` — three-register integer operate.
    Rrr,
    /// `op rc, ra, #imm16` — register + immediate integer operate.
    Rri,
    /// `op ra, disp16(rb)` — memory access.
    Mem,
    /// `op ra, disp21` — conditional branch on `ra` relative to PC.
    CondBr,
    /// `op disp21` — unconditional PC-relative branch/call.
    Br,
    /// `op (rb)` — indirect jump through a register.
    Jump,
    /// `op fc, fa, fb` — three-register floating-point operate.
    Fp,
    /// `op rc, fa, fb` — floating-point compare writing an integer register.
    FpCmp,
    /// `op fc, ra` / `op rc, fa` — conversion between the files.
    Cvt,
    /// No operands.
    None,
}

macro_rules! opcodes {
    ($($variant:ident = ($code:expr, $class:expr, $mnemonic:expr)),* $(,)?) => {
        /// Every operation in the ISA.
        ///
        /// The set mirrors the Alpha subset that the SPEC95-proxy kernels
        /// need: integer operate (register and immediate forms), quad/word/
        /// byte loads and stores, PC-relative control flow with a
        /// call/return pair for the return-address stack, and IEEE double
        /// arithmetic.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(u8)]
        pub enum Opcode {
            $(
                #[doc = concat!("`", $mnemonic, "`")]
                $variant = $code,
            )*
        }

        impl Opcode {
            /// All opcodes, for exhaustive iteration in tests and tables.
            pub const ALL: &'static [Opcode] = &[$(Opcode::$variant),*];

            /// The 6-bit primary opcode used in the binary encoding.
            pub fn code(self) -> u8 {
                self as u8
            }

            /// Recovers an opcode from its 6-bit encoding.
            pub fn from_code(code: u8) -> Option<Opcode> {
                match code {
                    $($code => Some(Opcode::$variant),)*
                    _ => None,
                }
            }

            /// The operand-format class, which fixes the encoding layout.
            pub fn operand_class(self) -> OperandClass {
                match self {
                    $(Opcode::$variant => $class,)*
                }
            }

            /// The assembler mnemonic.
            pub fn mnemonic(self) -> &'static str {
                match self {
                    $(Opcode::$variant => $mnemonic,)*
                }
            }
        }
    };
}

use OperandClass as OC;

opcodes! {
    // Integer operate, register form.
    Add = (0, OC::Rrr, "add"),
    Sub = (1, OC::Rrr, "sub"),
    Mul = (2, OC::Rrr, "mul"),
    And = (3, OC::Rrr, "and"),
    Or = (4, OC::Rrr, "or"),
    Xor = (5, OC::Rrr, "xor"),
    Sll = (6, OC::Rrr, "sll"),
    Srl = (7, OC::Rrr, "srl"),
    Sra = (8, OC::Rrr, "sra"),
    Cmpeq = (9, OC::Rrr, "cmpeq"),
    Cmplt = (10, OC::Rrr, "cmplt"),
    Cmple = (11, OC::Rrr, "cmple"),
    Cmpult = (12, OC::Rrr, "cmpult"),
    // Integer operate, immediate form.
    Addi = (13, OC::Rri, "addi"),
    Subi = (14, OC::Rri, "subi"),
    Muli = (15, OC::Rri, "muli"),
    Andi = (16, OC::Rri, "andi"),
    Ori = (17, OC::Rri, "ori"),
    Xori = (18, OC::Rri, "xori"),
    Slli = (19, OC::Rri, "slli"),
    Srli = (20, OC::Rri, "srli"),
    Srai = (21, OC::Rri, "srai"),
    Cmpeqi = (22, OC::Rri, "cmpeqi"),
    Cmplti = (23, OC::Rri, "cmplti"),
    Cmplei = (24, OC::Rri, "cmplei"),
    Cmpulti = (25, OC::Rri, "cmpulti"),
    // `lda rc, ra, #imm` computes ra + imm (address arithmetic / constants).
    Lda = (26, OC::Rri, "lda"),
    // `ldih rc, ra, #imm` computes ra + (imm << 16) (wide constants).
    Ldih = (27, OC::Rri, "ldih"),
    // Memory.
    Ldq = (28, OC::Mem, "ldq"),
    Stq = (29, OC::Mem, "stq"),
    Ldl = (30, OC::Mem, "ldl"),
    Stl = (31, OC::Mem, "stl"),
    Ldbu = (32, OC::Mem, "ldbu"),
    Stb = (33, OC::Mem, "stb"),
    Ldt = (34, OC::Mem, "ldt"),
    Stt = (35, OC::Mem, "stt"),
    // Control.
    Beq = (36, OC::CondBr, "beq"),
    Bne = (37, OC::CondBr, "bne"),
    Blt = (38, OC::CondBr, "blt"),
    Ble = (39, OC::CondBr, "ble"),
    Bgt = (40, OC::CondBr, "bgt"),
    Bge = (41, OC::CondBr, "bge"),
    Br = (42, OC::Br, "br"),
    Jsr = (43, OC::Br, "jsr"),
    Ret = (44, OC::Jump, "ret"),
    Jmp = (45, OC::Jump, "jmp"),
    // Floating point (IEEE double, "T" format as on Alpha).
    Addt = (46, OC::Fp, "addt"),
    Subt = (47, OC::Fp, "subt"),
    Mult = (48, OC::Fp, "mult"),
    Divt = (49, OC::Fp, "divt"),
    Cmptlt = (50, OC::FpCmp, "cmptlt"),
    Cmpteq = (51, OC::FpCmp, "cmpteq"),
    Cmptle = (52, OC::FpCmp, "cmptle"),
    Cvtqt = (53, OC::Cvt, "cvtqt"),
    Cvttq = (54, OC::Cvt, "cvttq"),
    // Miscellaneous.
    Nop = (55, OC::None, "nop"),
    Halt = (56, OC::None, "halt"),
}

impl Opcode {
    /// Whether this is a conditional branch.
    pub fn is_cond_branch(self) -> bool {
        self.operand_class() == OC::CondBr
    }

    /// Whether this instruction can redirect the PC (any control flow).
    pub fn is_control(self) -> bool {
        matches!(self.operand_class(), OC::CondBr | OC::Br | OC::Jump)
    }

    /// Whether this is a memory load.
    pub fn is_load(self) -> bool {
        matches!(self, Opcode::Ldq | Opcode::Ldl | Opcode::Ldbu | Opcode::Ldt)
    }

    /// Whether this is a memory store.
    pub fn is_store(self) -> bool {
        matches!(self, Opcode::Stq | Opcode::Stl | Opcode::Stb | Opcode::Stt)
    }

    /// The access width for memory operations, [`None`] otherwise.
    pub fn mem_width(self) -> Option<MemWidth> {
        match self {
            Opcode::Ldq | Opcode::Stq => Some(MemWidth::Quad),
            Opcode::Ldl | Opcode::Stl => Some(MemWidth::Word),
            Opcode::Ldbu | Opcode::Stb => Some(MemWidth::Byte),
            Opcode::Ldt | Opcode::Stt => Some(MemWidth::Quad),
            _ => None,
        }
    }

    /// The functional-unit class this opcode issues to.
    pub fn fu_class(self) -> FuClass {
        match self {
            Opcode::Mul => FuClass::IntMul,
            Opcode::Muli => FuClass::IntMul,
            op if op.is_load() || op.is_store() => FuClass::LoadStore,
            Opcode::Addt
            | Opcode::Subt
            | Opcode::Cmptlt
            | Opcode::Cmpteq
            | Opcode::Cmptle
            | Opcode::Cvtqt
            | Opcode::Cvttq => FuClass::FpAdd,
            Opcode::Mult => FuClass::FpMul,
            Opcode::Divt => FuClass::FpDiv,
            _ => FuClass::IntAlu,
        }
    }

    /// Default execution latency in cycles (Alpha 21264-like).
    ///
    /// Load latency here is the execute-stage cost only; cache access time
    /// is added by the memory hierarchy model.
    pub fn latency(self) -> u32 {
        match self.fu_class() {
            FuClass::IntAlu => 1,
            FuClass::IntMul => 7,
            FuClass::LoadStore => 1,
            FuClass::FpAdd => 4,
            FuClass::FpMul => 4,
            FuClass::FpDiv => 12,
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A decoded instruction.
///
/// `imm` holds the sign-extended 16-bit immediate for operate/memory forms,
/// or the 21-bit PC-relative displacement *in instructions* for branch
/// forms. Source/destination registers are typed: the operand class of the
/// opcode determines which file each register lives in.
///
/// # Examples
///
/// ```
/// use multipath_isa::{Inst, IntReg, Opcode};
///
/// // r1 = r2 + 12
/// let i = Inst::rri(Opcode::Addi, IntReg::R1, IntReg::R2, 12);
/// assert_eq!(i.dest, Some(IntReg::R1.into()));
/// assert!(!i.op.is_control());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Inst {
    /// The operation.
    pub op: Opcode,
    /// Destination register, if the instruction writes one.
    pub dest: Option<Reg>,
    /// First source register.
    pub src1: Option<Reg>,
    /// Second source register.
    pub src2: Option<Reg>,
    /// Immediate / displacement (see type-level docs).
    pub imm: i32,
}

impl Inst {
    /// Three-register integer operate: `op rc, ra, rb`.
    pub fn rrr(op: Opcode, rc: IntReg, ra: IntReg, rb: IntReg) -> Inst {
        debug_assert_eq!(op.operand_class(), OC::Rrr);
        Inst {
            op,
            dest: dest_reg(rc.into()),
            src1: Some(ra.into()),
            src2: Some(rb.into()),
            imm: 0,
        }
    }

    /// Register-immediate integer operate: `op rc, ra, #imm`.
    pub fn rri(op: Opcode, rc: IntReg, ra: IntReg, imm: i16) -> Inst {
        debug_assert_eq!(op.operand_class(), OC::Rri);
        Inst {
            op,
            dest: dest_reg(rc.into()),
            src1: Some(ra.into()),
            src2: None,
            imm: imm as i32,
        }
    }

    /// Integer load: `op ra, disp(rb)`.
    pub fn load(op: Opcode, ra: IntReg, disp: i16, rb: IntReg) -> Inst {
        debug_assert!(op.is_load() && !matches!(op, Opcode::Ldt));
        Inst {
            op,
            dest: dest_reg(ra.into()),
            src1: Some(rb.into()),
            src2: None,
            imm: disp as i32,
        }
    }

    /// Integer store: `op ra, disp(rb)` (stores `ra`).
    pub fn store(op: Opcode, ra: IntReg, disp: i16, rb: IntReg) -> Inst {
        debug_assert!(op.is_store() && !matches!(op, Opcode::Stt));
        Inst {
            op,
            dest: None,
            src1: Some(rb.into()),
            src2: Some(ra.into()),
            imm: disp as i32,
        }
    }

    /// Floating-point load: `ldt fa, disp(rb)`.
    pub fn fload(fa: FpReg, disp: i16, rb: IntReg) -> Inst {
        Inst {
            op: Opcode::Ldt,
            dest: dest_reg(fa.into()),
            src1: Some(rb.into()),
            src2: None,
            imm: disp as i32,
        }
    }

    /// Floating-point store: `stt fa, disp(rb)` (stores `fa`).
    pub fn fstore(fa: FpReg, disp: i16, rb: IntReg) -> Inst {
        Inst {
            op: Opcode::Stt,
            dest: None,
            src1: Some(rb.into()),
            src2: Some(fa.into()),
            imm: disp as i32,
        }
    }

    /// Conditional branch: `op ra, disp` (displacement in instructions,
    /// relative to the *next* PC, as on Alpha).
    pub fn cond_branch(op: Opcode, ra: IntReg, disp: i32) -> Inst {
        debug_assert!(op.is_cond_branch());
        debug_assert!((-(1 << 20)..(1 << 20)).contains(&disp));
        Inst {
            op,
            dest: None,
            src1: Some(ra.into()),
            src2: None,
            imm: disp,
        }
    }

    /// Unconditional branch: `br disp`.
    pub fn branch(disp: i32) -> Inst {
        Inst {
            op: Opcode::Br,
            dest: None,
            src1: None,
            src2: None,
            imm: disp,
        }
    }

    /// Direct call: `jsr disp` — links the return address into `r26`.
    pub fn call(disp: i32) -> Inst {
        Inst {
            op: Opcode::Jsr,
            dest: Some(IntReg::RA.into()),
            src1: None,
            src2: None,
            imm: disp,
        }
    }

    /// Return: `ret (rb)` — jumps to `rb`, predicted via the return stack.
    pub fn ret(rb: IntReg) -> Inst {
        Inst {
            op: Opcode::Ret,
            dest: None,
            src1: Some(rb.into()),
            src2: None,
            imm: 0,
        }
    }

    /// Indirect jump: `jmp (rb)`.
    pub fn jump(rb: IntReg) -> Inst {
        Inst {
            op: Opcode::Jmp,
            dest: None,
            src1: Some(rb.into()),
            src2: None,
            imm: 0,
        }
    }

    /// Three-register floating-point operate: `op fc, fa, fb`.
    pub fn fp(op: Opcode, fc: FpReg, fa: FpReg, fb: FpReg) -> Inst {
        debug_assert_eq!(op.operand_class(), OC::Fp);
        Inst {
            op,
            dest: dest_reg(fc.into()),
            src1: Some(fa.into()),
            src2: Some(fb.into()),
            imm: 0,
        }
    }

    /// Floating-point compare writing an integer register: `op rc, fa, fb`.
    pub fn fp_cmp(op: Opcode, rc: IntReg, fa: FpReg, fb: FpReg) -> Inst {
        debug_assert_eq!(op.operand_class(), OC::FpCmp);
        Inst {
            op,
            dest: dest_reg(rc.into()),
            src1: Some(fa.into()),
            src2: Some(fb.into()),
            imm: 0,
        }
    }

    /// Integer-to-float conversion: `cvtqt fc, ra`.
    pub fn cvtqt(fc: FpReg, ra: IntReg) -> Inst {
        Inst {
            op: Opcode::Cvtqt,
            dest: dest_reg(fc.into()),
            src1: Some(ra.into()),
            src2: None,
            imm: 0,
        }
    }

    /// Float-to-integer conversion (truncating): `cvttq rc, fa`.
    pub fn cvttq(rc: IntReg, fa: FpReg) -> Inst {
        Inst {
            op: Opcode::Cvttq,
            dest: dest_reg(rc.into()),
            src1: Some(fa.into()),
            src2: None,
            imm: 0,
        }
    }

    /// The canonical no-op.
    pub fn nop() -> Inst {
        Inst {
            op: Opcode::Nop,
            dest: None,
            src1: None,
            src2: None,
            imm: 0,
        }
    }

    /// Stops the executing thread.
    pub fn halt() -> Inst {
        Inst {
            op: Opcode::Halt,
            dest: None,
            src1: None,
            src2: None,
            imm: 0,
        }
    }

    /// The branch/call target given the address of this instruction.
    ///
    /// Only meaningful for PC-relative control flow (`CondBr`/`Br` classes);
    /// indirect jumps resolve their target from a register at execute.
    pub fn direct_target(&self, pc: u64) -> u64 {
        pc.wrapping_add(crate::INST_BYTES)
            .wrapping_add((self.imm as i64 * crate::INST_BYTES as i64) as u64)
    }

    /// Whether this instruction writes a floating-point destination.
    pub fn writes_fp(&self) -> bool {
        matches!(self.dest, Some(Reg::Fp(_)))
    }
}

/// Writes to the hardwired zero registers are discarded at decode: the
/// instruction simply has no destination, so rename allocates nothing.
fn dest_reg(r: Reg) -> Option<Reg> {
    if r.is_zero() {
        None
    } else {
        Some(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_codes_are_unique_and_round_trip() {
        for &op in Opcode::ALL {
            assert_eq!(Opcode::from_code(op.code()), Some(op));
        }
        let mut codes: Vec<u8> = Opcode::ALL.iter().map(|o| o.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), Opcode::ALL.len());
    }

    #[test]
    fn classification_is_consistent() {
        for &op in Opcode::ALL {
            assert!(!(op.is_load() && op.is_store()));
            if op.is_load() || op.is_store() {
                assert_eq!(op.fu_class(), FuClass::LoadStore);
                assert!(op.mem_width().is_some());
            } else {
                assert!(op.mem_width().is_none());
            }
            if op.is_cond_branch() {
                assert!(op.is_control());
            }
        }
        assert!(Opcode::Br.is_control());
        assert!(Opcode::Ret.is_control());
        assert!(!Opcode::Add.is_control());
    }

    #[test]
    fn zero_register_destinations_are_dropped() {
        let i = Inst::rrr(Opcode::Add, IntReg::ZERO, IntReg::R1, IntReg::R2);
        assert_eq!(i.dest, None);
        let f = Inst::fp(Opcode::Addt, FpReg::ZERO, FpReg::F1, FpReg::F2);
        assert_eq!(f.dest, None);
    }

    #[test]
    fn direct_target_arithmetic() {
        // A branch at 0x1000 with displacement +3 targets 0x1000+4+12.
        let b = Inst::cond_branch(Opcode::Beq, IntReg::R1, 3);
        assert_eq!(b.direct_target(0x1000), 0x1010);
        // Negative displacement: back to itself - 4.
        let b = Inst::cond_branch(Opcode::Bne, IntReg::R1, -2);
        assert_eq!(b.direct_target(0x1000), 0xffc);
    }

    #[test]
    fn store_sources() {
        let s = Inst::store(Opcode::Stq, IntReg::R4, 8, IntReg::R5);
        assert_eq!(s.dest, None);
        assert_eq!(s.src1, Some(IntReg::R5.into())); // base
        assert_eq!(s.src2, Some(IntReg::R4.into())); // data
    }

    #[test]
    fn latencies_match_fu_classes() {
        assert_eq!(Opcode::Add.latency(), 1);
        assert_eq!(Opcode::Mul.latency(), 7);
        assert_eq!(Opcode::Addt.latency(), 4);
        assert_eq!(Opcode::Divt.latency(), 12);
    }

    #[test]
    fn call_links_ra() {
        let c = Inst::call(100);
        assert_eq!(c.dest, Some(IntReg::RA.into()));
        assert_eq!(c.direct_target(0), 4 + 400);
    }
}
