//! Property tests: the binary encoding round-trips every representable
//! instruction, and decode never panics on arbitrary words.

use multipath_isa::{FpReg, Inst, IntReg, Opcode, OperandClass};
use multipath_testkit::{prop_assert, prop_assert_eq, prop_test, Shrink, TestRng};

/// Newtype so the generated instruction can ride through the property
/// runner (instructions have no meaningful halving shrink).
#[derive(Debug, Clone)]
struct ArbInst(Inst);

impl Shrink for ArbInst {}

/// Builds an arbitrary *valid* instruction.
fn arb_inst(rng: &mut TestRng) -> ArbInst {
    let op = *rng.pick(Opcode::ALL);
    let ra = IntReg::new(rng.below(32) as u8);
    let rb = IntReg::new(rng.below(32) as u8);
    let rc = IntReg::new(rng.below(32) as u8);
    let fa = FpReg::new(rng.below(32) as u8);
    let fb = FpReg::new(rng.below(32) as u8);
    let fc = FpReg::new(rng.below(32) as u8);
    let imm16 = rng.next_u16() as i16;
    let disp = rng.in_irange(-(1i64 << 20)..1i64 << 20) as i32;
    ArbInst(match op.operand_class() {
        OperandClass::Rrr => Inst::rrr(op, rc, ra, rb),
        OperandClass::Rri => Inst::rri(op, rc, ra, imm16),
        OperandClass::Mem => match op {
            Opcode::Ldt => Inst::fload(fa, imm16, rb),
            Opcode::Stt => Inst::fstore(fa, imm16, rb),
            _ if op.is_load() => Inst::load(op, ra, imm16, rb),
            _ => Inst::store(op, ra, imm16, rb),
        },
        OperandClass::CondBr => Inst::cond_branch(op, ra, disp),
        OperandClass::Br => match op {
            Opcode::Jsr => Inst::call(disp),
            _ => Inst::branch(disp),
        },
        OperandClass::Jump => match op {
            Opcode::Ret => Inst::ret(ra),
            _ => Inst::jump(ra),
        },
        OperandClass::Fp => Inst::fp(op, fc, fa, fb),
        OperandClass::FpCmp => Inst::fp_cmp(op, rc, fa, fb),
        OperandClass::Cvt => match op {
            Opcode::Cvtqt => Inst::cvtqt(fa, ra),
            _ => Inst::cvttq(ra, fa),
        },
        OperandClass::None => match op {
            Opcode::Halt => Inst::halt(),
            _ => Inst::nop(),
        },
    })
}

prop_test! {
    fn encode_decode_round_trips(inst in arb_inst) {
        let word = inst.0.encode();
        prop_assert_eq!(Inst::decode(word), Some(inst.0));
    }

    fn decode_never_panics(word in |rng: &mut TestRng| rng.next_u32()) {
        // Either a valid instruction or None; both re-encode stably.
        if let Some(inst) = Inst::decode(word) {
            let reencoded = inst.encode();
            prop_assert_eq!(Inst::decode(reencoded), Some(inst));
        }
    }

    fn display_never_panics(inst in arb_inst) {
        let s = inst.0.to_string();
        prop_assert!(!s.is_empty());
        prop_assert!(s.starts_with(inst.0.op.mnemonic()));
    }
}
