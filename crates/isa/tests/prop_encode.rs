//! Property tests: the binary encoding round-trips every representable
//! instruction, and decode never panics on arbitrary words.

use multipath_isa::{FpReg, Inst, IntReg, Opcode, OperandClass};
use proptest::prelude::*;

fn arb_int_reg() -> impl Strategy<Value = IntReg> {
    (0u8..32).prop_map(IntReg::new)
}

fn arb_fp_reg() -> impl Strategy<Value = FpReg> {
    (0u8..32).prop_map(FpReg::new)
}

fn arb_opcode() -> impl Strategy<Value = Opcode> {
    prop::sample::select(Opcode::ALL.to_vec())
}

/// Builds an arbitrary *valid* instruction for a given opcode.
fn arb_inst() -> impl Strategy<Value = Inst> {
    (
        arb_opcode(),
        arb_int_reg(),
        arb_int_reg(),
        arb_int_reg(),
        arb_fp_reg(),
        arb_fp_reg(),
        arb_fp_reg(),
        any::<i16>(),
        -(1i32 << 20)..(1i32 << 20),
    )
        .prop_map(|(op, ra, rb, rc, fa, fb, fc, imm16, disp)| {
            match op.operand_class() {
                OperandClass::Rrr => Inst::rrr(op, rc, ra, rb),
                OperandClass::Rri => Inst::rri(op, rc, ra, imm16),
                OperandClass::Mem => match op {
                    Opcode::Ldt => Inst::fload(fa, imm16, rb),
                    Opcode::Stt => Inst::fstore(fa, imm16, rb),
                    _ if op.is_load() => Inst::load(op, ra, imm16, rb),
                    _ => Inst::store(op, ra, imm16, rb),
                },
                OperandClass::CondBr => Inst::cond_branch(op, ra, disp),
                OperandClass::Br => match op {
                    Opcode::Jsr => Inst::call(disp),
                    _ => Inst::branch(disp),
                },
                OperandClass::Jump => match op {
                    Opcode::Ret => Inst::ret(ra),
                    _ => Inst::jump(ra),
                },
                OperandClass::Fp => Inst::fp(op, fc, fa, fb),
                OperandClass::FpCmp => Inst::fp_cmp(op, rc, fa, fb),
                OperandClass::Cvt => match op {
                    Opcode::Cvtqt => Inst::cvtqt(fa, ra),
                    _ => Inst::cvttq(ra, fa),
                },
                OperandClass::None => match op {
                    Opcode::Halt => Inst::halt(),
                    _ => Inst::nop(),
                },
            }
        })
}

proptest! {
    #[test]
    fn encode_decode_round_trips(inst in arb_inst()) {
        let word = inst.encode();
        prop_assert_eq!(Inst::decode(word), Some(inst));
    }

    #[test]
    fn decode_never_panics(word in any::<u32>()) {
        // Either a valid instruction or None; both re-encode stably.
        if let Some(inst) = Inst::decode(word) {
            let reencoded = inst.encode();
            prop_assert_eq!(Inst::decode(reencoded), Some(inst));
        }
    }

    #[test]
    fn display_never_panics(inst in arb_inst()) {
        let s = inst.to_string();
        prop_assert!(!s.is_empty());
        prop_assert!(s.starts_with(inst.op.mnemonic()));
    }
}
