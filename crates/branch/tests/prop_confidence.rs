//! Dedicated suite for the JRS resetting ones-counter confidence
//! estimator: saturation, reset-on-mispredict, threshold edge cases, and
//! a model-based property test that drives a table entry with a random
//! correct/incorrect stream and checks it against the two-line reference
//! model from the MICRO-29 paper.

use multipath_branch::ConfidenceEstimator;
use multipath_testkit::{prop_assert, prop_test, TestRng};

#[test]
fn counter_saturates_at_max_and_stays_there() {
    let mut c = ConfidenceEstimator::new(64, 15, 12);
    for i in 0..200 {
        c.update(0x40, 0, true);
        assert!(
            c.level(0x40, 0) <= c.max_level(),
            "level exceeded ceiling after {i} updates"
        );
    }
    assert_eq!(c.level(0x40, 0), c.max_level());
    // One more correct update must not wrap or move it.
    c.update(0x40, 0, true);
    assert_eq!(c.level(0x40, 0), c.max_level());
}

#[test]
fn mispredict_resets_to_zero_from_any_level() {
    for streak in 0..=15u32 {
        let mut c = ConfidenceEstimator::new(64, 15, 12);
        for _ in 0..streak {
            c.update(0x80, 0, true);
        }
        c.update(0x80, 0, false);
        assert_eq!(
            c.level(0x80, 0),
            0,
            "reset from streak {streak} left a nonzero counter"
        );
        assert!(!c.is_confident(0x80, 0));
    }
}

#[test]
fn confidence_flips_exactly_at_the_threshold() {
    let threshold = 12u8;
    let mut c = ConfidenceEstimator::new(64, 15, threshold);
    for i in 1..=15u8 {
        c.update(0xc0, 0, true);
        assert_eq!(c.level(0xc0, 0), i.min(15));
        assert_eq!(
            c.is_confident(0xc0, 0),
            i >= threshold,
            "confidence wrong at level {i} (threshold {threshold})"
        );
    }
}

#[test]
fn threshold_equal_to_max_requires_full_saturation() {
    let mut c = ConfidenceEstimator::new(64, 7, 7);
    for _ in 0..6 {
        c.update(0x10, 0, true);
    }
    assert!(!c.is_confident(0x10, 0));
    c.update(0x10, 0, true);
    assert!(c.is_confident(0x10, 0));
}

#[test]
fn threshold_one_is_confident_after_a_single_hit() {
    let mut c = ConfidenceEstimator::new(64, 15, 1);
    assert!(!c.is_confident(0x20, 0));
    c.update(0x20, 0, true);
    assert!(c.is_confident(0x20, 0));
}

prop_test! {
    /// Model check: after any correct/incorrect stream, the counter
    /// equals `min(max, length of the trailing correct streak)` — the
    /// definition of a resetting ones counter — and confidence is
    /// exactly `counter >= threshold`.
    fn counter_tracks_trailing_streak(
        case in |rng: &mut TestRng| {
            let max = 1 + rng.below(15) as u8;
            let threshold = 1 + rng.below(max as u64) as u8;
            let stream: Vec<bool> = (0..64).map(|_| rng.below(3) > 0).collect();
            (max, threshold, stream)
        },
        cases = 64
    ) {
        let (max, threshold, stream) = case;
        let mut c = ConfidenceEstimator::new(256, max, threshold);
        let mut streak = 0u64;
        for (i, &correct) in stream.iter().enumerate() {
            c.update(0x1234, 0x7, correct);
            streak = if correct { streak + 1 } else { 0 };
            let expect = streak.min(max as u64) as u8;
            prop_assert!(
                c.level(0x1234, 0x7) == expect,
                "step {i}: counter {} != trailing streak model {expect} \
                 (max={max})",
                c.level(0x1234, 0x7)
            );
            prop_assert!(
                c.is_confident(0x1234, 0x7) == (expect >= threshold),
                "step {i}: confidence disagrees with threshold {threshold}"
            );
        }
    }
}

prop_test! {
    /// Aliasing is by index only: updates to one (pc, history) pair never
    /// disturb an entry with a different table index, and always hit the
    /// entry with the same index.
    fn entries_alias_exactly_by_index(
        case in |rng: &mut TestRng| {
            (rng.next_u64(), rng.below(1 << 10), rng.next_u64(), rng.below(1 << 10))
        },
        cases = 32
    ) {
        let (pc_a, hist_a, pc_b, hist_b) = case;
        let entries = 1024u64;
        let index = |pc: u64, h: u64| ((pc >> 2) ^ h) & (entries - 1);
        let mut c = ConfidenceEstimator::new(entries as usize, 15, 12);
        for _ in 0..5 {
            c.update(pc_a, hist_a, true);
        }
        let expect_b = if index(pc_a, hist_a) == index(pc_b, hist_b) { 5 } else { 0 };
        prop_assert!(
            c.level(pc_b, hist_b) == expect_b,
            "aliasing disagrees with the documented index function: \
             level {} expected {expect_b}",
            c.level(pc_b, hist_b)
        );
    }
}
