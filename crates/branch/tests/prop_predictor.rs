//! Property tests for the branch substrate: structures never panic on
//! arbitrary addresses, BTB never exceeds capacity, a strongly biased
//! branch converges, and the confidence estimator tracks streaks.

use multipath_branch::{
    BranchPredictor, Btb, ConfidenceEstimator, GlobalHistory, PredictorConfig, ReturnStack,
};
use multipath_testkit::{prop_assert, prop_assert_eq, prop_test, TestRng};

prop_test! {
    fn predictor_total_on_arbitrary_pcs(pcs in |rng: &mut TestRng| rng.vec(1..200, TestRng::next_u64)) {
        let mut bp = BranchPredictor::new(PredictorConfig::default());
        let mut ghr = GlobalHistory::new(bp.history_bits());
        for pc in pcs {
            let p = bp.predict(pc, &ghr);
            bp.update(pc, ghr.bits(), pc & 1 == 0, p.taken);
            bp.update_target(pc, pc ^ 0xffff);
            ghr.push(pc & 1 == 0);
        }
    }

    fn btb_lookup_matches_last_update(
        ops in |rng: &mut TestRng| rng.vec(1..100, |r| (r.next_u16(), r.next_u32()))
    ) {
        let mut btb = Btb::new(64, 4);
        let mut last = std::collections::HashMap::new();
        for (pc, tgt) in ops {
            let pc = (pc as u64) << 2;
            btb.update(pc, tgt as u64);
            last.insert(pc, tgt as u64);
        }
        // Everything the BTB still holds must be the latest value written.
        for (&pc, &tgt) in &last {
            if let Some(found) = btb.lookup(pc) {
                prop_assert_eq!(found, tgt);
            }
        }
    }

    fn ras_never_exceeds_depth(pushes in |rng: &mut TestRng| rng.vec(0..100, TestRng::next_u64)) {
        let mut ras = ReturnStack::new(12);
        for a in &pushes {
            ras.push(*a);
            prop_assert!(ras.len() <= 12);
        }
        // Pops come back in LIFO order for the most recent <=12 pushes.
        let tail: Vec<u64> = pushes.iter().rev().take(12).copied().collect();
        for expect in tail {
            prop_assert_eq!(ras.pop(), Some(expect));
        }
        prop_assert_eq!(ras.pop(), None);
    }

    fn biased_branch_converges(
        input in |rng: &mut TestRng| (rng.next_bool(), rng.next_u32())
    ) {
        let (bias_taken, pc) = input;
        let mut bp = BranchPredictor::new(PredictorConfig::default());
        let mut ghr = GlobalHistory::new(bp.history_bits());
        let pc = pc as u64;
        for _ in 0..64 {
            let p = bp.predict(pc, &ghr);
            bp.update(pc, ghr.bits(), bias_taken, p.taken);
            ghr.push(bias_taken);
        }
        let p = bp.predict(pc, &ghr);
        prop_assert_eq!(p.taken, bias_taken);
        prop_assert!(p.confident);
    }

    fn confidence_streak_invariant(
        outcomes in |rng: &mut TestRng| rng.vec(1..200, TestRng::next_bool)
    ) {
        // After the sequence, confidence equals (current correct streak >= threshold).
        let mut c = ConfidenceEstimator::new(256, 15, 12);
        let mut streak: u32 = 0;
        for correct in &outcomes {
            c.update(0x100, 0, *correct);
            streak = if *correct { (streak + 1).min(15) } else { 0 };
        }
        prop_assert_eq!(c.is_confident(0x100, 0), streak >= 12);
    }
}
