//! Set-associative branch target buffer with LRU replacement.

/// One BTB entry: a tag and the predicted target address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BtbEntry {
    tag: u64,
    target: u64,
    /// Lower = older; the set's LRU victim is the minimum.
    lru: u64,
}

/// A decoupled branch target buffer.
///
/// Holds predicted targets for taken control instructions. Direction comes
/// from the PHT; the BTB only answers "where does this go if taken". The
/// paper's configuration is 256 entries, 4-way set-associative.
#[derive(Debug, Clone)]
pub struct Btb {
    sets: Vec<Vec<BtbEntry>>,
    ways: usize,
    set_mask: u64,
    clock: u64,
}

impl Btb {
    /// Creates a BTB with `entries` total entries and `ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not divisible into a power-of-two number of
    /// sets of `ways` entries.
    pub fn new(entries: usize, ways: usize) -> Btb {
        assert!(
            ways > 0 && entries.is_multiple_of(ways),
            "BTB geometry inconsistent"
        );
        let num_sets = entries / ways;
        assert!(
            num_sets.is_power_of_two(),
            "BTB set count must be a power of two"
        );
        Btb {
            sets: vec![Vec::with_capacity(ways); num_sets],
            ways,
            set_mask: (num_sets - 1) as u64,
            clock: 0,
        }
    }

    fn set_index(&self, pc: u64) -> usize {
        ((pc >> 2) & self.set_mask) as usize
    }

    fn tag(&self, pc: u64) -> u64 {
        pc >> 2 >> self.set_mask.count_ones()
    }

    /// Predicted target of the control instruction at `pc`, if cached.
    pub fn lookup(&self, pc: u64) -> Option<u64> {
        let set = &self.sets[self.set_index(pc)];
        let tag = self.tag(pc);
        set.iter().find(|e| e.tag == tag).map(|e| e.target)
    }

    /// Installs or refreshes the target for `pc`, evicting LRU on conflict.
    pub fn update(&mut self, pc: u64, target: u64) {
        self.clock += 1;
        let clock = self.clock;
        let tag = self.tag(pc);
        let ways = self.ways;
        let idx = self.set_index(pc);
        let set = &mut self.sets[idx];
        if let Some(e) = set.iter_mut().find(|e| e.tag == tag) {
            e.target = target;
            e.lru = clock;
            return;
        }
        let entry = BtbEntry {
            tag,
            target,
            lru: clock,
        };
        if set.len() < ways {
            set.push(entry);
        } else {
            let victim = set
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.lru)
                .map(|(i, _)| i)
                .expect("set is non-empty");
            set[victim] = entry;
        }
    }

    /// Total capacity in entries.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.ways
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut btb = Btb::new(256, 4);
        assert_eq!(btb.lookup(0x1000), None);
        btb.update(0x1000, 0x2000);
        assert_eq!(btb.lookup(0x1000), Some(0x2000));
    }

    #[test]
    fn update_refreshes_target() {
        let mut btb = Btb::new(256, 4);
        btb.update(0x1000, 0x2000);
        btb.update(0x1000, 0x3000);
        assert_eq!(btb.lookup(0x1000), Some(0x3000));
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut btb = Btb::new(8, 2); // 4 sets, 2 ways
                                      // Three PCs mapping to set 0: (pc>>2) & 3 == 0.
        let a = 0x00; // set 0
        let b = 0x40; // set 0 (0x40>>2 = 16, &3 = 0)
        let c = 0x80; // set 0
        btb.update(a, 1);
        btb.update(b, 2);
        // Touch `a` so `b` becomes LRU.
        btb.update(a, 1);
        btb.update(c, 3);
        assert_eq!(btb.lookup(a), Some(1));
        assert_eq!(btb.lookup(b), None, "LRU way should be evicted");
        assert_eq!(btb.lookup(c), Some(3));
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut btb = Btb::new(8, 2);
        btb.update(0x00, 1);
        btb.update(0x04, 2); // next word → different set
        assert_eq!(btb.lookup(0x00), Some(1));
        assert_eq!(btb.lookup(0x04), Some(2));
    }

    #[test]
    fn tags_disambiguate_aliases() {
        let mut btb = Btb::new(8, 2);
        // Same set, different tags.
        btb.update(0x00, 1);
        assert_eq!(btb.lookup(0x40), None);
    }

    #[test]
    fn capacity_reported() {
        assert_eq!(Btb::new(256, 4).capacity(), 256);
    }

    #[test]
    #[should_panic(expected = "geometry")]
    fn bad_geometry_rejected() {
        Btb::new(10, 4);
    }
}
