//! Pattern history table of 2-bit saturating counters with gshare indexing.

/// A 2-bit saturating counter: 0,1 predict not-taken; 2,3 predict taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TwoBitCounter(u8);

impl TwoBitCounter {
    /// A counter initialised to weakly not-taken (1).
    pub fn weakly_not_taken() -> TwoBitCounter {
        TwoBitCounter(1)
    }

    /// Current predicted direction.
    pub fn taken(self) -> bool {
        self.0 >= 2
    }

    /// Trains the counter toward the actual outcome.
    pub fn train(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }

    /// Raw counter value, `0..=3`.
    pub fn value(self) -> u8 {
        self.0
    }
}

/// A gshare direction predictor: PHT indexed by `(pc >> 2) XOR history`.
///
/// The paper uses a 2K-entry, 2-bit PHT accessed by the XOR of the lower
/// address bits and the global history register (McFarling; Yeh/Patt).
#[derive(Debug, Clone)]
pub struct Gshare {
    table: Vec<TwoBitCounter>,
    index_mask: u64,
    index_bits: u32,
}

impl Gshare {
    /// Creates a gshare PHT with `entries` counters.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or is zero.
    pub fn new(entries: usize) -> Gshare {
        assert!(
            entries.is_power_of_two() && entries > 0,
            "PHT size must be a power of two"
        );
        Gshare {
            table: vec![TwoBitCounter::weakly_not_taken(); entries],
            index_mask: (entries - 1) as u64,
            index_bits: entries.trailing_zeros(),
        }
    }

    /// Number of index bits, which is also the useful history length.
    pub fn index_bits(&self) -> u32 {
        self.index_bits
    }

    fn index(&self, pc: u64, history: u64) -> usize {
        // Instructions are 4-byte aligned; drop the low zero bits first.
        (((pc >> 2) ^ history) & self.index_mask) as usize
    }

    /// Predicted direction for the branch at `pc` under `history`.
    pub fn predict(&self, pc: u64, history: u64) -> bool {
        self.table[self.index(pc, history)].taken()
    }

    /// Trains the counter the prediction used.
    pub fn update(&mut self, pc: u64, history: u64, taken: bool) {
        let idx = self.index(pc, history);
        self.table[idx].train(taken);
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

/// A bimodal (PC-indexed, history-free) direction predictor.
///
/// The classic per-branch 2-bit scheme: cheap, immune to history
/// pollution, and the standard partner for gshare in a McFarling
/// combining predictor.
#[derive(Debug, Clone)]
pub struct Bimodal {
    table: Vec<TwoBitCounter>,
    index_mask: u64,
}

impl Bimodal {
    /// Creates a bimodal table with `entries` counters.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or is zero.
    pub fn new(entries: usize) -> Bimodal {
        assert!(
            entries.is_power_of_two() && entries > 0,
            "table size must be a power of two"
        );
        Bimodal {
            table: vec![TwoBitCounter::weakly_not_taken(); entries],
            index_mask: (entries - 1) as u64,
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) & self.index_mask) as usize
    }

    /// Predicted direction for the branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        self.table[self.index(pc)].taken()
    }

    /// Trains the branch's counter.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let idx = self.index(pc);
        self.table[idx].train(taken);
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates_both_ends() {
        let mut c = TwoBitCounter::weakly_not_taken();
        for _ in 0..10 {
            c.train(true);
        }
        assert_eq!(c.value(), 3);
        assert!(c.taken());
        for _ in 0..10 {
            c.train(false);
        }
        assert_eq!(c.value(), 0);
        assert!(!c.taken());
    }

    #[test]
    fn hysteresis_survives_single_flip() {
        let mut c = TwoBitCounter::weakly_not_taken();
        c.train(true);
        c.train(true); // saturated taken
        c.train(false); // one not-taken
        assert!(c.taken(), "2-bit counter tolerates a single anomaly");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        Gshare::new(1000);
    }

    #[test]
    fn index_uses_history() {
        let g = Gshare::new(2048);
        assert_eq!(g.index_bits(), 11);
        // Same PC, different history → different counters (for these values).
        assert_ne!(g.index(0x1000, 0), g.index(0x1000, 0x7ff));
    }

    #[test]
    fn learns_direction_per_history_pattern() {
        let mut g = Gshare::new(2048);
        // Branch taken iff history bit 0 set.
        for _ in 0..8 {
            g.update(0x1000, 0b0, false);
            g.update(0x1000, 0b1, true);
        }
        assert!(!g.predict(0x1000, 0b0));
        assert!(g.predict(0x1000, 0b1));
    }

    #[test]
    fn word_aligned_pcs_map_to_distinct_entries() {
        let g = Gshare::new(2048);
        assert_ne!(g.index(0x1000, 0), g.index(0x1004, 0));
    }

    #[test]
    fn bimodal_learns_per_branch_bias() {
        let mut b = Bimodal::new(1024);
        for _ in 0..4 {
            b.update(0x100, true);
            b.update(0x104, false);
        }
        assert!(b.predict(0x100));
        assert!(!b.predict(0x104));
    }

    #[test]
    fn bimodal_ignores_history_patterns() {
        // An alternating branch stays at the mercy of the 2-bit counter
        // regardless of any global pattern — that's the point of pairing
        // it with gshare.
        let mut b = Bimodal::new(64);
        let mut flips = 0;
        let mut taken = false;
        for _ in 0..64 {
            if b.predict(0x40) != taken {
                flips += 1;
            }
            b.update(0x40, taken);
            taken = !taken;
        }
        assert!(flips > 16);
    }
}
