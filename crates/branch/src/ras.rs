//! Per-context return-address stack.

/// A fixed-depth return-address stack (12 entries per context in the paper).
///
/// Calls push the return address; returns pop the predicted destination. On
/// overflow the oldest entry is discarded (circular behaviour), matching
/// hardware return stacks. The stack is `Clone` so that TME can duplicate
/// predictor state when spawning an alternate path, and so the pipeline can
/// snapshot it for squash repair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReturnStack {
    entries: Vec<u64>,
    depth: usize,
}

impl ReturnStack {
    /// Creates an empty return stack with the given depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(depth: usize) -> ReturnStack {
        assert!(depth > 0, "return stack depth must be positive");
        ReturnStack {
            entries: Vec::with_capacity(depth),
            depth,
        }
    }

    /// Pushes a return address (the instruction after a call).
    pub fn push(&mut self, return_address: u64) {
        if self.entries.len() == self.depth {
            self.entries.remove(0);
        }
        self.entries.push(return_address);
    }

    /// Pops the predicted return destination; `None` when empty.
    pub fn pop(&mut self) -> Option<u64> {
        self.entries.pop()
    }

    /// The address a `ret` would be predicted to, without popping.
    pub fn peek(&self) -> Option<u64> {
        self.entries.last().copied()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the stack holds no predictions.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Discards all entries (used when a context is recycled for a new
    /// program or resynchronised with a primary thread).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Maximum depth.
    pub fn depth(&self) -> usize {
        self.depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut ras = ReturnStack::new(12);
        ras.push(0x100);
        ras.push(0x200);
        assert_eq!(ras.pop(), Some(0x200));
        assert_eq!(ras.pop(), Some(0x100));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn overflow_discards_oldest() {
        let mut ras = ReturnStack::new(2);
        ras.push(1);
        ras.push(2);
        ras.push(3);
        assert_eq!(ras.len(), 2);
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), None, "oldest entry was discarded");
    }

    #[test]
    fn peek_does_not_pop() {
        let mut ras = ReturnStack::new(4);
        ras.push(7);
        assert_eq!(ras.peek(), Some(7));
        assert_eq!(ras.len(), 1);
    }

    #[test]
    fn clone_for_fork_is_independent() {
        let mut a = ReturnStack::new(4);
        a.push(1);
        let mut b = a.clone();
        b.push(2);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_depth_rejected() {
        ReturnStack::new(0);
    }
}
