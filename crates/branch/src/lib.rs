//! Branch prediction substrate for the `multipath` simulator.
//!
//! Implements the structures named in Section 4.1 of the HPCA'99 paper:
//!
//! * [`Gshare`] — a pattern history table of 2-bit saturating counters,
//!   indexed by the XOR of the branch address and the global history
//!   register (McFarling's gshare; the paper uses a 2K×2-bit PHT).
//! * [`Btb`] — a decoupled branch target buffer (256-entry, 4-way
//!   set-associative) in the Calder/Grunwald style.
//! * [`ReturnStack`] — a 12-entry per-context return-address stack.
//! * [`ConfidenceEstimator`] — a Jacobsen/Rotenberg/Smith "ones counter"
//!   confidence table; TME forks alternate paths only on *low-confidence*
//!   branches.
//! * [`GlobalHistory`] — a speculatively-updated, repairable global history
//!   register (one per hardware context).
//! * [`BranchPredictor`] — the composite structure shared by all contexts.
//!
//! The predictor is a passive table structure: the pipeline decides *when*
//! to predict, update, and repair. All methods are O(1).
//!
//! # Examples
//!
//! ```
//! use multipath_branch::{BranchPredictor, GlobalHistory, PredictorConfig};
//!
//! let mut bp = BranchPredictor::new(PredictorConfig::default());
//! let mut ghr = GlobalHistory::new(bp.history_bits());
//! let pc = 0x1000;
//! for _ in 0..32 {
//!     let p = bp.predict(pc, &ghr);
//!     bp.update(pc, ghr.bits(), true, p.taken);
//!     ghr.push(true);
//! }
//! // After warm-up, an always-taken branch is predicted taken confidently.
//! assert!(bp.predict(pc, &ghr).taken);
//! ```

pub mod btb;
pub mod confidence;
pub mod history;
pub mod pht;
pub mod ras;

pub use btb::Btb;
pub use confidence::ConfidenceEstimator;
pub use history::GlobalHistory;
pub use pht::{Bimodal, Gshare};
pub use ras::ReturnStack;

/// Which direction-prediction scheme the composite predictor uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DirectionScheme {
    /// gshare alone (the paper's configuration).
    #[default]
    Gshare,
    /// A PC-indexed bimodal table alone.
    Bimodal,
    /// McFarling's combining predictor: gshare and bimodal in parallel,
    /// with a 2-bit selector table trained toward whichever component was
    /// right when they disagree.
    Combining,
}

/// Configuration for the composite [`BranchPredictor`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredictorConfig {
    /// Number of PHT entries (must be a power of two). Paper: 2048.
    pub pht_entries: usize,
    /// Number of BTB entries. Paper: 256.
    pub btb_entries: usize,
    /// BTB associativity. Paper: 4.
    pub btb_ways: usize,
    /// Number of confidence-table entries (power of two).
    pub conf_entries: usize,
    /// Saturation ceiling of the confidence ones-counters.
    pub conf_max: u8,
    /// A branch is *confident* when its counter is at least this value.
    pub conf_threshold: u8,
    /// Return-stack depth per context. Paper: 12.
    pub ras_depth: usize,
    /// Direction-prediction scheme.
    pub scheme: DirectionScheme,
}

impl Default for PredictorConfig {
    /// The paper's baseline: 2K×2b gshare PHT, 256-entry 4-way BTB,
    /// 12-entry RAS, and a 1K-entry ones-counter confidence table
    /// (threshold 12 of 15, i.e. a branch must have a strong recent streak
    /// of correct predictions to be considered confident).
    fn default() -> PredictorConfig {
        PredictorConfig {
            pht_entries: 2048,
            btb_entries: 256,
            btb_ways: 4,
            conf_entries: 1024,
            conf_max: 15,
            conf_threshold: 12,
            ras_depth: 12,
            scheme: DirectionScheme::Gshare,
        }
    }
}

/// The outcome of a direction prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted direction.
    pub taken: bool,
    /// Whether the confidence estimator considers this prediction
    /// high-confidence. TME forks only when this is `false`.
    pub confident: bool,
}

/// The composite predictor shared by all hardware contexts.
///
/// Direction (PHT) and confidence tables are shared; the global history
/// register and return stack are per-context and owned by the pipeline.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    scheme: DirectionScheme,
    gshare: Gshare,
    bimodal: Bimodal,
    /// 2-bit chooser for the combining scheme: taken = "use gshare".
    selector: Bimodal,
    btb: Btb,
    confidence: ConfidenceEstimator,
    history_bits: u32,
    ras_depth: usize,
}

impl BranchPredictor {
    /// Creates a predictor from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if table sizes are not powers of two or the BTB geometry is
    /// inconsistent.
    pub fn new(config: PredictorConfig) -> BranchPredictor {
        let gshare = Gshare::new(config.pht_entries);
        let history_bits = gshare.index_bits();
        BranchPredictor {
            scheme: config.scheme,
            gshare,
            bimodal: Bimodal::new(config.pht_entries),
            selector: Bimodal::new(config.pht_entries),
            btb: Btb::new(config.btb_entries, config.btb_ways),
            confidence: ConfidenceEstimator::new(
                config.conf_entries,
                config.conf_max,
                config.conf_threshold,
            ),
            history_bits,
            ras_depth: config.ras_depth,
        }
    }

    /// Number of global-history bits the PHT index consumes; contexts size
    /// their [`GlobalHistory`] with this.
    pub fn history_bits(&self) -> u32 {
        self.history_bits
    }

    /// Depth for per-context [`ReturnStack`]s.
    pub fn ras_depth(&self) -> usize {
        self.ras_depth
    }

    /// Predicts the direction of the conditional branch at `pc` and reports
    /// confidence.
    pub fn predict(&self, pc: u64, history: &GlobalHistory) -> Prediction {
        let taken = match self.scheme {
            DirectionScheme::Gshare => self.gshare.predict(pc, history.bits()),
            DirectionScheme::Bimodal => self.bimodal.predict(pc),
            DirectionScheme::Combining => {
                if self.selector.predict(pc) {
                    self.gshare.predict(pc, history.bits())
                } else {
                    self.bimodal.predict(pc)
                }
            }
        };
        Prediction {
            taken,
            confident: self.confidence.is_confident(pc, history.bits()),
        }
    }

    /// Looks up the predicted target of the control instruction at `pc`.
    pub fn predict_target(&self, pc: u64) -> Option<u64> {
        self.btb.lookup(pc)
    }

    /// Trains direction + confidence for a resolved conditional branch.
    ///
    /// `history` must be the history value *used at prediction time*
    /// (the pipeline carries it with the in-flight branch).
    pub fn update(&mut self, pc: u64, history: u64, taken: bool, predicted: bool) {
        if self.scheme == DirectionScheme::Combining {
            // Train the chooser toward whichever component was correct
            // (only when they disagreed, per McFarling).
            let g = self.gshare.predict(pc, history);
            let b = self.bimodal.predict(pc);
            if g != b {
                self.selector.update(pc, g == taken);
            }
        }
        self.gshare.update(pc, history, taken);
        self.bimodal.update(pc, taken);
        self.confidence.update(pc, history, taken == predicted);
    }

    /// Installs or refreshes a BTB entry for a taken control instruction.
    pub fn update_target(&mut self, pc: u64, target: u64) {
        self.btb.update(pc, target);
    }

    /// The raw JRS ones-counter for the branch at `pc` under `history` —
    /// per-branch confidence telemetry for the explain layer (read-only;
    /// compare against [`BranchPredictor::confidence_threshold`]).
    pub fn confidence_level(&self, pc: u64, history: u64) -> u8 {
        self.confidence.level(pc, history)
    }

    /// The confidence threshold the fork decision uses.
    pub fn confidence_threshold(&self) -> u8 {
        self.confidence.threshold()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper() {
        let c = PredictorConfig::default();
        assert_eq!(c.pht_entries, 2048);
        assert_eq!(c.btb_entries, 256);
        assert_eq!(c.btb_ways, 4);
        assert_eq!(c.ras_depth, 12);
        assert_eq!(c.scheme, DirectionScheme::Gshare);
    }

    #[test]
    fn combining_tracks_the_better_component() {
        // A branch that alternates with period 2 is learnable by gshare
        // (history separates the phases) but not by bimodal; the chooser
        // must migrate to gshare.
        let config = PredictorConfig {
            scheme: DirectionScheme::Combining,
            ..Default::default()
        };
        let mut bp = BranchPredictor::new(config);
        let mut ghr = GlobalHistory::new(bp.history_bits());
        let mut taken = false;
        let mut late_misses = 0;
        for i in 0..400 {
            let p = bp.predict(0x5000, &ghr);
            if i >= 300 && p.taken != taken {
                late_misses += 1;
            }
            bp.update(0x5000, ghr.bits(), taken, p.taken);
            ghr.push(taken);
            taken = !taken;
        }
        assert!(
            late_misses <= 5,
            "combining predictor should converge on gshare: {late_misses} late misses"
        );
    }

    #[test]
    fn bimodal_scheme_is_history_blind() {
        let config = PredictorConfig {
            scheme: DirectionScheme::Bimodal,
            ..Default::default()
        };
        let mut bp = BranchPredictor::new(config);
        let ghr = GlobalHistory::new(bp.history_bits());
        for _ in 0..8 {
            let p = bp.predict(0x600, &ghr);
            bp.update(0x600, ghr.bits(), true, p.taken);
        }
        // Same answer whatever the (untrained) history register holds.
        let mut other = GlobalHistory::new(bp.history_bits());
        other.set(0x3ff);
        assert_eq!(
            bp.predict(0x600, &ghr).taken,
            bp.predict(0x600, &other).taken
        );
    }

    #[test]
    fn composite_learns_biased_branch() {
        let mut bp = BranchPredictor::new(PredictorConfig::default());
        let mut ghr = GlobalHistory::new(bp.history_bits());
        for _ in 0..32 {
            let p = bp.predict(0x4000, &ghr);
            bp.update(0x4000, ghr.bits(), true, p.taken);
            ghr.push(true);
        }
        let p = bp.predict(0x4000, &ghr);
        assert!(p.taken);
        assert!(p.confident);
    }

    #[test]
    fn alternating_branch_loses_confidence() {
        let mut bp = BranchPredictor::new(PredictorConfig::default());
        // Constant (zero) history so gshare sees a strict alternation on
        // one counter, which a 2-bit counter cannot learn.
        let ghr = GlobalHistory::new(bp.history_bits());
        let mut mispredicts = 0;
        let mut taken = false;
        for _ in 0..64 {
            let p = bp.predict(0x8000, &ghr);
            if p.taken != taken {
                mispredicts += 1;
            }
            bp.update(0x8000, ghr.bits(), taken, p.taken);
            taken = !taken;
        }
        assert!(
            mispredicts > 16,
            "alternation should defeat a 2-bit counter"
        );
        assert!(!bp.predict(0x8000, &ghr).confident);
    }

    #[test]
    fn btb_round_trips_targets() {
        let mut bp = BranchPredictor::new(PredictorConfig::default());
        assert_eq!(bp.predict_target(0x1234), None);
        bp.update_target(0x1234, 0x9999);
        assert_eq!(bp.predict_target(0x1234), Some(0x9999));
    }
}
