//! Speculative, repairable global branch history.

/// A global history register, updated speculatively at prediction time.
///
/// The pipeline pushes each *predicted* outcome as soon as a branch is
/// fetched so younger predictions see up-to-date history; when a branch
/// turns out to be mispredicted the register is restored from the value the
/// branch carried and re-pushed with the true outcome. One register exists
/// per hardware context, and TME copies it when forking an alternate path
/// (paper Section 3.4: "the global history register used for branch
/// prediction is then updated with that prediction").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalHistory {
    bits: u64,
    mask: u64,
}

impl GlobalHistory {
    /// Creates an all-zero history of `length` bits (1..=64).
    ///
    /// # Panics
    ///
    /// Panics if `length` is zero or greater than 64.
    pub fn new(length: u32) -> GlobalHistory {
        assert!((1..=64).contains(&length), "history length must be 1..=64");
        GlobalHistory {
            bits: 0,
            mask: if length == 64 {
                u64::MAX
            } else {
                (1u64 << length) - 1
            },
        }
    }

    /// The current history value (for PHT/confidence indexing).
    pub fn bits(self) -> u64 {
        self.bits
    }

    /// Shifts in one outcome (`true` = taken).
    pub fn push(&mut self, taken: bool) {
        self.bits = ((self.bits << 1) | taken as u64) & self.mask;
    }

    /// Restores the register to a previously captured value, then shifts in
    /// the corrected outcome — the misprediction repair sequence.
    pub fn repair(&mut self, at_prediction: u64, actual: bool) {
        self.bits = at_prediction & self.mask;
        self.push(actual);
    }

    /// Overwrites the register (context resynchronisation via the MSB).
    pub fn set(&mut self, bits: u64) {
        self.bits = bits & self.mask;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_shifts_in_lsb() {
        let mut h = GlobalHistory::new(4);
        h.push(true);
        h.push(false);
        h.push(true);
        assert_eq!(h.bits(), 0b101);
    }

    #[test]
    fn history_is_bounded() {
        let mut h = GlobalHistory::new(3);
        for _ in 0..10 {
            h.push(true);
        }
        assert_eq!(h.bits(), 0b111);
    }

    #[test]
    fn repair_restores_and_corrects() {
        let mut h = GlobalHistory::new(8);
        h.push(true);
        let snapshot = h.bits();
        // Speculatively predicted not-taken, pushed 0, then went further.
        h.push(false);
        h.push(true);
        h.push(true);
        // Branch resolves: actually taken. Repair to snapshot + actual.
        h.repair(snapshot, true);
        assert_eq!(h.bits(), 0b11);
    }

    #[test]
    fn full_width_history() {
        let mut h = GlobalHistory::new(64);
        h.push(true);
        assert_eq!(h.bits(), 1);
    }

    #[test]
    #[should_panic(expected = "history length")]
    fn zero_length_rejected() {
        GlobalHistory::new(0);
    }

    #[test]
    #[should_panic(expected = "history length")]
    fn overlong_rejected() {
        GlobalHistory::new(65);
    }
}
