//! JRS-style branch confidence estimation.
//!
//! Jacobsen, Rotenberg and Smith ("Assigning confidence to conditional
//! branch predictions", MICRO-29) proposed tables of *resetting ones
//! counters*: each correct prediction increments a saturating counter, any
//! misprediction resets it to zero. A branch whose counter is high has had a
//! long streak of correct predictions and is *high confidence*; TME forks
//! alternate paths only on low-confidence branches (paper Section 2).

/// A table of resetting ones-counters indexed gshare-style.
#[derive(Debug, Clone)]
pub struct ConfidenceEstimator {
    table: Vec<u8>,
    index_mask: u64,
    max: u8,
    threshold: u8,
}

impl ConfidenceEstimator {
    /// Creates an estimator.
    ///
    /// `max` is the saturation ceiling; a branch is confident when its
    /// counter is at least `threshold`.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two, or `threshold > max`,
    /// or `threshold == 0` (which would make every branch confident and
    /// disable TME entirely).
    pub fn new(entries: usize, max: u8, threshold: u8) -> ConfidenceEstimator {
        assert!(
            entries.is_power_of_two() && entries > 0,
            "table size must be a power of two"
        );
        assert!(
            threshold <= max,
            "threshold must not exceed the saturation ceiling"
        );
        assert!(
            threshold > 0,
            "a zero threshold disables low-confidence detection"
        );
        ConfidenceEstimator {
            table: vec![0; entries],
            index_mask: (entries - 1) as u64,
            max,
            threshold,
        }
    }

    fn index(&self, pc: u64, history: u64) -> usize {
        (((pc >> 2) ^ history) & self.index_mask) as usize
    }

    /// Whether the branch at `pc` (under `history`) is high-confidence.
    pub fn is_confident(&self, pc: u64, history: u64) -> bool {
        self.table[self.index(pc, history)] >= self.threshold
    }

    /// Records whether the prediction for this branch was correct.
    pub fn update(&mut self, pc: u64, history: u64, correct: bool) {
        let idx = self.index(pc, history);
        let c = &mut self.table[idx];
        if correct {
            *c = (*c + 1).min(self.max);
        } else {
            *c = 0;
        }
    }

    /// The raw ones-counter for the branch at `pc` under `history` — the
    /// per-branch telemetry behind `is_confident` (read-only).
    pub fn level(&self, pc: u64, history: u64) -> u8 {
        self.table[self.index(pc, history)]
    }

    /// The confidence threshold.
    pub fn threshold(&self) -> u8 {
        self.threshold
    }

    /// The saturation ceiling.
    pub fn max_level(&self) -> u8 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> ConfidenceEstimator {
        ConfidenceEstimator::new(1024, 15, 12)
    }

    #[test]
    fn starts_low_confidence() {
        let c = fresh();
        assert!(!c.is_confident(0x1000, 0));
    }

    #[test]
    fn streak_builds_confidence() {
        let mut c = fresh();
        for _ in 0..12 {
            c.update(0x1000, 0, true);
        }
        assert!(c.is_confident(0x1000, 0));
    }

    #[test]
    fn one_mispredict_resets() {
        let mut c = fresh();
        for _ in 0..15 {
            c.update(0x1000, 0, true);
        }
        assert!(c.is_confident(0x1000, 0));
        c.update(0x1000, 0, false);
        assert!(!c.is_confident(0x1000, 0));
        // Needs a full streak again.
        for _ in 0..11 {
            c.update(0x1000, 0, true);
        }
        assert!(!c.is_confident(0x1000, 0));
        c.update(0x1000, 0, true);
        assert!(c.is_confident(0x1000, 0));
    }

    #[test]
    fn counter_saturates() {
        let mut c = fresh();
        for _ in 0..1000 {
            c.update(0x1000, 0, true);
        }
        // Still behaves (no overflow) and stays confident.
        assert!(c.is_confident(0x1000, 0));
    }

    #[test]
    fn different_history_different_entry() {
        let mut c = fresh();
        for _ in 0..15 {
            c.update(0x1000, 0b1, true);
        }
        assert!(c.is_confident(0x1000, 0b1));
        assert!(!c.is_confident(0x1000, 0b10));
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn threshold_above_max_rejected() {
        ConfidenceEstimator::new(16, 3, 4);
    }

    #[test]
    #[should_panic(expected = "disables")]
    fn zero_threshold_rejected() {
        ConfidenceEstimator::new(16, 3, 0);
    }
}
