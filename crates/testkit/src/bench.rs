//! A tiny wall-clock bench runner: the workspace's replacement for
//! Criterion.
//!
//! No statistics machinery — each benchmark is warmed once, then timed
//! for a fixed number of samples, and min/median/mean are printed. That
//! is enough to spot simulator-throughput regressions, which is all the
//! `figures` bench target exists for. Sample count comes from
//! `MULTIPATH_BENCH_SAMPLES` (default 10).

use std::time::{Duration, Instant};

/// Collects and prints wall-clock timings for named closures.
pub struct BenchRunner {
    samples: usize,
    results: Vec<(String, Vec<Duration>)>,
}

impl Default for BenchRunner {
    fn default() -> Self {
        Self::from_env()
    }
}

impl BenchRunner {
    /// A runner taking `MULTIPATH_BENCH_SAMPLES` samples per benchmark.
    pub fn from_env() -> BenchRunner {
        let samples = std::env::var("MULTIPATH_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(10);
        BenchRunner {
            samples,
            results: Vec::new(),
        }
    }

    /// Times `f` (one warm-up iteration, then `samples` timed ones) and
    /// prints the result line immediately.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        std::hint::black_box(f());
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(f());
            times.push(start.elapsed());
        }
        times.sort();
        println!("{:32} {}", name, summary(&times));
        self.results.push((name.to_owned(), times));
    }

    /// Timings recorded so far, in registration order.
    pub fn results(&self) -> &[(String, Vec<Duration>)] {
        &self.results
    }
}

fn summary(sorted: &[Duration]) -> String {
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    format!(
        "min {:>9} median {:>9} mean {:>9} ({} samples)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
        sorted.len()
    )
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3}s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.2}us", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_records_requested_samples() {
        std::env::remove_var("MULTIPATH_BENCH_SAMPLES");
        let mut r = BenchRunner::from_env();
        let mut calls = 0u32;
        r.bench("noop", || calls += 1);
        assert_eq!(r.results().len(), 1);
        assert_eq!(r.results()[0].1.len(), 10);
        assert_eq!(calls, 11, "one warm-up plus ten samples");
    }

    #[test]
    fn durations_format_with_sensible_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5ns");
        assert_eq!(fmt_duration(Duration::from_micros(42)), "42.00us");
        assert_eq!(fmt_duration(Duration::from_millis(7)), "7.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000s");
    }
}
