//! Shrinking: reducing a failing input to a smaller failing input.
//!
//! The strategy is *halving*: numbers shrink toward zero by repeated
//! halving, vectors offer their two halves (and their last-element-dropped
//! form, which lets lengths reach every value, not just powers of two),
//! and tuples shrink one component at a time. A candidate only replaces
//! the current input if the property still fails on it, so shrinkers may
//! propose values outside the generator's domain without harm.

/// Types that can propose smaller versions of themselves.
///
/// The default implementation proposes nothing, which is always sound —
/// opaque enums in test files can opt in with `impl Shrink for Foo {}`.
pub trait Shrink: Sized {
    /// Candidate reductions, most aggressive first.
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! impl_shrink_unsigned {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<Self> {
                if *self == 0 {
                    Vec::new()
                } else {
                    vec![0, *self / 2]
                }
            }
        }
    )*};
}
impl_shrink_unsigned!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_shrink_signed {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<Self> {
                if *self == 0 {
                    Vec::new()
                } else {
                    vec![0, *self / 2]
                }
            }
        }
    )*};
}
impl_shrink_signed!(i8, i16, i32, i64, i128, isize);

impl Shrink for bool {
    fn shrink(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Shrink for f64 {
    fn shrink(&self) -> Vec<Self> {
        if *self == 0.0 {
            Vec::new()
        } else {
            vec![0.0, *self / 2.0]
        }
    }
}

impl<T: Shrink + Clone> Shrink for Vec<T> {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        let n = self.len();
        if n == 0 {
            return out;
        }
        // Halves first (big reductions), then drop-last (fills in lengths
        // halving skips), then element-wise shrinks (keeps length).
        if n > 1 {
            out.push(self[..n / 2].to_vec());
            out.push(self[n / 2..].to_vec());
        }
        out.push(self[..n - 1].to_vec());
        for (i, item) in self.iter().enumerate() {
            for smaller in item.shrink() {
                let mut v = self.clone();
                v[i] = smaller;
                out.push(v);
            }
        }
        out
    }
}

macro_rules! impl_shrink_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Shrink + Clone),+> Shrink for ($($name,)+) {
            fn shrink(&self) -> Vec<Self> {
                let mut out = Vec::new();
                $(
                    for smaller in self.$idx.shrink() {
                        let mut t = self.clone();
                        t.$idx = smaller;
                        out.push(t);
                    }
                )+
                out
            }
        }
    )*};
}
impl_shrink_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_halve_toward_zero() {
        assert_eq!(100u64.shrink(), vec![0, 50]);
        assert_eq!((-8i32).shrink(), vec![0, -4]);
        assert!(0u8.shrink().is_empty());
    }

    #[test]
    fn vectors_offer_halves_and_drop_last() {
        let v = vec![1u8, 2, 3, 4];
        let candidates = v.shrink();
        assert!(candidates.contains(&vec![1, 2]));
        assert!(candidates.contains(&vec![3, 4]));
        assert!(candidates.contains(&vec![1, 2, 3]));
    }

    #[test]
    fn tuples_shrink_componentwise() {
        let candidates = (4u8, true).shrink();
        assert!(candidates.contains(&(0, true)));
        assert!(candidates.contains(&(2, true)));
        assert!(candidates.contains(&(4, false)));
    }
}
