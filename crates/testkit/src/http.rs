//! A minimal blocking HTTP/1.1 client for exercising `multipath serve`
//! in tests and examples.
//!
//! One request per connection (the client always sends
//! `Connection: close`), bodies framed by `Content-Length`, chunked
//! transfer encoding, or connection close — the three framings the
//! serving layer emits. Like the rest of this crate it is a *test* tool:
//! clarity over throughput, std only, and errors are strings.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed HTTP response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// The numeric status code (200, 404, 429, ...).
    pub status: u16,
    /// Header `(name, value)` pairs in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The response body, de-chunked if the server chunked it.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// The first header with the given name (case-insensitive), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy — test assertions want strings).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Sends `GET path` to the server at `addr` and reads the full response.
pub fn get(addr: SocketAddr, path: &str) -> Result<HttpResponse, String> {
    request(addr, "GET", path, &[], b"")
}

/// Sends `POST path` with a JSON body and reads the full response.
pub fn post_json(addr: SocketAddr, path: &str, body: &str) -> Result<HttpResponse, String> {
    request(
        addr,
        "POST",
        path,
        &[("Content-Type", "application/json")],
        body.as_bytes(),
    )
}

/// Sends one request and reads the full response. `extra_headers` are
/// appended after the generated `Host`, `Content-Length`, and
/// `Connection: close` headers.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> Result<HttpResponse, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .map_err(|e| format!("set timeout: {e}"))?;
    let mut stream = stream;
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .map_err(|e| format!("send request: {e}"))?;
    read_response(BufReader::new(stream))
}

/// Parses a response from any buffered byte stream (exposed so tests can
/// feed canned bytes without a socket).
pub fn read_response<R: BufRead>(mut reader: R) -> Result<HttpResponse, String> {
    let status_line = read_line(&mut reader)?;
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(format!("not an HTTP response: {status_line:?}"));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line: {status_line:?}"))?;

    let mut headers = Vec::new();
    loop {
        let line = read_line(&mut reader)?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| format!("bad header line: {line:?}"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let chunked = headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok());

    let body = if chunked {
        read_chunked(&mut reader)?
    } else if let Some(n) = content_length {
        let mut buf = vec![0u8; n];
        reader
            .read_exact(&mut buf)
            .map_err(|e| format!("read body ({n} bytes): {e}"))?;
        buf
    } else {
        // Framed by connection close.
        let mut buf = Vec::new();
        reader
            .read_to_end(&mut buf)
            .map_err(|e| format!("read body to EOF: {e}"))?;
        buf
    };
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

/// Reads one CRLF-terminated line, returning it without the terminator.
fn read_line<R: BufRead>(reader: &mut R) -> Result<String, String> {
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read line: {e}"))?;
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Decodes a chunked body: `<hex size>\r\n<bytes>\r\n` repeated, ended by
/// a zero-size chunk (trailers are read and discarded).
fn read_chunked<R: BufRead>(reader: &mut R) -> Result<Vec<u8>, String> {
    let mut body = Vec::new();
    loop {
        let size_line = read_line(reader)?;
        let size_hex = size_line.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_hex, 16)
            .map_err(|_| format!("bad chunk size line: {size_line:?}"))?;
        if size == 0 {
            // Discard optional trailers up to the final blank line.
            loop {
                if read_line(reader)?.is_empty() {
                    return Ok(body);
                }
            }
        }
        let start = body.len();
        body.resize(start + size, 0);
        reader
            .read_exact(&mut body[start..])
            .map_err(|e| format!("read chunk of {size}: {e}"))?;
        let sep = read_line(reader)?;
        if !sep.is_empty() {
            return Err(format!("missing CRLF after chunk: {sep:?}"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    #[test]
    fn parses_content_length_response() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nContent-Length: 5\r\n\r\nhello";
        let r = read_response(&raw[..]).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.header("content-type"), Some("text/plain"));
        assert_eq!(r.header("Content-Type"), Some("text/plain"));
        assert_eq!(r.text(), "hello");
    }

    #[test]
    fn parses_chunked_response() {
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n\
                    5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n";
        let r = read_response(&raw[..]).unwrap();
        assert_eq!(r.text(), "hello world");
    }

    #[test]
    fn parses_close_framed_response() {
        let raw = b"HTTP/1.1 429 Too Many Requests\r\n\r\n{\"error\":\"overloaded\"}";
        let r = read_response(&raw[..]).unwrap();
        assert_eq!(r.status, 429);
        assert_eq!(r.text(), "{\"error\":\"overloaded\"}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_response(&b"not http at all\r\n\r\n"[..]).is_err());
    }

    #[test]
    fn round_trips_against_a_real_socket() {
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let mut buf = [0u8; 4096];
            // Read at least the request head before answering.
            let mut seen = Vec::new();
            while !seen.windows(4).any(|w| w == b"\r\n\r\n") {
                let n = conn.read(&mut buf).unwrap();
                assert!(n > 0, "client closed early");
                seen.extend_from_slice(&buf[..n]);
            }
            let text = String::from_utf8_lossy(&seen);
            assert!(text.starts_with("POST /echo HTTP/1.1\r\n"), "{text}");
            conn.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok")
                .unwrap();
        });
        let r = post_json(addr, "/echo", "{}").unwrap();
        assert_eq!((r.status, r.text().as_str()), (200, "ok"));
        server.join().unwrap();
    }
}
