//! The property-test runner behind [`prop_test!`](crate::prop_test).
//!
//! Each case derives its own [`TestRng`] from a per-test base seed mixed
//! with the case index, so failures reproduce exactly: rerun with
//! `MULTIPATH_PROP_SEED=<seed>` (printed on failure) to replay a single
//! failing case. `MULTIPATH_PROP_CASES` overrides the case count globally.

use crate::rng::{mix64, TestRng};
use crate::shrink::Shrink;

/// Evaluation budget for the shrink loop: how many candidate inputs may
/// be retried while minimising a failure.
const MAX_SHRINK_EVALS: usize = 1024;

/// Default number of cases per property, overridable with
/// `MULTIPATH_PROP_CASES`.
pub fn default_cases() -> u64 {
    std::env::var("MULTIPATH_PROP_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

fn base_seed(name: &str) -> u64 {
    if let Some(s) = std::env::var("MULTIPATH_PROP_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
    {
        return s;
    }
    // FNV-1a over the test name: every property gets its own stream.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `prop` against `cases` inputs drawn from `gen`; on failure,
/// shrinks by halving and panics with the minimised input and the seed
/// that reproduces it.
pub fn check<T, G, P>(name: &str, cases: u64, gen: G, prop: P)
where
    T: Clone + std::fmt::Debug + Shrink,
    G: Fn(&mut TestRng) -> T,
    P: Fn(T) -> Result<(), String>,
{
    let base = base_seed(name);
    for case in 0..cases {
        let seed = mix64(base ^ mix64(case));
        let input = gen(&mut TestRng::new(seed));
        if let Err(msg) = prop(input.clone()) {
            let (min_input, min_msg, steps) = minimise(input, msg, &prop);
            panic!(
                "property `{name}` failed (case {case}/{cases}, case seed {seed}, \
                 {steps} shrink steps; MULTIPATH_PROP_SEED={base} reproduces this run)\n\
                 minimal input: {min_input:?}\n{min_msg}"
            );
        }
    }
}

/// Greedy shrink: repeatedly replace the failing input with its first
/// still-failing candidate until no candidate fails or the budget runs
/// out. Returns the minimised input, its failure message, and how many
/// successful reductions were applied.
fn minimise<T, P>(mut input: T, mut msg: String, prop: &P) -> (T, String, usize)
where
    T: Clone + std::fmt::Debug + Shrink,
    P: Fn(T) -> Result<(), String>,
{
    let mut evals = 0usize;
    let mut steps = 0usize;
    'outer: loop {
        for candidate in input.shrink() {
            if evals >= MAX_SHRINK_EVALS {
                break 'outer;
            }
            evals += 1;
            if let Err(m) = prop(candidate.clone()) {
                input = candidate;
                msg = m;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (input, msg, steps)
}

/// Declares property tests: `N` random cases each, shrink-by-halving on
/// failure. The drop-in replacement for the `proptest!` macro this
/// workspace used to pull from crates.io.
///
/// ```
/// multipath_testkit::prop_test! {
///     /// Addition commutes.
///     fn add_commutes(pair in |rng: &mut multipath_testkit::TestRng|
///         (rng.next_u32(), rng.next_u32()))
///     {
///         let (a, b) = pair;
///         multipath_testkit::prop_assert_eq!(
///             a as u64 + b as u64, b as u64 + a as u64);
///     }
/// }
/// ```
///
/// An optional `cases = N` after the generator overrides the default
/// case count for that property.
#[macro_export]
macro_rules! prop_test {
    () => {};
    (
        $(#[$meta:meta])*
        fn $name:ident($arg:ident in $gen:expr $(, cases = $cases:expr)? $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            #[allow(unused_mut, unused_assignments)]
            let mut cases: u64 = $crate::prop::default_cases();
            $(cases = $cases;)?
            $crate::prop::check(
                stringify!($name),
                cases,
                $gen,
                |$arg| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::<(), ::std::string::String>::Ok(())
                },
            );
        }
        $crate::prop_test! { $($rest)* }
    };
}

/// `assert!` for property bodies: fails the case (triggering shrinking)
/// instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err(::std::format!(
                "{}\n  left: {:?}\n right: {:?}", ::std::format!($($fmt)+), l, r));
        }
    }};
}
