//! A minimal recursive-descent JSON parser for round-trip tests.
//!
//! The workspace emits hand-rendered JSON (bench reports, Perfetto traces,
//! stats documents) and carries no external crates, so validating that
//! output needs a parser of our own. This one covers the full JSON grammar
//! the emitters use: objects, arrays, strings with `\uXXXX`/standard
//! escapes, numbers (parsed as `f64` — every emitted integer fits 2^53),
//! booleans, and null. It is a *test* tool: errors favour clarity over
//! speed, and numbers beyond f64's integer range are out of scope.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers are exact up to 2^53).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. BTreeMap keeps iteration deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Object member lookup (`None` on non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an exact u64, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("JSON error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {lit}")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut vec = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(vec));
        }
        loop {
            self.skip_ws();
            vec.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(vec));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by our
                            // renderers; map them to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = rest.chars().next().ok_or_else(|| self.err("eof"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#" {"a": [1, 2.5, -3e2], "b": {"x": true, "y": null}, "s": "h\niA"} "#;
        let v = Json::parse(doc).unwrap();
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_f64(), Some(2.5));
        assert_eq!(a[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("x"), Some(&Json::Bool(true)));
        assert_eq!(v.get("s").unwrap().as_str(), Some("h\niA"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(Json::parse("{}").unwrap(), Json::Obj(BTreeMap::new()));
    }
}
