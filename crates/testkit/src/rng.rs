//! Deterministic random number generation for tests and workloads.
//!
//! [`TestRng`] is xoshiro256** seeded through a SplitMix64 expansion of a
//! single `u64`, the construction Blackman & Vigna recommend. It is the
//! workspace's replacement for the `rand` crate: the whole test suite must
//! produce bit-identical case streams on every platform and toolchain, so
//! the generator is pinned here rather than inherited from a dependency.

/// SplitMix64 (Steele et al.): a tiny 64-bit mixer used to expand seeds.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix64(self.state)
    }
}

/// The SplitMix64 output mixer as a pure function: hashes `x` to a
/// well-distributed 64-bit value. Used for deriving per-case seeds.
pub fn mix64(x: u64) -> u64 {
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic xoshiro256** generator with convenience samplers.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates a generator whose state is the SplitMix64 expansion of
    /// `seed` (so nearby seeds give uncorrelated streams).
    pub fn new(seed: u64) -> TestRng {
        let mut sm = SplitMix64::new(seed);
        TestRng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Next 16 random bits.
    pub fn next_u16(&mut self) -> u16 {
        (self.next_u64() >> 48) as u16
    }

    /// A uniformly random `bool`.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A double uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A value uniform in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is empty");
        // Multiply-shift bounded sampling (Lemire); bias is < 2^-64 per
        // draw, far below what any test here could observe.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A value uniform in the half-open range `lo..hi`.
    pub fn in_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        range.start + self.below(range.end - range.start)
    }

    /// A signed value uniform in the half-open range `lo..hi`.
    pub fn in_irange(&mut self, range: std::ops::Range<i64>) -> i64 {
        assert!(range.start < range.end, "empty range");
        range
            .start
            .wrapping_add(self.below(range.end.wrapping_sub(range.start) as u64) as i64)
    }

    /// A length uniform in the half-open range `lo..hi`.
    pub fn len_in(&mut self, range: std::ops::Range<usize>) -> usize {
        self.in_range(range.start as u64..range.end as u64) as usize
    }

    /// A vector whose length is drawn from `len` and whose elements come
    /// from `element`.
    pub fn vec<T>(
        &mut self,
        len: std::ops::Range<usize>,
        mut element: impl FnMut(&mut TestRng) -> T,
    ) -> Vec<T> {
        let n = self.len_in(len);
        (0..n).map(|_| element(self)).collect()
    }

    /// A uniformly random element of `items` (must be non-empty).
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::new(7);
        for bound in [1u64, 2, 3, 10, 255, 1 << 40] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn in_range_covers_endpoints() {
        let mut rng = TestRng::new(8);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2_000 {
            match rng.in_range(5..8) {
                5 => seen_lo = true,
                7 => seen_hi = true,
                6 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn irange_handles_negatives() {
        let mut rng = TestRng::new(9);
        for _ in 0..1_000 {
            let v = rng.in_irange(-20..-3);
            assert!((-20..-3).contains(&v), "{v}");
        }
    }
}
