//! `multipath-testkit` — zero-dependency test support for the workspace.
//!
//! The simulator's experiments must be reproducible bit-for-bit on any
//! machine with nothing but a Rust toolchain, so the workspace carries no
//! external crates at all. This crate supplies what the test suite used
//! to pull from crates.io:
//!
//! - [`TestRng`]: a deterministic xoshiro256**/SplitMix64 generator
//!   (replacing `rand`),
//! - [`prop_test!`]: a property-test macro running N random cases with
//!   shrink-by-halving on failure (replacing `proptest`),
//! - [`BenchRunner`]: a wall-clock micro-bench runner (replacing
//!   `criterion`),
//! - [`Json`]: a minimal JSON parser for round-tripping the workspace's
//!   hand-rendered reports and traces (replacing `serde_json`),
//! - [`http`]: a minimal blocking HTTP/1.1 client for loopback tests of
//!   `multipath serve` (replacing `reqwest`/`ureq`).
//!
//! # Examples
//!
//! ```
//! use multipath_testkit::TestRng;
//!
//! let mut a = TestRng::new(42);
//! let mut b = TestRng::new(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

#![deny(missing_docs)]

pub mod bench;
pub mod http;
pub mod json;
pub mod prop;
pub mod rng;
pub mod shrink;

pub use bench::BenchRunner;
pub use http::HttpResponse;
pub use json::Json;
pub use rng::{mix64, SplitMix64, TestRng};
pub use shrink::Shrink;
