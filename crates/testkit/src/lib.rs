//! `multipath-testkit` — zero-dependency test support for the workspace.
//!
//! The simulator's experiments must be reproducible bit-for-bit on any
//! machine with nothing but a Rust toolchain, so the workspace carries no
//! external crates at all. This crate supplies the three things the test
//! suite used to pull from crates.io:
//!
//! - [`TestRng`]: a deterministic xoshiro256**/SplitMix64 generator
//!   (replacing `rand`),
//! - [`prop_test!`]: a property-test macro running N random cases with
//!   shrink-by-halving on failure (replacing `proptest`),
//! - [`BenchRunner`]: a wall-clock micro-bench runner (replacing
//!   `criterion`),
//! - [`Json`]: a minimal JSON parser for round-tripping the workspace's
//!   hand-rendered reports and traces (replacing `serde_json`).
//!
//! # Examples
//!
//! ```
//! use multipath_testkit::TestRng;
//!
//! let mut a = TestRng::new(42);
//! let mut b = TestRng::new(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

pub mod bench;
pub mod json;
pub mod prop;
pub mod rng;
pub mod shrink;

pub use bench::BenchRunner;
pub use json::Json;
pub use rng::{mix64, SplitMix64, TestRng};
pub use shrink::Shrink;
