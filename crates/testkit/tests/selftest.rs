//! The testkit testing itself: reproducibility of the RNG, behaviour of
//! the property runner, and the shrinker actually minimising failures.

use multipath_testkit::{prop::check, SplitMix64, TestRng};

#[test]
fn rng_streams_are_reproducible_per_seed() {
    for seed in [0u64, 1, 2, 0xdead_beef, u64::MAX] {
        let mut a = TestRng::new(seed);
        let mut b = TestRng::new(seed);
        for _ in 0..256 {
            assert_eq!(a.next_u64(), b.next_u64(), "seed {seed} diverged");
        }
    }
}

#[test]
fn rng_streams_differ_across_seeds() {
    // Adjacent seeds must decorrelate (the SplitMix64 expansion's job).
    let first: Vec<u64> = (0..16).map(|s| TestRng::new(s).next_u64()).collect();
    let distinct: std::collections::HashSet<&u64> = first.iter().collect();
    assert_eq!(distinct.len(), first.len(), "seed collision in {first:?}");
}

#[test]
fn splitmix_matches_reference_vector() {
    // Reference output of SplitMix64 for seed 1234567, from the public
    // domain implementation by Sebastiano Vigna.
    let mut sm = SplitMix64::new(1234567);
    assert_eq!(sm.next_u64(), 6457827717110365317);
    assert_eq!(sm.next_u64(), 3203168211198807973);
}

#[test]
fn rng_bool_and_f64_are_calibrated() {
    let mut rng = TestRng::new(31);
    let heads = (0..10_000).filter(|_| rng.next_bool()).count();
    assert!((4_700..5_300).contains(&heads), "biased bool: {heads}");
    let mean: f64 = (0..10_000).map(|_| rng.next_f64()).sum::<f64>() / 10_000.0;
    assert!((0.48..0.52).contains(&mean), "biased f64: {mean}");
}

#[test]
fn passing_property_runs_all_cases() {
    let count = std::cell::Cell::new(0u64);
    check(
        "always_passes",
        32,
        |rng| rng.next_u64(),
        |_| {
            count.set(count.get() + 1);
            Ok(())
        },
    );
    assert_eq!(count.get(), 32);
}

#[test]
fn failing_property_shrinks_to_minimal_vector() {
    // Property: "no vector contains an element >= 100". The shrinker
    // must reduce any failing vector to exactly one offending element,
    // itself halved down to the boundary's power-of-two neighbourhood.
    let result = std::panic::catch_unwind(|| {
        check(
            "shrinks_to_boundary",
            64,
            |rng| rng.vec(1..40, |r| r.below(1_000)),
            |v: Vec<u64>| {
                if v.iter().any(|&x| x >= 100) {
                    Err("element over limit".to_owned())
                } else {
                    Ok(())
                }
            },
        );
    });
    let msg = *result
        .expect_err("property must fail")
        .downcast::<String>()
        .unwrap();
    assert!(msg.contains("minimal input"), "no shrink report in: {msg}");
    // Parse the reported vector back out and verify it is minimal: a
    // single element that still violates the property.
    let inner = msg
        .split('[')
        .nth(1)
        .and_then(|s| s.split(']').next())
        .unwrap();
    let items: Vec<u64> = inner
        .split(',')
        .map(|s| s.trim().parse().unwrap())
        .collect();
    assert_eq!(items.len(), 1, "shrinker left extra elements: {items:?}");
    assert!(items[0] >= 100, "shrunk input no longer fails: {items:?}");
    assert!(
        items[0] < 200,
        "halving should stop near the boundary: {items:?}"
    );
}

#[test]
fn failing_scalar_shrinks_toward_zero() {
    let result = std::panic::catch_unwind(|| {
        check(
            "scalar_halves",
            64,
            |rng| rng.in_range(1..u64::MAX >> 1),
            |x: u64| {
                if x >= 7 {
                    Err("too big".into())
                } else {
                    Ok(())
                }
            },
        );
    });
    let msg = *result
        .expect_err("property must fail")
        .downcast::<String>()
        .unwrap();
    let min: u64 = msg
        .split("minimal input: ")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .unwrap()
        .parse()
        .unwrap();
    assert!(
        (7..14).contains(&min),
        "expected halving to land in 7..14, got {min}"
    );
}

multipath_testkit::prop_test! {
    /// The macro itself: generators see a fresh deterministic RNG per
    /// case and the body's prop_assert! plumbing works.
    fn macro_smoke(pair in |rng: &mut TestRng| (rng.next_u32(), rng.next_u32()), cases = 16) {
        let (a, b) = pair;
        multipath_testkit::prop_assert_eq!(a as u64 + b as u64, b as u64 + a as u64);
        multipath_testkit::prop_assert!(a as u64 + (b as u64) < 1 << 33);
    }
}
