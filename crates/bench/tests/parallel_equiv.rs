//! Serial-vs-parallel equivalence: the sweep engine must be a pure
//! scheduling change. Every statistic of every cell, and therefore every
//! rendered table, must be bit-identical whether cells run on one worker
//! or many.

use multipath_bench::{parallel, render_figure3, run_cell, Budget, Cell, Fig3Row};
use multipath_core::{Features, SimConfig};
use multipath_workload::{mix, Benchmark};

fn tiny_budget() -> Budget {
    let mut b = Budget::quick();
    b.committed_per_program = 1_500;
    b
}

fn sweep_cells(budget: &Budget) -> Vec<Cell> {
    let mut cells = Vec::new();
    for bench in [Benchmark::Compress, Benchmark::Go, Benchmark::Tomcatv] {
        for features in [Features::smt(), Features::rec_rs_ru()] {
            cells.push(Cell {
                config: SimConfig::big_2_16().with_features(features),
                workload: vec![bench],
                seed: budget.seed,
            });
        }
    }
    cells.push(Cell {
        config: SimConfig::big_2_16().with_features(Features::rec_rs_ru()),
        workload: mix::rotations(4)[0].clone(),
        seed: budget.seed,
    });
    cells
}

#[test]
fn run_cell_results_are_identical_across_thread_counts() {
    let budget = tiny_budget();
    let cells = sweep_cells(&budget);
    let serial = parallel::map_with(1, &cells, |c| run_cell(c, &budget));
    for threads in [2usize, 4, 8] {
        let sharded = parallel::map_with(threads, &cells, |c| run_cell(c, &budget));
        // Stats is plain data with a derived Debug covering every counter;
        // equal Debug output means equal statistics.
        for (i, (a, b)) in serial.iter().zip(&sharded).enumerate() {
            assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "cell {i} diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn rendered_tables_are_byte_identical_across_thread_counts() {
    let budget = tiny_budget();
    let benches = [Benchmark::Compress, Benchmark::Li];
    let cells: Vec<Cell> = benches
        .iter()
        .flat_map(|&bench| {
            Features::all_six().into_iter().map(move |features| Cell {
                config: SimConfig::big_2_16().with_features(features),
                workload: vec![bench],
                seed: budget.seed,
            })
        })
        .collect();
    let render = |stats: &[multipath_core::Stats]| {
        let rows: Vec<Fig3Row> = benches
            .iter()
            .enumerate()
            .map(|(bi, &bench)| {
                let mut ipc = [0.0; 6];
                for (fi, v) in ipc.iter_mut().enumerate() {
                    *v = stats[bi * 6 + fi].ipc();
                }
                Fig3Row { bench, ipc }
            })
            .collect();
        render_figure3(&rows)
    };
    let serial = render(&parallel::map_with(1, &cells, |c| run_cell(c, &budget)));
    let sharded = render(&parallel::map_with(6, &cells, |c| run_cell(c, &budget)));
    assert_eq!(
        serial, sharded,
        "rendered Figure 3 must not depend on thread count"
    );
}
