//! Wall-clock benches: time one representative simulation per experiment
//! so simulator-throughput regressions show up. (The *paper's* numbers
//! come from the fig3/fig4/fig5/fig6/table1 binaries; these measure the
//! cost of producing them.) Runs on the testkit's bench runner — plain
//! wall-clock samples, no external harness.

use multipath_bench::{run_cell, run_single, Budget, Cell};
use multipath_core::{AltPolicy, Features, SimConfig};
use multipath_testkit::BenchRunner;
use multipath_workload::{mix, Benchmark};

fn bench_budget() -> Budget {
    let mut b = Budget::quick();
    b.committed_per_program = 3_000;
    b
}

fn main() {
    let budget = bench_budget();
    let mut runner = BenchRunner::from_env();

    // Figure 3 cells: one benchmark under the full architecture and SMT.
    runner.bench("fig3/compress/rec_rs_ru", || {
        run_single(Benchmark::Compress, Features::rec_rs_ru(), &budget)
    });
    runner.bench("fig3/compress/smt", || {
        run_single(Benchmark::Compress, Features::smt(), &budget)
    });

    // Figure 4 cell: a 4-program mix under the full architecture.
    let fig4 = Cell {
        config: SimConfig::big_2_16().with_features(Features::rec_rs_ru()),
        workload: mix::rotations(4)[0].clone(),
        seed: 1,
    };
    runner.bench("fig4/4progs/rec_rs_ru", || run_cell(&fig4, &budget));

    // Figure 5 cell: the nostop-32 policy (most speculative sweep point).
    let fig5 = Cell {
        config: SimConfig::big_2_16()
            .with_features(Features::rec_rs_ru())
            .with_alt_policy(AltPolicy::NoStop(32)),
        workload: vec![Benchmark::Go],
        seed: 1,
    };
    runner.bench("fig5/go/nostop32", || run_cell(&fig5, &budget));

    // Figure 6 cell: the small.1.8 machine.
    let fig6 = Cell {
        config: SimConfig::small_1_8().with_features(Features::rec_rs_ru()),
        workload: vec![Benchmark::Vortex],
        seed: 1,
    };
    runner.bench("fig6/vortex/small18", || run_cell(&fig6, &budget));

    // Table 1 cell: statistics collection on the recycling-heavy kernel.
    runner.bench("table1/tomcatv/rec_rs_ru", || {
        run_single(Benchmark::Tomcatv, Features::rec_rs_ru(), &budget)
    });

    // The whole parallel sweep at the quick budget: end-to-end harness
    // throughput, sensitive to both simulator and scheduler regressions.
    runner.bench("suite/figure3/quick", || multipath_bench::figure3(&budget));
}
