//! Criterion benches: time one representative simulation per experiment so
//! simulator-throughput regressions show up. (The *papers'* numbers come
//! from the fig3/fig4/fig5/fig6/table1 binaries; these benches measure the
//! wall-clock cost of producing them.)

use criterion::{criterion_group, criterion_main, Criterion};
use multipath_bench::{run_cell, run_single, Budget, Cell};
use multipath_core::{AltPolicy, Features, SimConfig};
use multipath_workload::{mix, Benchmark};
use std::hint::black_box;

fn bench_budget() -> Budget {
    let mut b = Budget::quick();
    b.committed_per_program = 3_000;
    b
}

/// Figure 3 cell: one benchmark under the full architecture.
fn fig3_cell(c: &mut Criterion) {
    let budget = bench_budget();
    c.bench_function("fig3/compress/rec_rs_ru", |b| {
        b.iter(|| {
            black_box(run_single(Benchmark::Compress, Features::rec_rs_ru(), &budget))
        })
    });
    c.bench_function("fig3/compress/smt", |b| {
        b.iter(|| black_box(run_single(Benchmark::Compress, Features::smt(), &budget)))
    });
}

/// Figure 4 cell: a 4-program mix under the full architecture.
fn fig4_cell(c: &mut Criterion) {
    let budget = bench_budget();
    let cell = Cell {
        config: SimConfig::big_2_16().with_features(Features::rec_rs_ru()),
        workload: mix::rotations(4)[0].clone(),
        seed: 1,
    };
    c.bench_function("fig4/4progs/rec_rs_ru", |b| {
        b.iter(|| black_box(run_cell(&cell, &budget)))
    });
}

/// Figure 5 cell: the nostop-32 policy (most speculative sweep point).
fn fig5_cell(c: &mut Criterion) {
    let budget = bench_budget();
    let cell = Cell {
        config: SimConfig::big_2_16()
            .with_features(Features::rec_rs_ru())
            .with_alt_policy(AltPolicy::NoStop(32)),
        workload: vec![Benchmark::Go],
        seed: 1,
    };
    c.bench_function("fig5/go/nostop32", |b| b.iter(|| black_box(run_cell(&cell, &budget))));
}

/// Figure 6 cell: the small.1.8 machine.
fn fig6_cell(c: &mut Criterion) {
    let budget = bench_budget();
    let cell = Cell {
        config: SimConfig::small_1_8().with_features(Features::rec_rs_ru()),
        workload: vec![Benchmark::Vortex],
        seed: 1,
    };
    c.bench_function("fig6/vortex/small18", |b| b.iter(|| black_box(run_cell(&cell, &budget))));
}

/// Table 1 cell: statistics collection on the recycling-heavy kernel.
fn table1_cell(c: &mut Criterion) {
    let budget = bench_budget();
    c.bench_function("table1/tomcatv/rec_rs_ru", |b| {
        b.iter(|| black_box(run_single(Benchmark::Tomcatv, Features::rec_rs_ru(), &budget)))
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = fig3_cell, fig4_cell, fig5_cell, fig6_cell, table1_cell
}
criterion_main!(figures);
