//! The parallel sweep engine: shards experiment cells across scoped
//! worker threads with byte-identical output to a serial run.
//!
//! Every figure runner in this crate builds its full cell list up front,
//! maps it through [`run_cells`], and aggregates the results *in list
//! order*. Workers pull cell indices from a shared atomic counter, so any
//! thread may simulate any cell, but each cell is deterministic given its
//! own seed and results land back at their original index — aggregation
//! order (and thus floating-point summation order, and thus the rendered
//! tables) never depends on the thread count.
//!
//! Thread count comes from `MULTIPATH_THREADS`; unset or invalid falls
//! back to the machine's available parallelism. `MULTIPATH_THREADS=1` is
//! the serial mode the CI determinism gate compares against.

use crate::{run_cell, Budget, Cell};
use multipath_core::Stats;
use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Worker-thread count: `MULTIPATH_THREADS` if set to a positive integer,
/// otherwise the machine's available parallelism.
pub fn thread_count() -> usize {
    match std::env::var("MULTIPATH_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1),
    }
}

/// Applies `f` to every item on [`thread_count`] workers, returning
/// results in item order.
pub fn map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    map_with(thread_count(), items, f)
}

/// [`map`] with an explicit worker count. `threads <= 1` runs inline on
/// the calling thread; either way the result order is the item order.
pub fn map_with<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.min(items.len());
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

/// Runs every cell of a sweep in parallel; `out[i]` is the statistics of
/// `cells[i]`, exactly as a serial loop would produce them.
pub fn run_cells(cells: &[Cell], budget: &Budget) -> Vec<Stats> {
    map(cells, |cell| run_cell(cell, budget))
}

/// A queued unit of work for a [`WorkerPool`].
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why [`WorkerPool::try_execute`] refused a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolRejected {
    /// The bounded queue is at capacity — the caller should shed load
    /// (the serving layer turns this into HTTP 429).
    QueueFull,
    /// The pool is draining and accepts no new work.
    ShuttingDown,
}

/// Shared state between a [`WorkerPool`]'s handle and its threads.
struct PoolShared {
    queue: Mutex<PoolQueue>,
    /// Signals workers that a job (or shutdown) is available.
    available: Condvar,
    /// Queue capacity; `try_execute` rejects beyond this.
    capacity: usize,
    /// Jobs currently executing (not counting queued ones).
    running: AtomicUsize,
}

struct PoolQueue {
    jobs: VecDeque<Job>,
    draining: bool,
}

/// A fixed pool of persistent worker threads behind a bounded job queue.
///
/// This is the long-lived sibling of [`map_with`]: where the sweep engine
/// spawns scoped workers per call and shards a known cell list, the pool
/// keeps its threads across submissions and *rejects* work beyond its
/// queue bound instead of blocking — the backpressure primitive the
/// `multipath serve` layer builds its 429 behaviour on. Dropping (or
/// [`WorkerPool::shutdown`]-ing) the pool drains gracefully: queued and
/// running jobs finish, new submissions are refused.
///
/// # Examples
///
/// ```
/// use multipath_bench::parallel::WorkerPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// let pool = WorkerPool::new(2, 16);
/// let done = Arc::new(AtomicUsize::new(0));
/// for _ in 0..8 {
///     let done = done.clone();
///     pool.try_execute(move || {
///         done.fetch_add(1, Ordering::SeqCst);
///     })
///     .unwrap();
/// }
/// pool.shutdown();
/// assert_eq!(done.load(Ordering::SeqCst), 8);
/// ```
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `threads` persistent workers (at least one) behind a queue
    /// bounded at `capacity` pending jobs.
    pub fn new(threads: usize, capacity: usize) -> WorkerPool {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(PoolQueue {
                jobs: VecDeque::new(),
                draining: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
            running: AtomicUsize::new(0),
        });
        let workers = (0..threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mp-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// Submits a job, or rejects it immediately if the queue is full or
    /// the pool is draining. Never blocks the caller.
    pub fn try_execute<F>(&self, job: F) -> Result<(), PoolRejected>
    where
        F: FnOnce() + Send + 'static,
    {
        let mut q = self.shared.queue.lock().expect("pool queue poisoned");
        if q.draining {
            return Err(PoolRejected::ShuttingDown);
        }
        if q.jobs.len() >= self.shared.capacity {
            return Err(PoolRejected::QueueFull);
        }
        q.jobs.push_back(Box::new(job));
        drop(q);
        self.shared.available.notify_one();
        Ok(())
    }

    /// Jobs queued but not yet picked up by a worker.
    pub fn queue_depth(&self) -> usize {
        self.shared
            .queue
            .lock()
            .expect("pool queue poisoned")
            .jobs
            .len()
    }

    /// Jobs currently executing on a worker.
    pub fn running(&self) -> usize {
        self.shared.running.load(Ordering::Relaxed)
    }

    /// The worker-thread count.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Graceful drain: stop accepting jobs, finish everything queued and
    /// running, join the workers. Also performed on drop.
    pub fn shutdown(mut self) {
        self.drain();
    }

    fn drain(&mut self) {
        {
            let mut q = self.shared.queue.lock().expect("pool queue poisoned");
            q.draining = true;
        }
        self.shared.available.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.drain();
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                if q.draining {
                    return;
                }
                q = shared.available.wait(q).expect("pool queue poisoned");
            }
        };
        shared.running.fetch_add(1, Ordering::Relaxed);
        job();
        shared.running.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_item_order() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1, 2, 7, 16, 200] {
            let out = map_with(threads, &items, |&x| x * x);
            assert_eq!(
                out,
                items.iter().map(|x| x * x).collect::<Vec<_>>(),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn map_handles_empty_and_singleton() {
        assert_eq!(map_with(8, &[] as &[u64], |&x| x), Vec::<u64>::new());
        assert_eq!(map_with(8, &[5u64], |&x| x + 1), vec![6]);
    }

    #[test]
    fn thread_count_is_at_least_one() {
        assert!(thread_count() >= 1);
    }

    #[test]
    fn pool_runs_jobs_and_drains_on_shutdown() {
        use std::sync::atomic::AtomicUsize;
        let pool = WorkerPool::new(3, 64);
        assert_eq!(pool.threads(), 3);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..40 {
            let done = done.clone();
            pool.try_execute(move || {
                done.fetch_add(1, Ordering::SeqCst);
            })
            .expect("queue has room");
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 40);
    }

    #[test]
    fn pool_rejects_beyond_capacity() {
        // One worker wedged on a gate; capacity-1 queue fills after one
        // queued job.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let pool = WorkerPool::new(1, 1);
        let g = gate.clone();
        pool.try_execute(move || {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        })
        .unwrap();
        // Wait for the worker to pick the job up, then fill the queue.
        while pool.queue_depth() > 0 {
            std::thread::yield_now();
        }
        pool.try_execute(|| {}).unwrap();
        assert_eq!(pool.try_execute(|| {}), Err(PoolRejected::QueueFull));
        assert_eq!(pool.queue_depth(), 1);
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        pool.shutdown();
    }

    #[test]
    fn draining_pool_refuses_new_jobs() {
        let mut pool = WorkerPool::new(1, 4);
        pool.drain();
        assert_eq!(pool.try_execute(|| {}), Err(PoolRejected::ShuttingDown));
    }
}
