//! The parallel sweep engine: shards experiment cells across scoped
//! worker threads with byte-identical output to a serial run.
//!
//! Every figure runner in this crate builds its full cell list up front,
//! maps it through [`run_cells`], and aggregates the results *in list
//! order*. Workers pull cell indices from a shared atomic counter, so any
//! thread may simulate any cell, but each cell is deterministic given its
//! own seed and results land back at their original index — aggregation
//! order (and thus floating-point summation order, and thus the rendered
//! tables) never depends on the thread count.
//!
//! Thread count comes from `MULTIPATH_THREADS`; unset or invalid falls
//! back to the machine's available parallelism. `MULTIPATH_THREADS=1` is
//! the serial mode the CI determinism gate compares against.

use crate::{run_cell, Budget, Cell};
use multipath_core::Stats;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker-thread count: `MULTIPATH_THREADS` if set to a positive integer,
/// otherwise the machine's available parallelism.
pub fn thread_count() -> usize {
    match std::env::var("MULTIPATH_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1),
    }
}

/// Applies `f` to every item on [`thread_count`] workers, returning
/// results in item order.
pub fn map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    map_with(thread_count(), items, f)
}

/// [`map`] with an explicit worker count. `threads <= 1` runs inline on
/// the calling thread; either way the result order is the item order.
pub fn map_with<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.min(items.len());
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

/// Runs every cell of a sweep in parallel; `out[i]` is the statistics of
/// `cells[i]`, exactly as a serial loop would produce them.
pub fn run_cells(cells: &[Cell], budget: &Budget) -> Vec<Stats> {
    map(cells, |cell| run_cell(cell, budget))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_item_order() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1, 2, 7, 16, 200] {
            let out = map_with(threads, &items, |&x| x * x);
            assert_eq!(
                out,
                items.iter().map(|x| x * x).collect::<Vec<_>>(),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn map_handles_empty_and_singleton() {
        assert_eq!(map_with(8, &[] as &[u64], |&x| x), Vec::<u64>::new());
        assert_eq!(map_with(8, &[5u64], |&x| x + 1), vec![6]);
    }

    #[test]
    fn thread_count_is_at_least_one() {
        assert!(thread_count() >= 1);
    }
}
