//! Experiment harness for the HPCA'99 instruction-recycling reproduction.
//!
//! Every table and figure of the paper's evaluation has a runner here and a
//! binary that prints it (`cargo run --release -p multipath-bench --bin
//! fig3`, `fig4`, `fig5`, `fig6`, `table1`). The bench target
//! (`cargo bench -p multipath-bench`) times representative simulations of
//! each experiment so regressions in simulator throughput are visible.
//!
//! Sweeps run on the [`parallel`] engine: each figure builds its full
//! cell list, shards it across `MULTIPATH_THREADS` workers (default: all
//! cores), and aggregates in cell-list order, so output is byte-identical
//! at any thread count. `MULTIPATH_BUDGET=quick` selects the smoke-sized
//! budget; `MP_BENCH_COMMITS`/`MP_BENCH_MIXES` fine-tune it.
//!
//! Absolute IPC is not expected to match the paper (its workloads were
//! SPEC95 Alpha binaries on the authors' simulator; ours are synthetic
//! proxies — see `DESIGN.md`). The *shape* is the reproduction target:
//! which configuration wins, how gains move with program count, and where
//! the recycling statistics land.

use multipath_core::{AltPolicy, Features, SimConfig, Simulator, Stats};
use multipath_workload::{mix, Benchmark};

pub mod parallel;

/// How big each simulation is.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Committed instructions per co-scheduled program.
    pub committed_per_program: u64,
    /// Hard cycle cap (guards against pathological configurations).
    pub max_cycles: u64,
    /// Workload seed.
    pub seed: u64,
    /// How many of the eight benchmark permutations to average for
    /// multi-program points (the paper uses all eight).
    pub mixes: usize,
}

impl Budget {
    /// The default experiment size: 20k committed instructions per program
    /// over all eight permutations.
    pub fn full() -> Budget {
        Budget {
            committed_per_program: 20_000,
            max_cycles: 2_000_000,
            seed: 1,
            mixes: 8,
        }
    }

    /// A fast smoke-sized budget for tests and Criterion timing.
    pub fn quick() -> Budget {
        Budget {
            committed_per_program: 4_000,
            max_cycles: 400_000,
            seed: 1,
            mixes: 2,
        }
    }

    /// Reads the budget from the environment: `MULTIPATH_BUDGET=quick`
    /// selects [`Budget::quick`] (anything else means [`Budget::full`]),
    /// then `MP_BENCH_COMMITS` / `MP_BENCH_MIXES` override individual
    /// knobs.
    pub fn from_env() -> Budget {
        let mut b = match std::env::var("MULTIPATH_BUDGET").as_deref() {
            Ok("quick") => Budget::quick(),
            _ => Budget::full(),
        };
        if let Some(n) = std::env::var("MP_BENCH_COMMITS")
            .ok()
            .and_then(|s| s.parse().ok())
        {
            b.committed_per_program = n;
        }
        if let Some(n) = std::env::var("MP_BENCH_MIXES")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
        {
            b.mixes = n.clamp(1, 8);
        }
        b
    }
}

/// One experiment cell: machine + features + policy + workload.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Machine model.
    pub config: SimConfig,
    /// The benchmarks co-scheduled in this run.
    pub workload: Vec<Benchmark>,
    /// Workload seed.
    pub seed: u64,
}

/// Runs one cell to the budget and returns the statistics.
pub fn run_cell(cell: &Cell, budget: &Budget) -> Stats {
    let programs = mix::programs(&cell.workload, cell.seed);
    let mut sim = Simulator::new(cell.config.clone(), programs);
    let total = budget.committed_per_program * cell.workload.len() as u64;
    sim.run(total, budget.max_cycles);
    sim.stats().clone()
}

/// Runs one cell with the full observability stack enabled — interval
/// time series, span recorder, and a bounded event ring — for the
/// probe-overhead A/B in the `hotpath` harness. Probes observe without
/// perturbing, so the returned statistics are bit-identical to
/// [`run_cell`]'s (the harness asserts this).
pub fn run_cell_probed(cell: &Cell, budget: &Budget) -> Stats {
    use multipath_core::{EventFilter, ProbeConfig};
    let programs = mix::programs(&cell.workload, cell.seed);
    let mut sim = Simulator::new(cell.config.clone(), programs);
    sim.enable_probes(ProbeConfig {
        ring: Some(1024),
        interval: Some(100),
        spans: true,
        explain: true,
        filter: EventFilter::all(),
    });
    let total = budget.committed_per_program * cell.workload.len() as u64;
    sim.run(total, budget.max_cycles);
    sim.finish_probes();
    sim.stats().clone()
}

/// Runs one cell with only the explain sinks (attribution + path tree)
/// enabled and returns them alongside the statistics. Serial by design:
/// the sinks carry per-run state that the parallel engine's `Stats`-only
/// aggregation cannot transport.
pub fn run_cell_explained(
    cell: &Cell,
    budget: &Budget,
) -> (
    Stats,
    multipath_core::AttributionSink,
    multipath_core::PathTreeSink,
) {
    use multipath_core::{EventFilter, ProbeConfig};
    let programs = mix::programs(&cell.workload, cell.seed);
    let mut sim = Simulator::new(cell.config.clone(), programs);
    sim.enable_probes(ProbeConfig {
        ring: None,
        interval: None,
        spans: false,
        explain: true,
        filter: EventFilter::all(),
    });
    let total = budget.committed_per_program * cell.workload.len() as u64;
    sim.run(total, budget.max_cycles);
    sim.finish_probes();
    let stats = sim.stats().clone();
    let probes = sim.take_probes().expect("probes enabled");
    (
        stats,
        probes.attribution.expect("attribution sink on"),
        probes.tree.expect("path-tree sink on"),
    )
}

/// The cell for `bench` running alone under `features` on the baseline
/// machine.
fn single_cell(bench: Benchmark, features: Features, budget: &Budget) -> Cell {
    Cell {
        config: SimConfig::big_2_16().with_features(features),
        workload: vec![bench],
        seed: budget.seed,
    }
}

/// Convenience: run `bench` alone under `features` on the baseline machine.
pub fn run_single(bench: Benchmark, features: Features, budget: &Budget) -> Stats {
    run_cell(&single_cell(bench, features, budget), budget)
}

/// The cells behind one multi-program average: the paper's evenly-weighted
/// permutations of `n` programs, limited to `budget.mixes` rotations.
fn mix_cells(config: &SimConfig, n_programs: usize, budget: &Budget) -> Vec<Cell> {
    let mixes = mix::rotations(n_programs);
    let take = budget.mixes.min(mixes.len());
    mixes
        .into_iter()
        .take(take)
        .map(|m| Cell {
            config: config.clone(),
            workload: m,
            seed: budget.seed,
        })
        .collect()
}

/// Mean IPC over per-cell statistics, summed in cell order (the order
/// matters: floating-point addition is not associative, and the CI
/// determinism gate compares serial and parallel output byte-for-byte).
fn mean_ipc(stats: &[Stats]) -> f64 {
    stats.iter().map(Stats::ipc).sum::<f64>() / stats.len() as f64
}

/// Average IPC over the paper's evenly-weighted permutations of `n`
/// programs (limited to `budget.mixes` rotations).
pub fn average_ipc(config: &SimConfig, n_programs: usize, budget: &Budget) -> f64 {
    mean_ipc(&parallel::run_cells(
        &mix_cells(config, n_programs, budget),
        budget,
    ))
}

// ---------------------------------------------------------------------
// Figure 3: per-program IPC under the six configurations.
// ---------------------------------------------------------------------

/// One Figure 3 row: a benchmark and its IPC under each configuration.
#[derive(Debug, Clone)]
pub struct Fig3Row {
    /// The benchmark.
    pub bench: Benchmark,
    /// IPC per configuration, in [`Features::all_six`] order.
    pub ipc: [f64; 6],
}

/// The full Figure 3 cell list (8 benchmarks × 6 configurations), in the
/// order `figure3` aggregates them. Exposed so the `hotpath` throughput
/// harness times exactly the sweep the figure runs.
pub fn figure3_cells(budget: &Budget) -> Vec<Cell> {
    Benchmark::ALL
        .into_iter()
        .flat_map(|bench| {
            Features::all_six()
                .into_iter()
                .map(move |f| single_cell(bench, f, budget))
        })
        .collect()
}

/// Runs Figure 3 (single-program IPC for SMT/TME/REC/REC-RU/REC-RS/
/// REC-RS-RU on the baseline machine). All 48 cells run in parallel.
pub fn figure3(budget: &Budget) -> Vec<Fig3Row> {
    let cells = figure3_cells(budget);
    let stats = parallel::run_cells(&cells, budget);
    Benchmark::ALL
        .into_iter()
        .enumerate()
        .map(|(bi, bench)| {
            let mut ipc = [0.0; 6];
            for (fi, v) in ipc.iter_mut().enumerate() {
                *v = stats[bi * 6 + fi].ipc();
            }
            Fig3Row { bench, ipc }
        })
        .collect()
}

/// Renders Figure 3 as an aligned text table.
pub fn render_figure3(rows: &[Fig3Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:10}", "bench"));
    for f in Features::all_six() {
        out.push_str(&format!(" {:>9}", f.label()));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&format!("{:10}", row.bench.name()));
        for v in row.ipc {
            out.push_str(&format!(" {v:>9.2}"));
        }
        out.push('\n');
    }
    let mut avg = [0.0; 6];
    for row in rows {
        for (a, v) in avg.iter_mut().zip(row.ipc) {
            *a += v / rows.len() as f64;
        }
    }
    out.push_str(&format!("{:10}", "average"));
    for v in avg {
        out.push_str(&format!(" {v:>9.2}"));
    }
    out.push('\n');
    out
}

// ---------------------------------------------------------------------
// Figure 4: average IPC for 1/2/4 programs under the six configurations.
// ---------------------------------------------------------------------

/// One Figure 4 row: program count and average IPC per configuration.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// Number of co-scheduled programs.
    pub programs: usize,
    /// Average IPC per configuration, in [`Features::all_six`] order.
    pub ipc: [f64; 6],
}

/// Runs Figure 4. The whole grid (3 program counts × 6 configurations ×
/// up to 8 mixes) is flattened into one parallel sweep.
pub fn figure4(budget: &Budget) -> Vec<Fig4Row> {
    let mut cells = Vec::new();
    let mut spans = Vec::new();
    for n in [1usize, 2, 4] {
        for features in Features::all_six() {
            let config = SimConfig::big_2_16().with_features(features);
            let start = cells.len();
            cells.extend(mix_cells(&config, n, budget));
            spans.push(start..cells.len());
        }
    }
    let stats = parallel::run_cells(&cells, budget);
    [1usize, 2, 4]
        .into_iter()
        .enumerate()
        .map(|(ni, n)| {
            let mut ipc = [0.0; 6];
            for (fi, v) in ipc.iter_mut().enumerate() {
                *v = mean_ipc(&stats[spans[ni * 6 + fi].clone()]);
            }
            Fig4Row { programs: n, ipc }
        })
        .collect()
}

/// Renders Figure 4 as an aligned text table.
pub fn render_figure4(rows: &[Fig4Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:10}", "programs"));
    for f in Features::all_six() {
        out.push_str(&format!(" {:>9}", f.label()));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&format!("{:10}", row.programs));
        for v in row.ipc {
            out.push_str(&format!(" {v:>9.2}"));
        }
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------
// Figure 5: alternate-path fetch-limit policies.
// ---------------------------------------------------------------------

/// One Figure 5 row: a policy and its average IPC for 1/2/4 programs.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// The alternate-path policy.
    pub policy: AltPolicy,
    /// Average IPC at 1, 2, and 4 programs.
    pub ipc: [f64; 3],
}

/// Runs Figure 5 (nine policies under the full REC/RS/RU architecture),
/// flattened into one parallel sweep.
pub fn figure5(budget: &Budget) -> Vec<Fig5Row> {
    let policies = AltPolicy::figure5_sweep();
    let mut cells = Vec::new();
    let mut spans = Vec::new();
    for &policy in &policies {
        let config = SimConfig::big_2_16()
            .with_features(Features::rec_rs_ru())
            .with_alt_policy(policy);
        for n in [1usize, 2, 4] {
            let start = cells.len();
            cells.extend(mix_cells(&config, n, budget));
            spans.push(start..cells.len());
        }
    }
    let stats = parallel::run_cells(&cells, budget);
    policies
        .into_iter()
        .enumerate()
        .map(|(pi, policy)| {
            let mut ipc = [0.0; 3];
            for (ni, v) in ipc.iter_mut().enumerate() {
                *v = mean_ipc(&stats[spans[pi * 3 + ni].clone()]);
            }
            Fig5Row { policy, ipc }
        })
        .collect()
}

/// Renders Figure 5 as an aligned text table.
pub fn render_figure5(rows: &[Fig5Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:12} {:>10} {:>10} {:>10}\n",
        "policy", "1 prog", "2 progs", "4 progs"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:12} {:>10.2} {:>10.2} {:>10.2}\n",
            row.policy.label(),
            row.ipc[0],
            row.ipc[1],
            row.ipc[2]
        ));
    }
    out
}

// ---------------------------------------------------------------------
// Figure 6: limited-resource machine models.
// ---------------------------------------------------------------------

/// The four machine models of Section 5.3.
pub fn figure6_machines() -> [(&'static str, SimConfig); 4] {
    [
        ("small.1.8", SimConfig::small_1_8()),
        ("small.2.8", SimConfig::small_2_8()),
        ("big.1.8", SimConfig::big_1_8()),
        ("big.2.16", SimConfig::big_2_16()),
    ]
}

/// One Figure 6 row: machine × configuration × program count.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Machine model name.
    pub machine: &'static str,
    /// Configuration label (`SMT`, `TME`, `REC/RS/RU`).
    pub features: Features,
    /// Average IPC at 1, 2, and 4 programs.
    pub ipc: [f64; 3],
}

/// Runs Figure 6 (SMT vs TME vs REC/RS/RU on each machine model),
/// flattened into one parallel sweep.
pub fn figure6(budget: &Budget) -> Vec<Fig6Row> {
    let mut cells = Vec::new();
    let mut keys = Vec::new();
    let mut spans = Vec::new();
    for (machine, base) in figure6_machines() {
        for features in [Features::smt(), Features::tme(), Features::rec_rs_ru()] {
            let config = base.clone().with_features(features);
            let mut row_spans = [0..0, 0..0, 0..0];
            for (ni, n) in [1usize, 2, 4].into_iter().enumerate() {
                let start = cells.len();
                cells.extend(mix_cells(&config, n, budget));
                row_spans[ni] = start..cells.len();
            }
            keys.push((machine, features));
            spans.push(row_spans);
        }
    }
    let stats = parallel::run_cells(&cells, budget);
    keys.into_iter()
        .zip(spans)
        .map(|((machine, features), row_spans)| {
            let mut ipc = [0.0; 3];
            for (ni, v) in ipc.iter_mut().enumerate() {
                *v = mean_ipc(&stats[row_spans[ni].clone()]);
            }
            Fig6Row {
                machine,
                features,
                ipc,
            }
        })
        .collect()
}

/// Renders Figure 6 as an aligned text table.
pub fn render_figure6(rows: &[Fig6Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:10} {:10} {:>10} {:>10} {:>10}\n",
        "machine", "config", "1 prog", "2 progs", "4 progs"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:10} {:10} {:>10.2} {:>10.2} {:>10.2}\n",
            row.machine,
            row.features.label(),
            row.ipc[0],
            row.ipc[1],
            row.ipc[2]
        ));
    }
    out
}

// ---------------------------------------------------------------------
// Table 1: recycling statistics.
// ---------------------------------------------------------------------

/// One Table 1 row (per benchmark or a multi-program average).
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Row label (benchmark name or `"N progs avg"`).
    pub label: String,
    /// % of renamed instructions recycled.
    pub pct_recycled: f64,
    /// % of renamed instructions reused.
    pub pct_reused: f64,
    /// % of mispredicted branches covered by a fork.
    pub pct_miss_cov: f64,
    /// % of forks used by TME.
    pub pct_forks_tme: f64,
    /// % of forks recycled at least once.
    pub pct_forks_recycled: f64,
    /// % of forks re-spawned at least once.
    pub pct_forks_respawned: f64,
    /// Average merges per recycled alternate path.
    pub merges_per_alt: f64,
    /// % of merges that were backward-branch merges.
    pub pct_back_merges: f64,
}

impl Table1Row {
    fn from_stats(label: String, s: &Stats) -> Table1Row {
        Table1Row {
            label,
            pct_recycled: s.pct_recycled(),
            pct_reused: s.pct_reused(),
            pct_miss_cov: s.pct_miss_covered(),
            pct_forks_tme: s.pct_forks_tme(),
            pct_forks_recycled: s.pct_forks_recycled(),
            pct_forks_respawned: s.pct_forks_respawned(),
            merges_per_alt: s.merges_per_alt_path(),
            pct_back_merges: s.pct_back_merges(),
        }
    }
}

/// Runs Table 1: per-benchmark recycling statistics under REC/RS/RU, plus
/// 2- and 4-program averages. Singles and mix cells share one parallel
/// sweep.
pub fn table1(budget: &Budget) -> Vec<Table1Row> {
    let singles = Benchmark::ALL.len();
    let mut cells: Vec<Cell> = Benchmark::ALL
        .into_iter()
        .map(|bench| single_cell(bench, Features::rec_rs_ru(), budget))
        .collect();
    let mut spans = Vec::new();
    for n in [2usize, 4] {
        let config = SimConfig::big_2_16().with_features(Features::rec_rs_ru());
        let start = cells.len();
        cells.extend(mix_cells(&config, n, budget));
        spans.push((n, start..cells.len()));
    }
    let stats = parallel::run_cells(&cells, budget);
    let mut rows = Vec::new();
    for (bench, s) in Benchmark::ALL.into_iter().zip(&stats) {
        rows.push(Table1Row::from_stats(bench.name().to_owned(), s));
    }
    rows.push(Table1Row::from_stats(
        "1 prog avg".to_owned(),
        &combine(&stats[..singles]),
    ));
    for (n, span) in spans {
        rows.push(Table1Row::from_stats(
            format!("{n} progs avg"),
            &combine(&stats[span]),
        ));
    }
    rows
}

/// Sums raw counters across runs so the averages are instruction-weighted,
/// as the paper's are.
fn combine(all: &[Stats]) -> Stats {
    let mut acc = Stats::new(1);
    for s in all {
        acc.cycles += s.cycles;
        acc.committed += s.committed;
        acc.renamed += s.renamed;
        acc.recycled += s.recycled;
        acc.reused += s.reused;
        acc.fetched += s.fetched;
        acc.squashed += s.squashed;
        acc.branches += s.branches;
        acc.mispredicts += s.mispredicts;
        acc.mispredicts_covered += s.mispredicts_covered;
        acc.forks += s.forks;
        acc.forks_used_tme += s.forks_used_tme;
        acc.forks_recycled += s.forks_recycled;
        acc.forks_respawned += s.forks_respawned;
        acc.respawns += s.respawns;
        acc.merges += s.merges;
        acc.back_merges += s.back_merges;
        acc.alt_path_merge_sum += s.alt_path_merge_sum;
        acc.recoveries += s.recoveries;
    }
    acc
}

/// Renders Table 1 as an aligned text table.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:12} {:>8} {:>7} {:>9} {:>6} {:>6} {:>8} {:>10} {:>7}\n",
        "program",
        "recyc%",
        "reuse%",
        "misscov%",
        "tme%",
        "recyc%",
        "respawn%",
        "merges/alt",
        "back%"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:12} {:>8.1} {:>7.1} {:>9.1} {:>6.1} {:>6.1} {:>8.1} {:>10.1} {:>7.1}\n",
            r.label,
            r.pct_recycled,
            r.pct_reused,
            r.pct_miss_cov,
            r.pct_forks_tme,
            r.pct_forks_recycled,
            r.pct_forks_respawned,
            r.merges_per_alt,
            r.pct_back_merges
        ));
    }
    out
}

// ---------------------------------------------------------------------
// Explain: reuse/recycle attribution alongside the figures.
// ---------------------------------------------------------------------

/// One explain row: why recycled instructions were (not) reused for one
/// kernel under REC/RS/RU, plus the fork-refusal total — the harness-side
/// companion to `multipath explain`.
#[derive(Debug, Clone)]
pub struct ExplainRow {
    /// The benchmark.
    pub bench: Benchmark,
    /// Instructions renamed via the recycle datapath.
    pub recycled: u64,
    /// ... of which reused (no re-execution).
    pub reused: u64,
    /// Reuse denials by cause, in [`multipath_core::ReuseDeny::ALL`]
    /// order; sums to `recycled - reused`.
    pub denied: [u64; multipath_core::ReuseDeny::COUNT],
    /// Fork refusals across all causes.
    pub fork_refused: u64,
}

impl ExplainRow {
    /// Reuse yield: % of recycled instructions whose results were reused.
    pub fn yield_pct(&self) -> f64 {
        if self.recycled == 0 {
            0.0
        } else {
            100.0 * self.reused as f64 / self.recycled as f64
        }
    }
}

/// Runs the explain attribution for every kernel under REC/RS/RU. Serial
/// (see [`run_cell_explained`]); with the quick budget this is the cost
/// of one extra Table 1 column pass.
pub fn explain_rows(budget: &Budget) -> Vec<ExplainRow> {
    Benchmark::ALL
        .into_iter()
        .map(|bench| {
            let cell = single_cell(bench, Features::rec_rs_ru(), budget);
            let (stats, attr, _tree) = run_cell_explained(&cell, budget);
            ExplainRow {
                bench,
                recycled: stats.recycled,
                reused: stats.reused,
                denied: attr.reuse_denied,
                fork_refused: stats.fork_refused(),
            }
        })
        .collect()
}

/// Renders the explain attribution as an aligned text table.
pub fn render_explain(rows: &[ExplainRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:10} {:>9} {:>8} {:>7}",
        "bench", "recycled", "reused", "yield%"
    ));
    for cause in multipath_core::ReuseDeny::ALL {
        out.push_str(&format!(" {:>12}", short_cause(cause.name())));
    }
    out.push_str(&format!(" {:>8}\n", "refused"));
    for r in rows {
        out.push_str(&format!(
            "{:10} {:>9} {:>8} {:>7.1}",
            r.bench.name(),
            r.recycled,
            r.reused,
            r.yield_pct()
        ));
        for v in r.denied {
            out.push_str(&format!(" {v:>12}"));
        }
        out.push_str(&format!(" {:>8}\n", r.fork_refused));
    }
    out
}

/// Abbreviates a `ReuseDeny` name so the text table stays narrow.
fn short_cause(name: &str) -> &str {
    match name {
        "reuse_disabled" => "disabled",
        "not_executed" => "not_exec",
        "chained_reuse" => "chained",
        "no_result" => "no_result",
        "regs_released" => "released",
        "source_overwritten" => "overwritten",
        "mem_invalidated" => "mem_inval",
        other => other,
    }
}

/// Explain attribution as CSV, cause columns in `ReuseDeny::ALL` order.
pub fn render_explain_csv(rows: &[ExplainRow]) -> String {
    let mut out = String::from("bench,recycled,reused,yield_pct");
    for cause in multipath_core::ReuseDeny::ALL {
        out.push(',');
        out.push_str(cause.name());
    }
    out.push_str(",fork_refused\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{:.2}",
            r.bench.name(),
            r.recycled,
            r.reused,
            r.yield_pct()
        ));
        for v in r.denied {
            out.push_str(&format!(",{v}"));
        }
        out.push_str(&format!(",{}\n", r.fork_refused));
    }
    out
}

// ---------------------------------------------------------------------
// CSV rendering (for plotting): set MP_FORMAT=csv on any figure binary.
// ---------------------------------------------------------------------

/// Whether the binaries should emit CSV instead of aligned text.
pub fn csv_requested() -> bool {
    std::env::var("MP_FORMAT").is_ok_and(|v| v == "csv")
}

/// Figure 3 as CSV (`bench,smt,tme,rec,rec_ru,rec_rs,rec_rs_ru`).
pub fn render_figure3_csv(rows: &[Fig3Row]) -> String {
    let mut out = String::from("bench,smt,tme,rec,rec_ru,rec_rs,rec_rs_ru\n");
    for r in rows {
        out.push_str(&format!(
            "{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}\n",
            r.bench.name(),
            r.ipc[0],
            r.ipc[1],
            r.ipc[2],
            r.ipc[3],
            r.ipc[4],
            r.ipc[5]
        ));
    }
    out
}

/// Figure 4 as CSV (`programs,smt,...`).
pub fn render_figure4_csv(rows: &[Fig4Row]) -> String {
    let mut out = String::from("programs,smt,tme,rec,rec_ru,rec_rs,rec_rs_ru\n");
    for r in rows {
        out.push_str(&format!(
            "{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}\n",
            r.programs, r.ipc[0], r.ipc[1], r.ipc[2], r.ipc[3], r.ipc[4], r.ipc[5]
        ));
    }
    out
}

/// Figure 5 as CSV (`policy,p1,p2,p4`).
pub fn render_figure5_csv(rows: &[Fig5Row]) -> String {
    let mut out = String::from("policy,p1,p2,p4\n");
    for r in rows {
        out.push_str(&format!(
            "{},{:.4},{:.4},{:.4}\n",
            r.policy.label(),
            r.ipc[0],
            r.ipc[1],
            r.ipc[2]
        ));
    }
    out
}

/// Figure 6 as CSV (`machine,config,p1,p2,p4`).
pub fn render_figure6_csv(rows: &[Fig6Row]) -> String {
    let mut out = String::from("machine,config,p1,p2,p4\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{:.4},{:.4},{:.4}\n",
            r.machine,
            r.features.label(),
            r.ipc[0],
            r.ipc[1],
            r.ipc[2]
        ));
    }
    out
}

/// Table 1 as CSV.
pub fn render_table1_csv(rows: &[Table1Row]) -> String {
    let mut out = String::from(
        "program,recycled_pct,reused_pct,misscov_pct,forks_tme_pct,forks_recycled_pct,forks_respawned_pct,merges_per_alt,back_merges_pct\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2}\n",
            r.label,
            r.pct_recycled,
            r.pct_reused,
            r.pct_miss_cov,
            r.pct_forks_tme,
            r.pct_forks_recycled,
            r.pct_forks_respawned,
            r.merges_per_alt,
            r.pct_back_merges
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_figure3_has_sane_shape() {
        let mut budget = Budget::quick();
        budget.committed_per_program = 2_000;
        let rows = figure3(&budget);
        assert_eq!(rows.len(), 8);
        for row in &rows {
            for v in row.ipc {
                assert!(v > 0.05, "{}: degenerate IPC {v}", row.bench);
            }
        }
        let text = render_figure3(&rows);
        assert!(text.contains("compress"));
        assert!(text.contains("average"));
    }

    #[test]
    fn quick_explain_rows_reconcile() {
        let mut budget = Budget::quick();
        budget.committed_per_program = 2_000;
        let rows = explain_rows(&budget);
        assert_eq!(rows.len(), 8);
        for r in &rows {
            let denied: u64 = r.denied.iter().sum();
            assert_eq!(
                denied,
                r.recycled - r.reused,
                "{}: denial taxonomy must cover every non-reused recycle",
                r.bench
            );
        }
        let text = render_explain(&rows);
        assert!(text.contains("compress"));
        assert!(text.contains("yield%"));
        let csv = render_explain_csv(&rows);
        assert!(csv.starts_with("bench,recycled,reused,yield_pct,reuse_disabled"));
    }

    #[test]
    fn quick_table1_reports_recycling() {
        let mut budget = Budget::quick();
        budget.committed_per_program = 2_000;
        let rows = table1(&budget);
        assert_eq!(rows.len(), 8 + 3);
        let avg = rows
            .iter()
            .find(|r| r.label == "1 prog avg")
            .expect("average row");
        assert!(
            avg.pct_recycled > 1.0,
            "recycling should be visible: {avg:?}"
        );
        let text = render_table1(&rows);
        assert!(text.contains("4 progs avg"));
    }
}
