//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! These go beyond the paper's own sweeps: each ablation varies one
//! mechanism parameter and reports IPC plus the statistic the parameter
//! most directly controls. Budget via `MP_BENCH_COMMITS`.
//!
//! ```text
//! cargo run --release -p multipath-bench --bin ablations
//! ```

use multipath_bench::{run_cell, Budget, Cell};
use multipath_core::{Features, RecycledPrediction, SimConfig};
use multipath_workload::{mix, Benchmark};

fn budget() -> Budget {
    let mut b = Budget::from_env();
    b.mixes = b.mixes.min(4);
    b
}

fn cell(config: SimConfig, workload: Vec<Benchmark>) -> Cell {
    Cell {
        config,
        workload,
        seed: 1,
    }
}

/// Confidence threshold: how eagerly TME forks.
fn confidence_threshold() {
    println!("-- confidence threshold (go, TME): fork aggressiveness");
    println!(
        "{:>10} {:>8} {:>8} {:>10} {:>10}",
        "threshold", "IPC", "forks", "coverage%", "waste"
    );
    for threshold in [4u8, 8, 12, 15] {
        let mut config = SimConfig::big_2_16().with_features(Features::tme());
        config.predictor.conf_threshold = threshold;
        let s = run_cell(&cell(config, vec![Benchmark::Go]), &budget());
        println!(
            "{:>10} {:>8.2} {:>8} {:>10.1} {:>10.2}",
            threshold,
            s.ipc(),
            s.forks,
            s.pct_miss_covered(),
            (s.renamed - s.committed) as f64 / s.committed as f64,
        );
    }
}

/// Active-list capacity: the recycle trace length.
fn active_list_size() {
    println!("-- active-list slots (tomcatv, REC/RS/RU): trace capacity");
    println!(
        "{:>10} {:>8} {:>10} {:>8}",
        "slots", "IPC", "recycled%", "merges"
    );
    for slots in [32usize, 64, 128, 256] {
        let mut config = SimConfig::big_2_16().with_features(Features::rec_rs_ru());
        config.active_list = slots;
        let s = run_cell(&cell(config, vec![Benchmark::Tomcatv]), &budget());
        println!(
            "{:>10} {:>8.2} {:>10.1} {:>8}",
            slots,
            s.ipc(),
            s.pct_recycled(),
            s.merges
        );
    }
}

/// Physical register file size: renaming headroom under recycling.
fn physical_registers() {
    println!("-- physical registers per file (4-program mix, REC/RS/RU)");
    println!("{:>10} {:>8} {:>12}", "registers", "IPC", "preg stalls");
    for extra in [32usize, 100, 196] {
        let mut config = SimConfig::big_2_16().with_features(Features::rec_rs_ru());
        config.phys_int = 8 * 32 + extra;
        config.phys_fp = 8 * 32 + extra;
        let s = run_cell(&cell(config, mix::rotations(4)[0].clone()), &budget());
        println!(
            "{:>10} {:>8.2} {:>12}",
            256 + extra,
            s.ipc(),
            s.preg_stall_cycles
        );
    }
}

/// Forks per cycle: spawn bandwidth.
fn forks_per_cycle() {
    println!("-- forks per cycle (gcc, REC/RS/RU): spawn bandwidth");
    println!(
        "{:>10} {:>8} {:>8} {:>10}",
        "forks/cyc", "IPC", "forks", "refused"
    );
    for n in [1usize, 2, 4] {
        let mut config = SimConfig::big_2_16().with_features(Features::rec_rs_ru());
        config.forks_per_cycle = n;
        let s = run_cell(&cell(config, vec![Benchmark::Gcc]), &budget());
        println!(
            "{:>10} {:>8.2} {:>8} {:>10}",
            n,
            s.ipc(),
            s.forks,
            s.fork_refused_cap
        );
    }
}

/// Contexts: how many spares the single program gets.
fn context_count() {
    println!("-- hardware contexts (go, TME): spare availability");
    println!(
        "{:>10} {:>8} {:>8} {:>10}",
        "contexts", "IPC", "forks", "coverage%"
    );
    for contexts in [2usize, 4, 8] {
        let mut config = SimConfig::big_2_16().with_features(Features::tme());
        config.contexts = contexts;
        let s = run_cell(&cell(config, vec![Benchmark::Go]), &budget());
        println!(
            "{:>10} {:>8.2} {:>8} {:>10.1}",
            contexts,
            s.ipc(),
            s.forks,
            s.pct_miss_covered()
        );
    }
}

/// The paper's two recycled-branch prediction methods (Section 3.4).
fn recycled_prediction() {
    println!("-- recycled-branch prediction method (perl, REC/RS/RU)");
    println!(
        "{:>10} {:>8} {:>10} {:>8}",
        "method", "IPC", "recycled%", "acc%"
    );
    for (name, method) in [
        ("repredict", RecycledPrediction::Repredict),
        ("trace", RecycledPrediction::Trace),
    ] {
        let mut config = SimConfig::big_2_16().with_features(Features::rec_rs_ru());
        config.recycled_prediction = method;
        let s = run_cell(&cell(config, vec![Benchmark::Perl]), &budget());
        println!(
            "{:>10} {:>8.2} {:>10.1} {:>8.1}",
            name,
            s.ipc(),
            s.pct_recycled(),
            s.branch_accuracy()
        );
    }
}

/// MDB capacity: load-reuse tracking reach.
fn mdb_capacity() {
    println!("-- MDB entries (compress, REC/RS/RU): load reuse");
    println!("{:>10} {:>8} {:>8}", "entries", "IPC", "reused");
    for entries in [16usize, 64, 256] {
        let mut config = SimConfig::big_2_16().with_features(Features::rec_rs_ru());
        config.mdb_entries = entries;
        let s = run_cell(&cell(config, vec![Benchmark::Compress]), &budget());
        println!("{:>10} {:>8.2} {:>8}", entries, s.ipc(), s.reused);
    }
}

/// Loop size vs. backward-branch recycling: the paper's "only loops
/// smaller than the current active lists are able to benefit".
fn loop_size_vs_recycling() {
    println!("-- loop-body size vs recycling (microbenchmark, REC/RS/RU, 64-slot AL)");
    println!(
        "{:>10} {:>8} {:>10} {:>8}",
        "body", "IPC", "recycled%", "back"
    );
    for body in [16usize, 32, 48, 64, 96, 160] {
        let params = multipath_workload::micro::MicroParams {
            loop_body: body,
            ..Default::default()
        };
        let program = multipath_workload::micro::build(&params, 1);
        let config = SimConfig::big_2_16().with_features(Features::rec_rs_ru());
        let mut sim = multipath_core::Simulator::new(config, vec![program]);
        let s = sim.run(budget().committed_per_program, 2_000_000).clone();
        println!(
            "{:>10} {:>8.2} {:>10.1} {:>8}",
            body,
            s.ipc(),
            s.pct_recycled(),
            s.back_merges
        );
    }
}

/// Direction-prediction scheme: gshare vs bimodal vs McFarling combining.
fn predictor_scheme() {
    println!("-- predictor scheme (per kernel, REC/RS/RU): accuracy / IPC");
    println!(
        "{:>10} {:>16} {:>16} {:>16}",
        "bench", "gshare", "bimodal", "combining"
    );
    for bench in [
        Benchmark::Gcc,
        Benchmark::Go,
        Benchmark::Perl,
        Benchmark::Vortex,
    ] {
        let mut cells = Vec::new();
        for scheme in [
            multipath_branch::DirectionScheme::Gshare,
            multipath_branch::DirectionScheme::Bimodal,
            multipath_branch::DirectionScheme::Combining,
        ] {
            let mut config = SimConfig::big_2_16().with_features(Features::rec_rs_ru());
            config.predictor.scheme = scheme;
            let s = run_cell(&cell(config, vec![bench]), &budget());
            cells.push(format!("{:.1}% / {:.2}", s.branch_accuracy(), s.ipc()));
        }
        println!(
            "{:>10} {:>16} {:>16} {:>16}",
            bench.name(),
            cells[0],
            cells[1],
            cells[2]
        );
    }
}

/// Spawn latency: how fast the Mapping Synchronization Bus can duplicate
/// register state into a spare context.
fn spawn_latency() {
    println!("-- MSB spawn latency (go, TME): cost of slow state duplication");
    println!("{:>10} {:>8} {:>10}", "cycles", "IPC", "coverage%");
    for latency in [1u32, 4, 8, 16] {
        let mut config = SimConfig::big_2_16().with_features(Features::tme());
        config.spawn_latency = latency;
        let s = run_cell(&cell(config, vec![Benchmark::Go]), &budget());
        println!(
            "{:>10} {:>8.2} {:>10.1}",
            latency,
            s.ipc(),
            s.pct_miss_covered()
        );
    }
}

fn main() {
    spawn_latency();
    println!();
    predictor_scheme();
    println!();
    loop_size_vs_recycling();
    println!();
    confidence_threshold();
    println!();
    active_list_size();
    println!();
    physical_registers();
    println!();
    forks_per_cycle();
    println!();
    context_count();
    println!();
    recycled_prediction();
    println!();
    mdb_capacity();
}
