//! Hot-path throughput harness: times the Figure 3 quick-budget sweep
//! (48 cells) and reports simulated cycles per wall-clock second, serial
//! and multi-threaded. This is the repo's perf gate — see EXPERIMENTS.md
//! ("Hot-path throughput") for the methodology and how to compare runs
//! across PRs.
//!
//! Knobs (all environment variables):
//! - `MULTIPATH_BENCH_SAMPLES` — timed samples per point (default 10).
//! - `MP_HOTPATH_THREADS` — comma-separated worker counts (default `1,8`).
//! - `MP_HOTPATH_OUT` — where to write the JSON report (default
//!   `BENCH_hotpath.json` in the current directory).
//! - `MP_HOTPATH_LABEL` — label recorded for this build (default
//!   `worktree`).
//! - `MP_HOTPATH_BASELINE` — `serial_cps,threads8_cps` reference numbers;
//!   when set, the report includes them plus speedup ratios.
//! - `MP_HOTPATH_MIN_RATIO` — minimum acceptable serial speedup vs the
//!   baseline (e.g. `0.85`); when set alongside `MP_HOTPATH_BASELINE`,
//!   the harness exits nonzero below it, turning the report into a gate.
//!
//! The harness also times the same serial sweep with the full
//! observability stack enabled (ring + interval series + span recorder)
//! and reports the overhead ratio against the probes-disabled build.
//! The disabled side is the `NullSink` path every normal run takes, so
//! this A/B keeps the "zero overhead when off, bounded overhead when on"
//! property measurable on every CI run. Probes must observe without
//! perturbing: the harness asserts the probed sweep simulates exactly
//! the same cycles.
//!
//! The sweep itself always uses the quick budget so results are
//! comparable across machines and PRs regardless of `MULTIPATH_BUDGET`.

use multipath_bench::{figure3_cells, parallel, run_cell, run_cell_probed, Budget};
use multipath_testkit::BenchRunner;
use std::fmt::Write as _;

struct Point {
    threads: usize,
    total_sim_cycles: u64,
    best_wall_s: f64,
    median_wall_s: f64,
}

impl Point {
    fn cycles_per_sec(&self) -> f64 {
        self.total_sim_cycles as f64 / self.best_wall_s
    }
}

fn main() {
    let budget = Budget::quick();
    let cells = figure3_cells(&budget);
    let threads_list: Vec<usize> = std::env::var("MP_HOTPATH_THREADS")
        .ok()
        .map(|s| s.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 8]);

    // The sweep is deterministic, so the simulated-cycle total is fixed;
    // compute it once from an untimed pass.
    let total_sim_cycles: u64 = parallel::map_with(8, &cells, |c| run_cell(c, &budget))
        .iter()
        .map(|s| s.cycles)
        .sum();

    let mut runner = BenchRunner::from_env();
    let mut points = Vec::new();
    for &threads in &threads_list {
        let name = format!("fig3-quick/threads={threads}");
        runner.bench(&name, || {
            parallel::map_with(threads, &cells, |c| run_cell(c, &budget))
        });
        let times = &runner.results().last().expect("just benched").1;
        points.push(Point {
            threads,
            total_sim_cycles,
            best_wall_s: times[0].as_secs_f64(),
            median_wall_s: times[times.len() / 2].as_secs_f64(),
        });
    }

    // Probe-overhead A/B: the identical serial sweep with the full
    // observability stack on. Observation must not perturb simulation.
    let probed_sim_cycles: u64 = parallel::map_with(8, &cells, |c| run_cell_probed(c, &budget))
        .iter()
        .map(|s| s.cycles)
        .sum();
    assert_eq!(
        probed_sim_cycles, total_sim_cycles,
        "enabling probes changed simulated behaviour"
    );
    runner.bench("fig3-quick/probed-serial", || {
        parallel::map_with(1, &cells, |c| run_cell_probed(c, &budget))
    });
    let probed_best_s = runner.results().last().expect("just benched").1[0].as_secs_f64();
    let probed = Point {
        threads: 1,
        total_sim_cycles,
        best_wall_s: probed_best_s,
        median_wall_s: probed_best_s,
    };

    for p in &points {
        println!(
            "threads={}: {:.0} sim cycles/sec (best of {} samples)",
            p.threads,
            p.cycles_per_sec(),
            runner.results()[0].1.len()
        );
    }
    let disabled_serial = points.iter().find(|p| p.threads == 1);
    let overhead = disabled_serial.map(|s| s.best_wall_s / probed.best_wall_s);
    if let Some(ratio) = overhead {
        println!(
            "probes enabled (serial): {:.0} sim cycles/sec ({:.2}x the disabled build's speed)",
            probed.cycles_per_sec(),
            ratio
        );
    }

    let report = render_report(&budget, cells.len(), &points, &probed, overhead);
    let out = std::env::var("MP_HOTPATH_OUT").unwrap_or_else(|_| "BENCH_hotpath.json".to_owned());
    std::fs::write(&out, &report).expect("write hotpath report");
    println!("wrote {out}");
}

/// Renders the JSON report by hand — the workspace deliberately has no
/// external crates, so there is no serde; the schema is documented in
/// EXPERIMENTS.md and kept flat enough to diff by eye.
fn render_report(
    budget: &Budget,
    cells: usize,
    points: &[Point],
    probed: &Point,
    overhead: Option<f64>,
) -> String {
    let label = std::env::var("MP_HOTPATH_LABEL").unwrap_or_else(|_| "worktree".to_owned());
    let baseline: Option<(f64, f64)> = std::env::var("MP_HOTPATH_BASELINE").ok().and_then(|s| {
        let (a, b) = s.split_once(',')?;
        Some((a.trim().parse().ok()?, b.trim().parse().ok()?))
    });
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"multipath-hotpath-bench/v1\",");
    let _ = writeln!(out, "  \"benchmark\": \"fig3-quick-sweep\",");
    let _ = writeln!(out, "  \"label\": \"{label}\",");
    let _ = writeln!(
        out,
        "  \"budget\": {{ \"committed_per_program\": {}, \"max_cycles\": {}, \"seed\": {}, \"mixes\": {}, \"cells\": {} }},",
        budget.committed_per_program, budget.max_cycles, budget.seed, budget.mixes, cells
    );
    let _ = writeln!(out, "  \"runs\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{ \"threads\": {}, \"total_sim_cycles\": {}, \"best_wall_s\": {:.6}, \"median_wall_s\": {:.6}, \"cycles_per_sec\": {:.0} }}{comma}",
            p.threads, p.total_sim_cycles, p.best_wall_s, p.median_wall_s, p.cycles_per_sec()
        );
    }
    let _ = write!(out, "  ]");
    let _ = write!(
        out,
        ",\n  \"probes_enabled\": {{ \"threads\": 1, \"best_wall_s\": {:.6}, \"cycles_per_sec\": {:.0}",
        probed.best_wall_s,
        probed.cycles_per_sec()
    );
    if let Some(ratio) = overhead {
        let _ = write!(out, ", \"relative_speed\": {ratio:.3}");
    }
    let _ = write!(out, " }}");
    if let Some((base_serial, base_par)) = baseline {
        let serial = points.iter().find(|p| p.threads == 1);
        let par = points.iter().find(|p| p.threads != 1);
        let _ = write!(out, ",\n  \"baseline\": {{ ");
        let _ = write!(
            out,
            "\"cycles_per_sec_serial\": {base_serial:.0}, \"cycles_per_sec_parallel\": {base_par:.0} }}"
        );
        if let (Some(s), Some(p)) = (serial, par) {
            let serial_speedup = s.cycles_per_sec() / base_serial;
            let _ = write!(
                out,
                ",\n  \"speedup\": {{ \"serial\": {serial_speedup:.3}, \"parallel\": {:.3} }}",
                p.cycles_per_sec() / base_par
            );
            // Optional hard gate: fail the run if the probes-disabled
            // (NullSink) build fell below the acceptable ratio of the
            // reference numbers.
            if let Some(min) = std::env::var("MP_HOTPATH_MIN_RATIO")
                .ok()
                .and_then(|v| v.parse::<f64>().ok())
            {
                assert!(
                    serial_speedup >= min,
                    "hot-path regression: serial speedup {serial_speedup:.3} \
                     below MP_HOTPATH_MIN_RATIO={min}"
                );
            }
        }
    }
    out.push_str("\n}\n");
    out
}
