//! Regenerates Figure 4 of the paper on the parallel sweep engine.
//! Workers via MULTIPATH_THREADS (default: all cores); budget via
//! MULTIPATH_BUDGET=quick or MP_BENCH_COMMITS / MP_BENCH_MIXES
//! (defaults: 20k committed per program, all 8 mixes). Output is
//! byte-identical at every thread count.

fn main() {
    let budget = multipath_bench::Budget::from_env();
    let rows = multipath_bench::figure4(&budget);
    if multipath_bench::csv_requested() {
        print!("{}", multipath_bench::render_figure4_csv(&rows));
    } else {
        print!("{}", multipath_bench::render_figure4(&rows));
    }
}
