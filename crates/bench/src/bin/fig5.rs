//! Regenerates Figure 5 of the paper. Budget via MP_BENCH_COMMITS /
//! MP_BENCH_MIXES (defaults: 20k committed per program, all 8 mixes).

fn main() {
    let budget = multipath_bench::Budget::from_env();
    let rows = multipath_bench::figure5(&budget);
    if multipath_bench::csv_requested() {
        print!("{}", multipath_bench::render_figure5_csv(&rows));
    } else {
        print!("{}", multipath_bench::render_figure5(&rows));
    }
}
