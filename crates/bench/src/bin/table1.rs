//! Regenerates Table 1 of the paper (recycling statistics) on the
//! parallel sweep engine. Workers via MULTIPATH_THREADS; budget via
//! MULTIPATH_BUDGET=quick or MP_BENCH_COMMITS / MP_BENCH_MIXES. Output
//! is byte-identical at every thread count.

fn main() {
    let budget = multipath_bench::Budget::from_env();
    let rows = multipath_bench::table1(&budget);
    if multipath_bench::csv_requested() {
        print!("{}", multipath_bench::render_table1_csv(&rows));
    } else {
        print!("{}", multipath_bench::render_table1(&rows));
    }
}
