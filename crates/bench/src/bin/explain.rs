//! Regenerates the reuse/recycle attribution table (the harness-side
//! companion to `multipath explain`) for all eight kernels under
//! REC/RS/RU. Budget via MULTIPATH_BUDGET=quick or MP_BENCH_COMMITS;
//! MP_FORMAT=csv for CSV. Runs serially, so output is independent of
//! MULTIPATH_THREADS by construction.

fn main() {
    let budget = multipath_bench::Budget::from_env();
    let rows = multipath_bench::explain_rows(&budget);
    if multipath_bench::csv_requested() {
        print!("{}", multipath_bench::render_explain_csv(&rows));
    } else {
        print!("{}", multipath_bench::render_explain(&rows));
    }
}
