//! End-to-end tests of the serving layer over real loopback sockets:
//! every request here goes through TCP, the HTTP parser, the worker
//! pool, the cache, and a full simulation.

use multipath_serve::{ServeConfig, Server, ServerHandle};
use multipath_testkit::{http, Json};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn start(config: ServeConfig) -> ServerHandle {
    Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        ..config
    })
    .expect("bind loopback")
    .start()
}

fn small_run_body(bench: &str, commits: u64) -> String {
    format!("{{\"benches\": [\"{bench}\"], \"commits\": {commits}}}")
}

#[test]
fn healthz_and_unknown_routes() {
    let handle = start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let addr = handle.addr();

    let health = http::get(addr, "/healthz").unwrap();
    assert_eq!(health.status, 200);
    let doc = Json::parse(&health.text()).unwrap();
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("multipath-serve-health/v1")
    );

    let missing = http::get(addr, "/v1/nope").unwrap();
    assert_eq!(missing.status, 404);
    let doc = Json::parse(&missing.text()).unwrap();
    assert_eq!(doc.get("error").and_then(Json::as_str), Some("not_found"));

    // Wrong method on a known route.
    let wrong = http::get(addr, "/v1/run").unwrap();
    assert_eq!(wrong.status, 405);

    // Malformed request body.
    let bad = http::post_json(addr, "/v1/run", "{not json").unwrap();
    assert_eq!(bad.status, 400);
    let doc = Json::parse(&bad.text()).unwrap();
    assert_eq!(doc.get("error").and_then(Json::as_str), Some("bad_request"));
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("multipath-serve-error/v1")
    );

    handle.shutdown();
}

#[test]
fn run_endpoint_caches_and_labels_outcomes() {
    let handle = start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    let body = small_run_body("compress", 1500);

    let cold = http::post_json(addr, "/v1/run", &body).unwrap();
    assert_eq!(cold.status, 200, "{}", cold.text());
    assert_eq!(cold.header("x-multipath-cache"), Some("miss"));
    let doc = Json::parse(&cold.text()).expect("stats doc parses");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("multipath-stats/v1")
    );
    assert_eq!(doc.get("label").and_then(Json::as_str), Some("compress"));

    let warm = http::post_json(addr, "/v1/run", &body).unwrap();
    assert_eq!(warm.header("x-multipath-cache"), Some("hit"));
    assert_eq!(warm.body, cold.body, "cache must return identical bytes");

    // A different seed is a different content address.
    let other = http::post_json(
        addr,
        "/v1/run",
        r#"{"benches": ["compress"], "commits": 1500, "seed": 2}"#,
    )
    .unwrap();
    assert_eq!(other.header("x-multipath-cache"), Some("miss"));
    assert_ne!(other.body, cold.body);

    handle.shutdown();
}

#[test]
fn deadline_expiry_returns_well_formed_504() {
    let handle = start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    // A zero-millisecond deadline expires at the first stride poll, so
    // even a tiny machine cannot finish in time.
    let reply = http::post_json(
        addr,
        "/v1/run",
        r#"{"benches": ["compress"], "commits": 5000, "deadline_ms": 0}"#,
    )
    .unwrap();
    assert_eq!(reply.status, 504, "{}", reply.text());
    let doc = Json::parse(&reply.text()).expect("error body is valid JSON");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("multipath-serve-error/v1")
    );
    assert_eq!(
        doc.get("error").and_then(Json::as_str),
        Some("deadline_exceeded")
    );
    assert!(doc
        .get("message")
        .and_then(Json::as_str)
        .unwrap()
        .contains("deadline"));

    // The slot was released: the same request without a deadline runs.
    let ok = http::post_json(
        addr,
        "/v1/run",
        r#"{"benches": ["compress"], "commits": 5000}"#,
    );
    assert_eq!(ok.unwrap().status, 200);

    // And the metrics recorded the outcome.
    let metrics = Json::parse(&http::get(addr, "/metrics").unwrap().text()).unwrap();
    assert_eq!(
        metrics
            .get("rejected")
            .and_then(|r| r.get("deadline_exceeded"))
            .and_then(Json::as_u64),
        Some(1)
    );

    handle.shutdown();
}

#[test]
fn concurrent_identical_requests_single_flight() {
    let handle = start(ServeConfig {
        workers: 8,
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    let body = Arc::new(small_run_body("gcc", 2000));

    let clients: Vec<_> = (0..4)
        .map(|_| {
            let body = Arc::clone(&body);
            std::thread::spawn(move || {
                let r = http::post_json(addr, "/v1/run", &body).unwrap();
                assert_eq!(r.status, 200);
                (r.header("x-multipath-cache").unwrap().to_owned(), r.body)
            })
        })
        .collect();
    let results: Vec<_> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    for (_, bytes) in &results {
        assert_eq!(bytes, &results[0].1, "all clients see identical bytes");
    }

    let metrics = Json::parse(&http::get(addr, "/metrics").unwrap().text()).unwrap();
    let cache = metrics.get("cache").unwrap();
    let hits = cache.get("hits").and_then(Json::as_u64).unwrap();
    let misses = cache.get("misses").and_then(Json::as_u64).unwrap();
    let coalesced = cache.get("coalesced").and_then(Json::as_u64).unwrap();
    assert_eq!(misses, 1, "identical concurrent requests simulate once");
    assert_eq!(
        hits + misses + coalesced,
        4,
        "every request classified once"
    );
    assert_eq!(
        metrics
            .get("requests")
            .and_then(|r| r.get("run"))
            .and_then(Json::as_u64),
        Some(4)
    );

    handle.shutdown();
}

#[test]
fn sweep_streams_cells_in_order_and_shares_the_cache() {
    let handle = start(ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    let sweep = r#"{"cells": [
        {"benches": ["compress"], "features": "tme", "commits": 1500},
        {"benches": ["compress"], "features": "rec", "commits": 1500},
        {"benches": ["go"], "features": "rec", "commits": 1500}
    ]}"#;

    let reply = http::post_json(addr, "/v1/sweep", sweep).unwrap();
    assert_eq!(reply.status, 200, "{}", reply.text());
    assert_eq!(reply.header("transfer-encoding"), Some("chunked"));
    let text = reply.text();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3);
    for (i, line) in lines.iter().enumerate() {
        let cell = Json::parse(line).expect("NDJSON line parses");
        assert_eq!(
            cell.get("schema").and_then(Json::as_str),
            Some("multipath-serve-cell/v1")
        );
        assert_eq!(cell.get("index").and_then(Json::as_u64), Some(i as u64));
        assert_eq!(cell.get("cached"), Some(&Json::Bool(false)));
        assert!(cell.get("cycles").and_then(Json::as_u64).unwrap() > 0);
        assert!(cell.get("ipc").and_then(Json::as_f64).unwrap() > 0.0);
    }
    assert!(
        lines[1].contains("\"features\":\"REC\""),
        "cell order follows request order: {}",
        lines[1]
    );

    // A /v1/run for one of the cells is a cache hit: the sweep and run
    // paths share one content-addressed cache.
    let run = http::post_json(
        addr,
        "/v1/run",
        r#"{"benches": ["compress"], "features": "rec", "commits": 1500}"#,
    )
    .unwrap();
    assert_eq!(run.header("x-multipath-cache"), Some("hit"));

    // Repeating the sweep is answered entirely from cache.
    let again = http::post_json(addr, "/v1/sweep", sweep).unwrap();
    for line in again.text().lines() {
        let cell = Json::parse(line).unwrap();
        assert_eq!(cell.get("cached"), Some(&Json::Bool(true)), "{line}");
    }

    handle.shutdown();
}

#[test]
fn oversize_documents_bypass_a_tiny_cache() {
    // A 1-byte budget stores nothing: every request misses and the
    // oversize counter records why.
    let handle = start(ServeConfig {
        workers: 1,
        cache_bytes: 1,
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    let body = small_run_body("compress", 1000);
    for _ in 0..2 {
        let r = http::post_json(addr, "/v1/run", &body).unwrap();
        assert_eq!(r.header("x-multipath-cache"), Some("miss"));
    }
    let metrics = Json::parse(&http::get(addr, "/metrics").unwrap().text()).unwrap();
    let cache = metrics.get("cache").unwrap();
    assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(2));
    assert_eq!(cache.get("oversize").and_then(Json::as_u64), Some(2));
    assert_eq!(cache.get("entries").and_then(Json::as_u64), Some(0));

    handle.shutdown();
}

#[test]
fn body_size_limit_is_enforced() {
    let handle = start(ServeConfig {
        workers: 1,
        max_body: 128,
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    let huge = format!(
        "{{\"benches\": [\"compress\"], \"commits\": 1000, \"seed\": {}}}",
        "1".repeat(200)
    );
    let reply = http::post_json(addr, "/v1/run", &huge).unwrap();
    assert_eq!(reply.status, 413);
    let doc = Json::parse(&reply.text()).unwrap();
    assert_eq!(
        doc.get("error").and_then(Json::as_str),
        Some("payload_too_large")
    );
    handle.shutdown();
}

#[test]
fn explain_endpoint_serves_cached_attribution() {
    let handle = start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    let path = "/v1/explain/compress?commits=1500&top=3";

    let cold = http::get(addr, path).unwrap();
    assert_eq!(cold.status, 200, "{}", cold.text());
    assert_eq!(cold.header("x-multipath-cache"), Some("miss"));
    let doc = Json::parse(&cold.text()).expect("explain doc parses");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("multipath-explain/v1")
    );

    let warm = http::get(addr, path).unwrap();
    assert_eq!(warm.header("x-multipath-cache"), Some("hit"));
    assert_eq!(warm.body, cold.body);

    let bad = http::get(addr, "/v1/explain/nope").unwrap();
    assert_eq!(bad.status, 400);

    handle.shutdown();
}

#[test]
fn graceful_shutdown_drains_cleanly() {
    let server = Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let flag = Arc::new(AtomicBool::new(false));
    let run_flag = Arc::clone(&flag);
    let thread = std::thread::spawn(move || server.run(&run_flag));

    // A request completes, then shutdown stops the listener.
    let ok = http::post_json(addr, "/v1/run", &small_run_body("li", 1000)).unwrap();
    assert_eq!(ok.status, 200);
    flag.store(true, Ordering::Release);
    thread.join().expect("accept loop exits");
    assert!(
        http::get(addr, "/healthz").is_err(),
        "listener is closed after drain"
    );
}
