//! The content-addressed result cache: completed simulation documents
//! keyed by a hash of everything that determines their bytes.
//!
//! Two properties make caching safe here at all: the simulator is
//! deterministic (same canonical config + kernel list + seed + budget →
//! byte-identical output), and the cache key is derived from exactly that
//! canonical form (see [`crate::request`]). On top of the map this adds:
//!
//! - **LRU-by-bytes eviction**: the cache is bounded by total body bytes,
//!   not entry count — one 50 MB interval-heavy document should not be
//!   able to pin forty small ones out.
//! - **Single-flight coalescing**: concurrent requests for the same key
//!   block on the first one's computation instead of simulating the same
//!   workload N times; each request is classified exactly once as a
//!   `hit`, `miss`, or `coalesced` so the `/metrics` counters reconcile
//!   with the request count.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Condvar, Mutex};

/// A snapshot of the cache counters, for `/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Requests answered from a stored entry without waiting.
    pub hits: u64,
    /// Requests that had to compute (including retries after an
    /// abandoned computation).
    pub misses: u64,
    /// Requests that waited for another request's in-flight computation
    /// and were answered by its result.
    pub coalesced: u64,
    /// Entries removed to get back under the byte budget.
    pub evictions: u64,
    /// Completed documents too large to store at all.
    pub oversize: u64,
    /// Bytes currently stored.
    pub bytes: u64,
    /// Entries currently stored.
    pub entries: u64,
}

struct Entry {
    body: Arc<String>,
    last_used: u64,
}

struct CacheInner {
    entries: HashMap<u64, Entry>,
    /// Keys whose documents are being computed right now.
    inflight: HashSet<u64>,
    bytes: usize,
    /// Monotonic recency clock (bumped per lookup, not wall time).
    tick: u64,
    hits: u64,
    misses: u64,
    coalesced: u64,
    evictions: u64,
    oversize: u64,
}

/// A bounded, content-addressed store of finished result documents.
pub struct ResultCache {
    inner: Mutex<CacheInner>,
    /// Signals waiters that an in-flight computation finished (or was
    /// abandoned).
    done: Condvar,
    capacity: usize,
}

/// The outcome of [`ResultCache::get_or_begin`].
pub enum Fetched<'a> {
    /// The document was already cached.
    Hit(Arc<String>),
    /// Another request computed the document while this one waited.
    Coalesced(Arc<String>),
    /// This request must compute the document; the guard holds the
    /// single-flight slot until [`ComputeGuard::fulfill`]ed or dropped.
    Miss(ComputeGuard<'a>),
}

impl ResultCache {
    /// Creates a cache bounded at `capacity` total body bytes (at least
    /// one byte, so a zero budget degenerates to "cache nothing").
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            inner: Mutex::new(CacheInner {
                entries: HashMap::new(),
                inflight: HashSet::new(),
                bytes: 0,
                tick: 0,
                hits: 0,
                misses: 0,
                coalesced: 0,
                evictions: 0,
                oversize: 0,
            }),
            done: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Looks up `key`, blocking behind an identical in-flight request if
    /// one exists. Exactly one of the `hits` / `misses` / `coalesced`
    /// counters is bumped per call.
    pub fn get_or_begin(&self, key: u64) -> Fetched<'_> {
        let mut waited = false;
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        loop {
            if inner.entries.contains_key(&key) {
                inner.tick += 1;
                let tick = inner.tick;
                let entry = inner.entries.get_mut(&key).expect("checked above");
                entry.last_used = tick;
                let body = Arc::clone(&entry.body);
                if waited {
                    inner.coalesced += 1;
                    return Fetched::Coalesced(body);
                }
                inner.hits += 1;
                return Fetched::Hit(body);
            }
            if inner.inflight.contains(&key) {
                waited = true;
                inner = self.done.wait(inner).expect("cache lock poisoned");
                continue;
            }
            // Nobody has it and nobody is computing it: this caller is
            // the single flight. (A waiter whose leader abandoned lands
            // here too — it becomes the new miss.)
            inner.inflight.insert(key);
            inner.misses += 1;
            return Fetched::Miss(ComputeGuard {
                cache: self,
                key,
                resolved: false,
            });
        }
    }

    /// The current counter values.
    pub fn counters(&self) -> CacheCounters {
        let inner = self.inner.lock().expect("cache lock poisoned");
        CacheCounters {
            hits: inner.hits,
            misses: inner.misses,
            coalesced: inner.coalesced,
            evictions: inner.evictions,
            oversize: inner.oversize,
            bytes: inner.bytes as u64,
            entries: inner.entries.len() as u64,
        }
    }

    /// The configured byte budget.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn insert(&self, key: u64, body: &Arc<String>) {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        inner.inflight.remove(&key);
        if body.len() > self.capacity {
            inner.oversize += 1;
        } else {
            inner.tick += 1;
            let tick = inner.tick;
            inner.bytes += body.len();
            let prev = inner.entries.insert(
                key,
                Entry {
                    body: Arc::clone(body),
                    last_used: tick,
                },
            );
            if let Some(prev) = prev {
                inner.bytes -= prev.body.len();
            }
            while inner.bytes > self.capacity {
                let oldest = inner
                    .entries
                    .iter()
                    .filter(|(k, _)| **k != key)
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| *k)
                    .expect("bytes > capacity implies an evictable entry");
                let evicted = inner.entries.remove(&oldest).expect("key exists");
                inner.bytes -= evicted.body.len();
                inner.evictions += 1;
            }
        }
        drop(inner);
        self.done.notify_all();
    }

    fn abandon(&self, key: u64) {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        inner.inflight.remove(&key);
        drop(inner);
        self.done.notify_all();
    }
}

/// Ownership of a key's single-flight slot. Exactly one guard exists per
/// in-flight key; dropping it without [`ComputeGuard::fulfill`] releases
/// waiters to recompute (so a panicking or deadline-cancelled request
/// never wedges the key).
pub struct ComputeGuard<'a> {
    cache: &'a ResultCache,
    key: u64,
    resolved: bool,
}

impl ComputeGuard<'_> {
    /// Stores the computed document, wakes the coalesced waiters, and
    /// returns the shared body.
    pub fn fulfill(mut self, body: String) -> Arc<String> {
        self.resolved = true;
        let body = Arc::new(body);
        self.cache.insert(self.key, &body);
        body
    }

    /// Releases the slot without a result (deadline exceeded, run error).
    pub fn abandon(mut self) {
        self.resolved = true;
        self.cache.abandon(self.key);
    }
}

impl Drop for ComputeGuard<'_> {
    fn drop(&mut self) {
        if !self.resolved {
            self.cache.abandon(self.key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn must_miss(cache: &ResultCache, key: u64) -> ComputeGuard<'_> {
        match cache.get_or_begin(key) {
            Fetched::Miss(guard) => guard,
            _ => panic!("expected miss for key {key}"),
        }
    }

    #[test]
    fn hit_after_fulfill() {
        let cache = ResultCache::new(1024);
        must_miss(&cache, 7).fulfill("seven".to_owned());
        match cache.get_or_begin(7) {
            Fetched::Hit(body) => assert_eq!(*body, "seven"),
            _ => panic!("expected hit"),
        }
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.entries, c.bytes), (1, 1, 1, 5));
    }

    #[test]
    fn lru_evicts_by_bytes_in_recency_order() {
        let cache = ResultCache::new(10);
        must_miss(&cache, 1).fulfill("aaaa".to_owned()); // 4 bytes
        must_miss(&cache, 2).fulfill("bbbb".to_owned()); // 8 bytes total
                                                         // Touch key 1 so key 2 is now least recently used.
        assert!(matches!(cache.get_or_begin(1), Fetched::Hit(_)));
        must_miss(&cache, 3).fulfill("cccc".to_owned()); // 12 > 10: evict 2
        assert!(matches!(cache.get_or_begin(1), Fetched::Hit(_)));
        assert!(matches!(cache.get_or_begin(3), Fetched::Hit(_)));
        assert!(matches!(cache.get_or_begin(2), Fetched::Miss(_)));
        let c = cache.counters();
        assert_eq!(c.evictions, 1);
        assert_eq!(c.entries, 2);
        assert_eq!(c.bytes, 8);
    }

    #[test]
    fn oversize_documents_are_not_stored() {
        let cache = ResultCache::new(4);
        must_miss(&cache, 1).fulfill("too large to keep".to_owned());
        assert!(matches!(cache.get_or_begin(1), Fetched::Miss(_)));
        let c = cache.counters();
        assert_eq!((c.oversize, c.entries, c.bytes), (1, 0, 0));
    }

    #[test]
    fn concurrent_identical_requests_coalesce() {
        let cache = Arc::new(ResultCache::new(1 << 20));
        let guard = must_miss(&cache, 42);
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || match cache.get_or_begin(42) {
                    Fetched::Coalesced(body) => body.len(),
                    Fetched::Hit(body) => body.len(),
                    Fetched::Miss(_) => panic!("second flight for an in-flight key"),
                })
            })
            .collect();
        // Give the waiters time to block on the in-flight key, then
        // resolve it.
        while cache.counters().misses < 1 {
            std::thread::yield_now();
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
        guard.fulfill("answer".to_owned());
        for w in waiters {
            assert_eq!(w.join().unwrap(), 6);
        }
        let c = cache.counters();
        assert_eq!(c.misses, 1, "single flight");
        assert_eq!(c.hits + c.coalesced, 4);
    }

    #[test]
    fn abandoned_flight_releases_waiters_to_recompute() {
        let cache = Arc::new(ResultCache::new(1 << 20));
        let guard = must_miss(&cache, 9);
        let waiter = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || match cache.get_or_begin(9) {
                Fetched::Miss(g) => {
                    g.fulfill("recomputed".to_owned());
                    true
                }
                _ => false,
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        guard.abandon();
        assert!(waiter.join().unwrap(), "waiter should become the new miss");
        assert_eq!(cache.counters().misses, 2);
    }
}
