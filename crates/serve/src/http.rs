//! Server-side HTTP/1.1 plumbing: request parsing and response framing.
//!
//! Deliberately minimal — the service speaks exactly the dialect its own
//! test client ([`multipath_testkit::http`]) and `curl` speak: one request
//! per connection, bodies framed by `Content-Length`, responses framed by
//! `Content-Length` or chunked transfer encoding. Every response carries
//! `Connection: close`, which bounds graceful-drain time to the in-flight
//! request set.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// The request method (`GET`, `POST`, ...), uppercase as sent.
    pub method: String,
    /// The percent-decoded path without the query string.
    pub path: String,
    /// Percent-decoded `(key, value)` query parameters in arrival order.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The first query parameter with the given key, if any.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum RequestError {
    /// The declared `Content-Length` exceeds the server's body limit —
    /// answered with `413 Payload Too Large`.
    BodyTooLarge(usize),
    /// The bytes on the wire are not a well-formed HTTP/1.1 request —
    /// answered with `400 Bad Request`.
    Malformed(String),
}

/// Reads and parses one request from the connection. Bodies larger than
/// `max_body` bytes are rejected without being read.
pub fn read_request(
    stream: &mut BufReader<TcpStream>,
    max_body: usize,
) -> Result<Request, RequestError> {
    let line = read_line(stream)?;
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if !m.is_empty() && v.starts_with("HTTP/1.") => (m, t, v),
        _ => {
            return Err(RequestError::Malformed(format!(
                "bad request line {line:?}"
            )))
        }
    };
    let _ = version;
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let path = percent_decode(raw_path);
    let query = raw_query
        .split('&')
        .filter(|s| !s.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect();

    let mut headers = Vec::new();
    loop {
        let line = read_line(stream)?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| RequestError::Malformed(format!("bad header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }
    if headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        return Err(RequestError::Malformed(
            "chunked request bodies are not supported".to_owned(),
        ));
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| RequestError::Malformed(format!("bad Content-Length {v:?}")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > max_body {
        return Err(RequestError::BodyTooLarge(content_length));
    }
    let mut body = vec![0u8; content_length];
    stream
        .read_exact(&mut body)
        .map_err(|e| RequestError::Malformed(format!("short body: {e}")))?;

    Ok(Request {
        method: method.to_owned(),
        path,
        query,
        headers,
        body,
    })
}

/// Writes a complete `Content-Length`-framed response and flushes it.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// An in-progress chunked response — the streaming frame under
/// `POST /v1/sweep`'s NDJSON output.
pub struct ChunkedWriter<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> ChunkedWriter<'a> {
    /// Writes the response head with `Transfer-Encoding: chunked` and
    /// returns a writer for the body chunks.
    pub fn start(
        stream: &'a mut TcpStream,
        status: u16,
        reason: &str,
        content_type: &str,
    ) -> std::io::Result<ChunkedWriter<'a>> {
        let head = format!(
            "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
             Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
        );
        stream.write_all(head.as_bytes())?;
        Ok(ChunkedWriter { stream })
    }

    /// Sends one chunk (empty input is skipped — a zero-length chunk
    /// would terminate the body).
    pub fn chunk(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        if bytes.is_empty() {
            return Ok(());
        }
        write!(self.stream, "{:x}\r\n", bytes.len())?;
        self.stream.write_all(bytes)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Sends the terminating zero chunk.
    pub fn finish(self) -> std::io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

/// Reads one CRLF-terminated line, without the terminator.
fn read_line(reader: &mut BufReader<TcpStream>) -> Result<String, RequestError> {
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| RequestError::Malformed(format!("read line: {e}")))?;
    if line.is_empty() {
        return Err(RequestError::Malformed(
            "connection closed mid-request".to_owned(),
        ));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Decodes `%XX` escapes and `+` (as space); bad escapes pass through
/// verbatim — path matching then simply fails with 404 rather than 500.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                match bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok())
                {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::percent_decode;

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("plain"), "plain");
        assert_eq!(percent_decode("a%20b+c"), "a b c");
        assert_eq!(percent_decode("%2Fv1%2Frun"), "/v1/run");
        assert_eq!(percent_decode("bad%zzescape%2"), "bad%zzescape%2");
    }
}
