//! Server observability: request/outcome counters, host-stage profile
//! aggregation, and the `multipath-serve-metrics/v1` document.
//!
//! Counters are plain atomics bumped on the request path; the per-stage
//! host profile (the same [`StageProfile`] `multipath trace` prints) is
//! accumulated under a mutex since simulations finish at millisecond
//! granularity. The rendered document is hand-built JSON like every other
//! emitter in the workspace, so `testkit::Json` round-trips it in tests.

use crate::cache::CacheCounters;
use multipath_core::StageProfile;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Live counters for one server instance.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// `POST /v1/run` requests that parsed successfully.
    pub run_requests: AtomicU64,
    /// `POST /v1/sweep` requests that parsed successfully.
    pub sweep_requests: AtomicU64,
    /// Individual cells simulated (or served from cache) across sweeps.
    pub sweep_cells: AtomicU64,
    /// `GET /v1/explain/:kernel` requests that parsed successfully.
    pub explain_requests: AtomicU64,
    /// Requests shed with `429` because the queue was full or draining.
    pub rejected_overloaded: AtomicU64,
    /// Runs cancelled by their deadline (`504`).
    pub deadline_exceeded: AtomicU64,
    /// Requests answered with any other 4xx.
    pub bad_requests: AtomicU64,
    /// Host time per pipeline stage, summed over every simulation this
    /// server ran.
    pub profile: Mutex<StageProfile>,
}

impl ServerMetrics {
    /// Adds one finished simulation's host-stage profile.
    pub fn record_profile(&self, p: &StageProfile) {
        let mut total = self.profile.lock().expect("profile lock poisoned");
        total.commit += p.commit;
        total.writeback += p.writeback;
        total.issue += p.issue;
        total.rename += p.rename;
        total.fetch += p.fetch;
        total.probes += p.probes;
        total.steps += p.steps;
    }

    /// Renders the `multipath-serve-metrics/v1` document.
    ///
    /// `queue` is `(depth, running, workers, capacity)` sampled from the
    /// worker pool at render time.
    pub fn render(
        &self,
        cache: &CacheCounters,
        cache_capacity: usize,
        queue: QueueSnapshot,
    ) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"schema\": \"multipath-serve-metrics/v1\",\n");
        let _ = writeln!(
            out,
            "  \"requests\": {{\n    \"run\": {},\n    \"sweep\": {},\n    \
             \"sweep_cells\": {},\n    \"explain\": {}\n  }},",
            self.run_requests.load(Ordering::Relaxed),
            self.sweep_requests.load(Ordering::Relaxed),
            self.sweep_cells.load(Ordering::Relaxed),
            self.explain_requests.load(Ordering::Relaxed),
        );
        let _ = writeln!(
            out,
            "  \"rejected\": {{\n    \"overloaded\": {},\n    \
             \"deadline_exceeded\": {},\n    \"bad_request\": {}\n  }},",
            self.rejected_overloaded.load(Ordering::Relaxed),
            self.deadline_exceeded.load(Ordering::Relaxed),
            self.bad_requests.load(Ordering::Relaxed),
        );
        let _ = writeln!(
            out,
            "  \"queue\": {{\n    \"depth\": {},\n    \"running\": {},\n    \
             \"workers\": {},\n    \"capacity\": {}\n  }},",
            queue.depth, queue.running, queue.workers, queue.capacity,
        );
        let _ = writeln!(
            out,
            "  \"cache\": {{\n    \"hits\": {},\n    \"misses\": {},\n    \
             \"coalesced\": {},\n    \"evictions\": {},\n    \"oversize\": {},\n    \
             \"bytes\": {},\n    \"entries\": {},\n    \"capacity_bytes\": {}\n  }},",
            cache.hits,
            cache.misses,
            cache.coalesced,
            cache.evictions,
            cache.oversize,
            cache.bytes,
            cache.entries,
            cache_capacity,
        );
        let prof = self.profile.lock().expect("profile lock poisoned");
        let _ = writeln!(out, "  \"host_profile\": {{");
        let _ = writeln!(out, "    \"steps\": {},", prof.steps);
        for (i, (name, d)) in prof.rows().iter().enumerate() {
            let _ = write!(out, "    \"{name}_s\": {:.6}", d.as_secs_f64());
            out.push_str(if i + 1 < prof.rows().len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  }\n}\n");
        out
    }
}

/// A point-in-time view of the worker pool, for [`ServerMetrics::render`].
#[derive(Debug, Clone, Copy, Default)]
pub struct QueueSnapshot {
    /// Jobs queued but not yet running.
    pub depth: usize,
    /// Jobs currently executing.
    pub running: usize,
    /// Worker-thread count.
    pub workers: usize,
    /// Queue capacity (the 429 threshold).
    pub capacity: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use multipath_testkit::Json;
    use std::time::Duration;

    #[test]
    fn metrics_document_round_trips() {
        let m = ServerMetrics::default();
        m.run_requests.store(7, Ordering::Relaxed);
        m.record_profile(&StageProfile {
            commit: Duration::from_millis(5),
            steps: 1234,
            ..StageProfile::default()
        });
        let cache = CacheCounters {
            hits: 3,
            misses: 4,
            ..CacheCounters::default()
        };
        let doc = m.render(
            &cache,
            1 << 20,
            QueueSnapshot {
                depth: 1,
                running: 2,
                workers: 4,
                capacity: 64,
            },
        );
        let v = Json::parse(&doc).expect("well-formed metrics JSON");
        assert_eq!(
            v.get("schema").and_then(Json::as_str),
            Some("multipath-serve-metrics/v1")
        );
        assert_eq!(
            v.get("requests")
                .and_then(|r| r.get("run"))
                .and_then(Json::as_u64),
            Some(7)
        );
        assert_eq!(
            v.get("cache")
                .and_then(|c| c.get("misses"))
                .and_then(Json::as_u64),
            Some(4)
        );
        assert_eq!(
            v.get("host_profile")
                .and_then(|p| p.get("steps"))
                .and_then(Json::as_u64),
            Some(1234)
        );
        assert_eq!(
            v.get("host_profile")
                .and_then(|p| p.get("commit_s"))
                .and_then(Json::as_f64),
            Some(0.005)
        );
    }
}
