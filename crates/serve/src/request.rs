//! Request bodies: parsing, validation, and cache-key derivation.
//!
//! A run request carries exactly the knobs the `multipath run`/`trace`
//! CLI exposes, with the same spellings and the same defaults — the
//! loopback smoke test depends on a JSON body and a CLI invocation
//! mapping to the *same* simulation. The cache key is the FNV-1a digest
//! of the canonical configuration string plus everything else that
//! determines the result bytes (kernels, seed, commit budget, interval
//! width); the deadline is deliberately excluded, since it changes when
//! an answer arrives, never what it is.

use multipath_core::{AltPolicy, Features, SimConfig};
use multipath_testkit::Json;
use multipath_workload::Benchmark;

/// A validated `POST /v1/run` body (also one sweep cell).
#[derive(Debug, Clone)]
pub struct RunRequest {
    /// The workload kernels, in request order.
    pub benches: Vec<Benchmark>,
    /// The feature set (default `rec-rs-ru`, as in the CLI).
    pub features: Features,
    /// The fully configured machine (geometry + features + policy).
    pub config: SimConfig,
    /// Committed instructions per program (default 30000).
    pub commits: u64,
    /// Workload seed (default 1).
    pub seed: u64,
    /// Time-series interval width in cycles (default 100).
    pub interval: u64,
    /// Optional wall-clock budget for the simulation, in milliseconds.
    pub deadline_ms: Option<u64>,
}

impl RunRequest {
    /// Parses and validates a JSON request body.
    pub fn parse(body: &str) -> Result<RunRequest, String> {
        let doc = Json::parse(body).map_err(|e| format!("invalid JSON: {e}"))?;
        RunRequest::from_json(&doc)
    }

    /// Builds a request from an already-parsed JSON object (used directly
    /// for the cells of a sweep body).
    pub fn from_json(doc: &Json) -> Result<RunRequest, String> {
        let Json::Obj(map) = doc else {
            return Err("request body must be a JSON object".to_owned());
        };
        const KNOWN: [&str; 8] = [
            "benches",
            "features",
            "machine",
            "policy",
            "commits",
            "seed",
            "interval",
            "deadline_ms",
        ];
        for key in map.keys() {
            if !KNOWN.contains(&key.as_str()) {
                return Err(format!(
                    "unknown field {key:?} (expected one of {})",
                    KNOWN.join(", ")
                ));
            }
        }

        let benches = doc
            .get("benches")
            .ok_or("missing required field \"benches\"")?
            .as_arr()
            .ok_or("\"benches\" must be an array of kernel names")?
            .iter()
            .map(|b| {
                let name = b.as_str().ok_or("\"benches\" entries must be strings")?;
                Benchmark::from_name(name)
                    .ok_or_else(|| format!("unknown benchmark {name:?} (see `multipath list`)"))
            })
            .collect::<Result<Vec<_>, String>>()?;
        if benches.is_empty() {
            return Err("\"benches\" must name at least one kernel".to_owned());
        }

        let features = match doc.get("features") {
            None => Features::rec_rs_ru(),
            Some(v) => {
                let s = v.as_str().ok_or("\"features\" must be a string")?;
                Features::from_name(s).ok_or_else(|| format!("unknown features {s:?}"))?
            }
        };
        let machine = match doc.get("machine") {
            None => SimConfig::big_2_16(),
            Some(v) => {
                let s = v.as_str().ok_or("\"machine\" must be a string")?;
                SimConfig::from_machine_name(s).ok_or_else(|| format!("unknown machine {s:?}"))?
            }
        };
        let mut config = machine.with_features(features);
        if let Some(v) = doc.get("policy") {
            let s = v.as_str().ok_or("\"policy\" must be a string")?;
            let policy = AltPolicy::from_label(s).ok_or_else(|| format!("unknown policy {s:?}"))?;
            config = config.with_alt_policy(policy);
        }
        if benches.len() > config.contexts {
            return Err(format!(
                "{} programs exceed the machine's {} hardware contexts",
                benches.len(),
                config.contexts
            ));
        }

        let commits = parse_u64(doc, "commits")?.unwrap_or(30_000);
        if commits == 0 {
            return Err("\"commits\" must be positive".to_owned());
        }
        let seed = parse_u64(doc, "seed")?.unwrap_or(1);
        let interval = parse_u64(doc, "interval")?.unwrap_or(100).max(1);
        let deadline_ms = parse_u64(doc, "deadline_ms")?;

        Ok(RunRequest {
            benches,
            features,
            config,
            commits,
            seed,
            interval,
            deadline_ms,
        })
    }

    /// The workload label (`"compress+gcc"`), as the CLI prints it.
    pub fn label(&self) -> String {
        self.benches
            .iter()
            .map(|b| b.name())
            .collect::<Vec<_>>()
            .join("+")
    }

    /// The content address of this request's result document.
    pub fn cache_key(&self) -> u64 {
        fnv1a(self.canonical_string().as_bytes())
    }

    /// The canonical form hashed by [`RunRequest::cache_key`]: field
    /// order is fixed here, so JSON bodies spelling the same request with
    /// reordered keys hash identically.
    pub fn canonical_string(&self) -> String {
        format!(
            "run;config={};benches={};seed={};commits={};interval={}",
            self.config.canonical_string(),
            self.label(),
            self.seed,
            self.commits,
            self.interval
        )
    }
}

/// A validated `GET /v1/explain/:kernel` request.
#[derive(Debug, Clone)]
pub struct ExplainRequest {
    /// The single kernel to attribute.
    pub bench: Benchmark,
    /// The feature set (default `rec-rs-ru`).
    pub features: Features,
    /// The fully configured machine.
    pub config: SimConfig,
    /// Committed instructions (default 30000).
    pub commits: u64,
    /// Workload seed (default 1).
    pub seed: u64,
    /// Rows per attribution table (default 10).
    pub top: usize,
}

impl ExplainRequest {
    /// Builds an explain request from the path's kernel name and the
    /// query parameters (`features`, `machine`, `policy`, `commits`,
    /// `seed`, `top`).
    pub fn from_query(kernel: &str, params: &[(String, String)]) -> Result<ExplainRequest, String> {
        let bench = Benchmark::from_name(kernel)
            .ok_or_else(|| format!("unknown benchmark {kernel:?} (see `multipath list`)"))?;
        let mut features = Features::rec_rs_ru();
        let mut machine = SimConfig::big_2_16();
        let mut policy = None;
        let mut commits: u64 = 30_000;
        let mut seed: u64 = 1;
        let mut top: usize = 10;
        for (key, value) in params {
            match key.as_str() {
                "features" => {
                    features = Features::from_name(value)
                        .ok_or_else(|| format!("unknown features {value:?}"))?;
                }
                "machine" => {
                    machine = SimConfig::from_machine_name(value)
                        .ok_or_else(|| format!("unknown machine {value:?}"))?;
                }
                "policy" => {
                    policy = Some(
                        AltPolicy::from_label(value)
                            .ok_or_else(|| format!("unknown policy {value:?}"))?,
                    );
                }
                "commits" => {
                    commits = value
                        .parse()
                        .ok()
                        .filter(|&n: &u64| n > 0)
                        .ok_or_else(|| format!("bad commits {value:?}"))?;
                }
                "seed" => {
                    seed = value.parse().map_err(|_| format!("bad seed {value:?}"))?;
                }
                "top" => {
                    top = value.parse().map_err(|_| format!("bad top {value:?}"))?;
                }
                other => return Err(format!("unknown query parameter {other:?}")),
            }
        }
        let mut config = machine.with_features(features);
        if let Some(p) = policy {
            config = config.with_alt_policy(p);
        }
        Ok(ExplainRequest {
            bench,
            features,
            config,
            commits,
            seed,
            top,
        })
    }

    /// The content address of this request's explain document.
    pub fn cache_key(&self) -> u64 {
        let canon = format!(
            "explain;config={};bench={};seed={};commits={};top={}",
            self.config.canonical_string(),
            self.bench.name(),
            self.seed,
            self.commits,
            self.top
        );
        fnv1a(canon.as_bytes())
    }
}

fn parse_u64(doc: &Json, key: &str) -> Result<Option<u64>, String> {
    match doc.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("{key:?} must be a non-negative integer")),
    }
}

/// FNV-1a 64 — the workspace's standard content-address digest (the same
/// function fingerprints canonical configurations in `multipath-core`).
fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_cli() {
        let req = RunRequest::parse(r#"{"benches": ["compress"]}"#).unwrap();
        assert_eq!(req.label(), "compress");
        assert_eq!(req.features.label(), "REC/RS/RU");
        assert_eq!((req.commits, req.seed, req.interval), (30_000, 1, 100));
        assert_eq!(req.deadline_ms, None);
    }

    #[test]
    fn rejects_unknown_fields_and_bad_values() {
        assert!(
            RunRequest::parse(r#"{"benches": ["compress"], "bogus": 1}"#)
                .unwrap_err()
                .contains("unknown field")
        );
        assert!(RunRequest::parse(r#"{"benches": []}"#).is_err());
        assert!(RunRequest::parse(r#"{"benches": ["nope"]}"#).is_err());
        assert!(RunRequest::parse(r#"{"benches": ["gcc"], "commits": 0}"#).is_err());
        assert!(RunRequest::parse(r#"{"benches": ["gcc"], "features": "max"}"#).is_err());
        assert!(RunRequest::parse("[1,2]").is_err());
    }

    #[test]
    fn cache_key_is_stable_across_json_key_order() {
        let a = RunRequest::parse(
            r#"{"benches": ["compress","gcc"], "seed": 3, "commits": 500, "features": "rec"}"#,
        )
        .unwrap();
        let b = RunRequest::parse(
            r#"{"features": "rec", "commits": 500, "seed": 3, "benches": ["compress","gcc"]}"#,
        )
        .unwrap();
        assert_eq!(a.cache_key(), b.cache_key());
        // Deadline is excluded: it cannot change the result bytes.
        let c = RunRequest::parse(
            r#"{"benches": ["compress","gcc"], "seed": 3, "commits": 500,
                "features": "rec", "deadline_ms": 5}"#,
        )
        .unwrap();
        assert_eq!(a.cache_key(), c.cache_key());
        // Every simulation knob is included.
        for other in [
            r#"{"benches": ["gcc","compress"], "seed": 3, "commits": 500, "features": "rec"}"#,
            r#"{"benches": ["compress","gcc"], "seed": 4, "commits": 500, "features": "rec"}"#,
            r#"{"benches": ["compress","gcc"], "seed": 3, "commits": 501, "features": "rec"}"#,
            r#"{"benches": ["compress","gcc"], "seed": 3, "commits": 500, "features": "tme"}"#,
            r#"{"benches": ["compress","gcc"], "seed": 3, "commits": 500, "features": "rec",
                "interval": 200}"#,
            r#"{"benches": ["compress","gcc"], "seed": 3, "commits": 500, "features": "rec",
                "policy": "nostop-8"}"#,
        ] {
            let d = RunRequest::parse(other).unwrap();
            assert_ne!(a.cache_key(), d.cache_key(), "{other}");
        }
    }

    #[test]
    fn explain_request_parses_query_parameters() {
        let req = ExplainRequest::from_query(
            "compress",
            &[
                ("features".to_owned(), "rec".to_owned()),
                ("commits".to_owned(), "4000".to_owned()),
                ("top".to_owned(), "3".to_owned()),
            ],
        )
        .unwrap();
        assert_eq!(req.bench.name(), "compress");
        assert_eq!(req.features.label(), "REC");
        assert_eq!((req.commits, req.top), (4000, 3));
        assert!(ExplainRequest::from_query("compress", &[("x".into(), "1".into())]).is_err());
        assert!(ExplainRequest::from_query("nope", &[]).is_err());
    }
}
