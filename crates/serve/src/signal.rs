//! Graceful-shutdown signals without a libc crate.
//!
//! The workspace carries no external dependencies, so SIGINT/SIGTERM
//! handling goes through a raw `extern "C"` declaration of `signal(2)`.
//! The handler does the only thing that is async-signal-safe in Rust:
//! store a flag into a static atomic. The accept loop polls that flag
//! and drains.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the signal handler; polled by the accept loop.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Installs SIGINT (ctrl-c) and SIGTERM handlers that request a graceful
/// drain, and returns the flag they set. On non-Unix targets no handler
/// is installed and the flag only trips via [`request_shutdown`].
pub fn install() -> &'static AtomicBool {
    #[cfg(unix)]
    {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        extern "C" fn on_signal(_signum: i32) {
            SHUTDOWN.store(true, Ordering::Release);
        }
        let handler = on_signal as *const () as usize;
        // SAFETY: `signal` is the POSIX libc function the process is
        // already linked against; the handler only touches an atomic.
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
    &SHUTDOWN
}

/// Trips the shutdown flag from ordinary code (tests, non-Unix targets).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::Release);
}

/// Whether a shutdown has been requested.
pub fn requested() -> bool {
    SHUTDOWN.load(Ordering::Acquire)
}
