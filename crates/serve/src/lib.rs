#![deny(missing_docs)]
//! # multipath-serve
//!
//! A persistent batch-simulation service over the multipath simulator:
//! `multipath serve` binds a TCP port and answers simulation requests
//! over a hand-rolled HTTP/1.1 JSON API — no external crates, like the
//! rest of the workspace.
//!
//! The service exists because the simulator is *deterministic*: the same
//! canonical configuration, kernel list, seed, and commit budget always
//! produce byte-identical `multipath-stats/v1` documents. That turns
//! result caching from a heuristic into a content-addressed lookup
//! ([`cache::ResultCache`]), and lets a loopback test assert that the
//! served bytes equal what `multipath trace --stats-out` writes.
//!
//! Endpoints:
//!
//! | Route                    | Meaning                                            |
//! |--------------------------|----------------------------------------------------|
//! | `POST /v1/run`           | one workload → `multipath-stats/v1` document       |
//! | `POST /v1/sweep`         | many cells, sharded across workers, NDJSON stream  |
//! | `GET /v1/explain/:kernel`| reuse/recycle attribution (`multipath-explain/v1`) |
//! | `GET /healthz`           | liveness probe                                     |
//! | `GET /metrics`           | queue, cache, and host-stage-profile counters      |
//!
//! Load shedding is structural: requests dispatch onto a fixed
//! [`WorkerPool`] behind a bounded
//! queue, and overflow is answered `429` before any simulation state is
//! allocated. Deadlines propagate as a [`CancelToken`] checked every
//! simulated cycle. SIGINT/SIGTERM (see [`signal`]) stop the accept loop
//! and drain in-flight requests before exit.
//!
//! # Examples
//!
//! ```
//! use multipath_serve::{ServeConfig, Server};
//! use multipath_testkit::http;
//!
//! let config = ServeConfig {
//!     addr: "127.0.0.1:0".to_owned(), // ephemeral port
//!     ..ServeConfig::default()
//! };
//! let handle = Server::bind(&config).unwrap().start();
//! let health = http::get(handle.addr(), "/healthz").unwrap();
//! assert_eq!(health.status, 200);
//! handle.shutdown();
//! ```

pub mod cache;
pub mod http;
pub mod metrics;
pub mod request;
pub mod signal;

pub use cache::{CacheCounters, Fetched, ResultCache};
pub use metrics::{QueueSnapshot, ServerMetrics};
pub use request::{ExplainRequest, RunRequest};

use multipath_bench::parallel::{self, WorkerPool};
use multipath_core::{stats_json, CancelToken, EventFilter, ProbeConfig, Simulator};
use multipath_testkit::Json;
use multipath_workload::mix;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::Duration;

/// Tunables for one server instance; `Default` is the `multipath serve`
/// default.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:8273` by default; use port `0` in tests
    /// for an ephemeral port).
    pub addr: String,
    /// Worker threads; `0` means one per available core (the same rule
    /// as the sweep engine's `MULTIPATH_THREADS` fallback).
    pub workers: usize,
    /// Bounded request-queue capacity — the `429` threshold.
    pub queue: usize,
    /// Result-cache budget in body bytes.
    pub cache_bytes: usize,
    /// Maximum accepted request-body size in bytes (`413` beyond).
    pub max_body: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:8273".to_owned(),
            workers: 0,
            queue: 64,
            cache_bytes: 64 << 20,
            max_body: 1 << 20,
        }
    }
}

/// State shared by the accept loop and every connection handler.
struct ServerState {
    cache: ResultCache,
    metrics: ServerMetrics,
    /// Weak so the pool can be consumed for shutdown while handlers can
    /// still sample queue depth for `/metrics`.
    pool: Weak<WorkerPool>,
    queue_capacity: usize,
    max_body: usize,
}

/// A bound-but-not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    pool: Arc<WorkerPool>,
}

impl Server {
    /// Binds the listen socket and spawns the worker pool.
    pub fn bind(config: &ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let workers = if config.workers == 0 {
            parallel::thread_count()
        } else {
            config.workers
        };
        let pool = Arc::new(WorkerPool::new(workers, config.queue));
        let state = Arc::new(ServerState {
            cache: ResultCache::new(config.cache_bytes),
            metrics: ServerMetrics::default(),
            pool: Arc::downgrade(&pool),
            queue_capacity: config.queue.max(1),
            max_body: config.max_body,
        });
        Ok(Server {
            listener,
            state,
            pool,
        })
    }

    /// The bound address (resolves port `0` to the assigned port).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("bound listener has an address")
    }

    /// The resolved worker-thread count (after `workers: 0` auto-sizing).
    pub fn workers(&self) -> usize {
        self.pool.threads()
    }

    /// Serves until `shutdown` becomes true, then drains: the listener
    /// stops accepting, queued and in-flight requests finish, workers
    /// join. Connections always answer `Connection: close`, so drain
    /// time is bounded by the slowest in-flight simulation.
    pub fn run(self, shutdown: &AtomicBool) {
        while !shutdown.load(Ordering::Acquire) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    // The listener is non-blocking so the loop can poll
                    // `shutdown`; handlers want plain blocking sockets.
                    let _ = stream.set_nonblocking(false);
                    dispatch(&self.pool, &self.state, stream);
                }
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }
        drop(self.listener);
        match Arc::try_unwrap(self.pool) {
            Ok(pool) => pool.shutdown(),
            Err(pool) => drop(pool), // another owner will drain on drop
        }
    }

    /// Spawns the accept loop on a background thread and returns a
    /// handle for tests and embedders.
    pub fn start(self) -> ServerHandle {
        let addr = self.local_addr();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let thread = std::thread::Builder::new()
            .name("mp-serve-accept".to_owned())
            .spawn(move || self.run(&flag))
            .expect("spawn accept thread");
        ServerHandle {
            addr,
            shutdown,
            thread,
        }
    }
}

/// A running server started with [`Server::start`].
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful drain and blocks until the server has fully
    /// stopped.
    pub fn shutdown(self) {
        self.shutdown.store(true, Ordering::Release);
        let _ = self.thread.join();
    }
}

/// Hands the connection to a pool worker, or sheds it with `429` on the
/// accept thread if the queue is full or draining.
fn dispatch(pool: &WorkerPool, state: &Arc<ServerState>, stream: TcpStream) {
    // `try_execute` consumes its job even on rejection, so the stream
    // rides in a shared cell the accept loop can take back to write the
    // 429.
    let cell = Arc::new(Mutex::new(Some(stream)));
    let job_cell = Arc::clone(&cell);
    let job_state = Arc::clone(state);
    let submitted = pool.try_execute(move || {
        if let Some(stream) = job_cell.lock().expect("stream cell poisoned").take() {
            handle_connection(stream, &job_state);
        }
    });
    if submitted.is_err() {
        state
            .metrics
            .rejected_overloaded
            .fetch_add(1, Ordering::Relaxed);
        if let Some(mut stream) = cell.lock().expect("stream cell poisoned").take() {
            let body = error_body("overloaded", "request queue is full; retry later");
            let _ = http::write_response(
                &mut stream,
                429,
                "Too Many Requests",
                "application/json",
                &[],
                body.as_bytes(),
            );
        }
    }
}

/// Reads one request, routes it, writes one response, closes.
fn handle_connection(stream: TcpStream, state: &ServerState) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut write_half = write_half;
    let mut reader = BufReader::new(stream);
    let request = match http::read_request(&mut reader, state.max_body) {
        Ok(r) => r,
        Err(http::RequestError::BodyTooLarge(n)) => {
            state.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
            let msg = format!(
                "request body of {n} bytes exceeds the {} limit",
                state.max_body
            );
            respond_error(
                &mut write_half,
                413,
                "Payload Too Large",
                "payload_too_large",
                &msg,
            );
            return;
        }
        Err(http::RequestError::Malformed(msg)) => {
            state.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
            respond_error(&mut write_half, 400, "Bad Request", "bad_request", &msg);
            return;
        }
    };
    route(state, &mut write_half, &request);
}

fn route(state: &ServerState, stream: &mut TcpStream, request: &http::Request) {
    let method = request.method.as_str();
    let path = request.path.as_str();
    match (method, path) {
        ("POST", "/v1/run") => handle_run(state, stream, request),
        ("POST", "/v1/sweep") => handle_sweep(state, stream, request),
        ("GET", "/healthz") => {
            let body = "{\n  \"schema\": \"multipath-serve-health/v1\",\n  \"status\": \"ok\"\n}\n";
            let _ =
                http::write_response(stream, 200, "OK", "application/json", &[], body.as_bytes());
        }
        ("GET", "/metrics") => handle_metrics(state, stream),
        (_, _) if path.starts_with("/v1/explain/") => {
            if method == "GET" {
                handle_explain(state, stream, request);
            } else {
                method_not_allowed(state, stream, "GET");
            }
        }
        (_, "/v1/run" | "/v1/sweep") => method_not_allowed(state, stream, "POST"),
        (_, "/healthz" | "/metrics") => method_not_allowed(state, stream, "GET"),
        _ => {
            state.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
            respond_error(
                stream,
                404,
                "Not Found",
                "not_found",
                &format!("no route for {path:?}"),
            );
        }
    }
}

fn method_not_allowed(state: &ServerState, stream: &mut TcpStream, allowed: &str) {
    state.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
    respond_error(
        stream,
        405,
        "Method Not Allowed",
        "method_not_allowed",
        &format!("this route only accepts {allowed}"),
    );
}

fn handle_run(state: &ServerState, stream: &mut TcpStream, request: &http::Request) {
    let body = String::from_utf8_lossy(&request.body);
    let run = match RunRequest::parse(&body) {
        Ok(r) => r,
        Err(msg) => {
            state.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
            respond_error(stream, 400, "Bad Request", "bad_request", &msg);
            return;
        }
    };
    state.metrics.run_requests.fetch_add(1, Ordering::Relaxed);
    let (doc, outcome) = match state.cache.get_or_begin(run.cache_key()) {
        Fetched::Hit(doc) => (doc, "hit"),
        Fetched::Coalesced(doc) => (doc, "coalesced"),
        Fetched::Miss(guard) => match run_document(&run, cancel_for(run.deadline_ms), state) {
            Ok(doc) => (guard.fulfill(doc), "miss"),
            Err(RunError::DeadlineExceeded) => {
                guard.abandon();
                state
                    .metrics
                    .deadline_exceeded
                    .fetch_add(1, Ordering::Relaxed);
                respond_error(
                    stream,
                    504,
                    "Gateway Timeout",
                    "deadline_exceeded",
                    &format!(
                        "simulation exceeded the {} ms deadline",
                        run.deadline_ms.unwrap_or(0)
                    ),
                );
                return;
            }
        },
    };
    let _ = http::write_response(
        stream,
        200,
        "OK",
        "application/json",
        &[("X-Multipath-Cache", outcome)],
        doc.as_bytes(),
    );
}

fn handle_sweep(state: &ServerState, stream: &mut TcpStream, request: &http::Request) {
    let body = String::from_utf8_lossy(&request.body);
    let (cells, deadline_ms) = match parse_sweep_body(&body) {
        Ok(parsed) => parsed,
        Err(msg) => {
            state.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
            respond_error(stream, 400, "Bad Request", "bad_request", &msg);
            return;
        }
    };
    state.metrics.sweep_requests.fetch_add(1, Ordering::Relaxed);
    state
        .metrics
        .sweep_cells
        .fetch_add(cells.len() as u64, Ordering::Relaxed);

    // One deadline covers the whole sweep; every cell shares the clock.
    let token = cancel_for(deadline_ms);
    let workers = state
        .pool
        .upgrade()
        .map(|p| p.threads())
        .unwrap_or(1)
        .max(1);

    let Ok(mut chunked) = http::ChunkedWriter::start(stream, 200, "OK", "application/x-ndjson")
    else {
        return;
    };
    // Shard each batch of cells across the sweep engine's thread mapper,
    // then stream the finished lines in request order — incremental
    // delivery at batch granularity with bounded memory.
    let indexed: Vec<(usize, RunRequest)> = cells.into_iter().enumerate().collect();
    for batch in indexed.chunks(workers.max(1)) {
        let lines = parallel::map_with(workers, batch, |(index, cell)| {
            sweep_cell_line(state, *index, cell, token.clone())
        });
        for line in lines {
            if chunked.chunk(line.as_bytes()).is_err() {
                return; // client went away; stop simulating for it
            }
        }
    }
    let _ = chunked.finish();
}

/// Produces one NDJSON line (`multipath-serve-cell/v1`) for a sweep cell,
/// through the shared result cache.
fn sweep_cell_line(
    state: &ServerState,
    index: usize,
    cell: &RunRequest,
    token: CancelToken,
) -> String {
    let effective = match cell.deadline_ms {
        Some(ms) => CancelToken::with_deadline(Duration::from_millis(ms)),
        None => token,
    };
    match state.cache.get_or_begin(cell.cache_key()) {
        Fetched::Hit(doc) | Fetched::Coalesced(doc) => cell_line(index, cell, true, &doc),
        Fetched::Miss(guard) => match run_document(cell, effective, state) {
            Ok(doc) => {
                let doc = guard.fulfill(doc);
                cell_line(index, cell, false, &doc)
            }
            Err(RunError::DeadlineExceeded) => {
                guard.abandon();
                state
                    .metrics
                    .deadline_exceeded
                    .fetch_add(1, Ordering::Relaxed);
                format!(
                    "{{\"schema\":\"multipath-serve-cell/v1\",\"index\":{index},\
                     \"label\":\"{}\",\"features\":\"{}\",\"error\":\"deadline_exceeded\"}}\n",
                    cell.label(),
                    cell.features.label()
                )
            }
        },
    }
}

/// Summarises a full stats document into one sweep line. The document is
/// the server's own deterministic output, so a parse failure is a bug —
/// reported in-band rather than by panicking a worker.
fn cell_line(index: usize, cell: &RunRequest, cached: bool, doc: &str) -> String {
    let parsed = match Json::parse(doc) {
        Ok(v) => v,
        Err(e) => {
            return format!(
                "{{\"schema\":\"multipath-serve-cell/v1\",\"index\":{index},\
                 \"label\":\"{}\",\"features\":\"{}\",\"error\":\"internal: {e}\"}}\n",
                cell.label(),
                cell.features.label()
            )
        }
    };
    let counter = |name: &str| -> u64 {
        let names = parsed.get("counter_names").and_then(Json::as_arr);
        let counters = parsed.get("counters").and_then(Json::as_arr);
        match (names, counters) {
            (Some(names), Some(counters)) => names
                .iter()
                .position(|n| n.as_str() == Some(name))
                .and_then(|i| counters.get(i))
                .and_then(Json::as_u64)
                .unwrap_or(0),
            _ => 0,
        }
    };
    let derived = |name: &str| -> f64 {
        parsed
            .get("derived")
            .and_then(|d| d.get(name))
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
    };
    format!(
        "{{\"schema\":\"multipath-serve-cell/v1\",\"index\":{index},\"label\":\"{}\",\
         \"features\":\"{}\",\"cached\":{cached},\"cycles\":{},\"committed\":{},\
         \"ipc\":{:.6},\"pct_recycled\":{:.6},\"pct_reused\":{:.6}}}\n",
        cell.label(),
        cell.features.label(),
        counter("cycles"),
        counter("committed"),
        derived("ipc"),
        derived("pct_recycled"),
        derived("pct_reused"),
    )
}

fn parse_sweep_body(body: &str) -> Result<(Vec<RunRequest>, Option<u64>), String> {
    let doc = Json::parse(body).map_err(|e| format!("invalid JSON: {e}"))?;
    let Json::Obj(map) = &doc else {
        return Err("sweep body must be a JSON object".to_owned());
    };
    for key in map.keys() {
        if key != "cells" && key != "deadline_ms" {
            return Err(format!(
                "unknown field {key:?} (expected cells, deadline_ms)"
            ));
        }
    }
    let cells = doc
        .get("cells")
        .ok_or("missing required field \"cells\"")?
        .as_arr()
        .ok_or("\"cells\" must be an array of run requests")?
        .iter()
        .map(RunRequest::from_json)
        .collect::<Result<Vec<_>, String>>()?;
    if cells.is_empty() {
        return Err("\"cells\" must contain at least one run request".to_owned());
    }
    let deadline_ms = match doc.get("deadline_ms") {
        None => None,
        Some(v) => Some(
            v.as_u64()
                .ok_or("\"deadline_ms\" must be a non-negative integer")?,
        ),
    };
    Ok((cells, deadline_ms))
}

fn handle_explain(state: &ServerState, stream: &mut TcpStream, request: &http::Request) {
    let kernel = request
        .path
        .strip_prefix("/v1/explain/")
        .expect("routed by prefix");
    let explain = match ExplainRequest::from_query(kernel, &request.query) {
        Ok(r) => r,
        Err(msg) => {
            state.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
            respond_error(stream, 400, "Bad Request", "bad_request", &msg);
            return;
        }
    };
    state
        .metrics
        .explain_requests
        .fetch_add(1, Ordering::Relaxed);
    let (doc, outcome) = match state.cache.get_or_begin(explain.cache_key()) {
        Fetched::Hit(doc) => (doc, "hit"),
        Fetched::Coalesced(doc) => (doc, "coalesced"),
        Fetched::Miss(guard) => (guard.fulfill(explain_document(&explain, state)), "miss"),
    };
    let _ = http::write_response(
        stream,
        200,
        "OK",
        "application/json",
        &[("X-Multipath-Cache", outcome)],
        doc.as_bytes(),
    );
}

fn handle_metrics(state: &ServerState, stream: &mut TcpStream) {
    let queue = match state.pool.upgrade() {
        Some(pool) => QueueSnapshot {
            depth: pool.queue_depth(),
            running: pool.running(),
            workers: pool.threads(),
            capacity: state.queue_capacity,
        },
        None => QueueSnapshot {
            capacity: state.queue_capacity,
            ..QueueSnapshot::default()
        },
    };
    let body = state
        .metrics
        .render(&state.cache.counters(), state.cache.capacity(), queue);
    let _ = http::write_response(stream, 200, "OK", "application/json", &[], body.as_bytes());
}

/// Why a simulation produced no document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunError {
    /// The request's deadline expired before the commit target was
    /// reached; the partial simulation was discarded.
    DeadlineExceeded,
}

/// A cancel token for an optional millisecond deadline.
fn cancel_for(deadline_ms: Option<u64>) -> CancelToken {
    match deadline_ms {
        Some(ms) => CancelToken::with_deadline(Duration::from_millis(ms)),
        None => CancelToken::new(),
    }
}

/// Runs one workload and renders the `multipath-stats/v1` document —
/// the exact pipeline behind `multipath trace --stats-out`, so the bytes
/// match the CLI's output for the same request.
fn run_document(
    run: &RunRequest,
    cancel: CancelToken,
    state: &ServerState,
) -> Result<String, RunError> {
    let programs = mix::programs(&run.benches, run.seed);
    let mut sim = Simulator::new(run.config.clone(), programs);
    sim.set_cancel(cancel);
    sim.enable_probes(ProbeConfig {
        ring: None,
        interval: Some(run.interval.max(1)),
        spans: false,
        explain: false,
        filter: EventFilter::all(),
    });
    sim.enable_host_profile();
    let total = run.commits.saturating_mul(run.benches.len() as u64);
    sim.run(total, total.saturating_mul(100).max(1_000_000));
    if sim.cancelled() {
        return Err(RunError::DeadlineExceeded);
    }
    sim.finish_probes();
    if let Some(profile) = sim.host_profile() {
        state.metrics.record_profile(profile);
    }
    let stats = sim.stats().clone();
    let probes = sim.take_probes().expect("probes were enabled");
    Ok(stats_json(
        &run.label(),
        run.features.label(),
        &stats,
        probes.interval.as_ref(),
    ))
}

/// Runs one kernel with explain probes and renders the
/// `multipath-explain/v1` document — the pipeline behind
/// `multipath explain --json-out`.
fn explain_document(explain: &ExplainRequest, state: &ServerState) -> String {
    let programs = mix::programs(&[explain.bench], explain.seed);
    let mut sim = Simulator::new(explain.config.clone(), programs);
    sim.enable_probes(ProbeConfig {
        ring: None,
        interval: None,
        spans: false,
        explain: true,
        filter: EventFilter::all(),
    });
    sim.enable_host_profile();
    let total = explain.commits;
    sim.run(total, total.saturating_mul(100).max(1_000_000));
    sim.finish_probes();
    if let Some(profile) = sim.host_profile() {
        state.metrics.record_profile(profile);
    }
    let stats = sim.stats().clone();
    let probes = sim.take_probes().expect("probes were enabled");
    let attr = probes.attribution.as_ref().expect("attribution sink on");
    let tree = probes.tree.as_ref().expect("path-tree sink on");
    multipath_core::explain_json(
        explain.bench.name(),
        explain.features.label(),
        &stats,
        attr,
        tree,
        explain.top,
    )
}

/// Renders a `multipath-serve-error/v1` body.
fn error_body(error: &str, message: &str) -> String {
    format!(
        "{{\n  \"schema\": \"multipath-serve-error/v1\",\n  \"error\": \"{error}\",\n  \
         \"message\": \"{}\"\n}}\n",
        escape_json(message)
    )
}

fn respond_error(stream: &mut TcpStream, status: u16, reason: &str, error: &str, message: &str) {
    let body = error_body(error, message);
    let _ = http::write_response(
        stream,
        status,
        reason,
        "application/json",
        &[],
        body.as_bytes(),
    );
}

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_json_handles_specials() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn error_body_is_valid_json() {
        let body = error_body("bad_request", "unknown field \"x\"");
        let v = Json::parse(&body).unwrap();
        assert_eq!(
            v.get("schema").and_then(Json::as_str),
            Some("multipath-serve-error/v1")
        );
        assert_eq!(
            v.get("message").and_then(Json::as_str),
            Some("unknown field \"x\"")
        );
    }
}
