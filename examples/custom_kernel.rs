//! Write your own workload with the assembler DSL, validate it on the
//! reference emulator, then run it through the full pipeline.
//!
//! The kernel below is a miniature "saxpy with a twist": a vector update
//! whose inner hammock depends on loaded data — exactly the shape that
//! makes multipath execution and recycling interesting.
//!
//! ```text
//! cargo run --release --example custom_kernel -p multipath-core
//! ```

use multipath_core::emulator::Emulator;
use multipath_core::{Features, ProgId, SimConfig, Simulator};
use multipath_isa::regs::*;
use multipath_workload::{Assembler, DataBuilder, Program, SplitMix64};

fn build_program(seed: u64) -> Program {
    let mut rng = SplitMix64::new(seed);
    let mut data = DataBuilder::new(0x10_0000);
    data.u64_array("x", (0..128).map(|_| rng.next_below(1000)));
    data.zeros_u64("y", 128);
    let x = data.address_of("x") as i32;
    let y = data.address_of("y") as i32;

    let mut a = Assembler::new();
    a.li(R16, x);
    a.li(R17, y);
    a.li(R9, 0); // checksum

    a.li(R3, 16); // outer passes
    a.label("outer");
    a.li(R2, 0);
    a.label("loop");
    a.slli(R4, R2, 3);
    a.add(R5, R16, R4);
    a.ldq(R6, 0, R5);
    // Data-dependent hammock: double odd elements, halve even ones.
    a.andi(R7, R6, 1);
    a.beq(R7, "even");
    a.slli(R6, R6, 1);
    a.addi(R9, R9, 1);
    a.br("store");
    a.label("even");
    a.srli(R6, R6, 1);
    a.label("store");
    a.add(R8, R17, R4);
    a.stq(R6, 0, R8);
    a.add(R9, R9, R6);
    a.addi(R2, R2, 1);
    a.cmpeqi(R7, R2, 128);
    a.beq(R7, "loop");
    a.subi(R3, R3, 1);
    a.bne(R3, "outer");
    // Publish the checksum and stop.
    a.stq(R9, 127 * 8, R17);
    a.halt();

    Program {
        name: "saxpy-twist".to_owned(),
        text_base: 0x1_0000,
        text: a.assemble(0x1_0000).expect("assembles"),
        data: vec![data.build()],
        entry: 0x1_0000,
        initial_sp: 0x7f_0000,
    }
}

fn main() {
    let program = build_program(2024);

    // First: what *should* happen, per the architectural reference.
    let mut emu = Emulator::new(&program);
    while !emu.halted() {
        emu.step();
    }
    let expected = emu.memory().read_u64(0x10_0000 + 128 * 8 + 127 * 8);
    println!(
        "reference: {} instructions, checksum {expected:#x}",
        emu.retired()
    );

    // Then: the full multipath pipeline, which must agree.
    let config = SimConfig::big_2_16().with_features(Features::rec_rs_ru());
    let mut sim = Simulator::new(config, vec![program]);
    let stats = sim.run(u64::MAX, 2_000_000).clone();
    assert!(sim.program_finished(ProgId(0)), "did not reach halt");
    let got = sim
        .program_memory(ProgId(0))
        .read_u64(0x10_0000 + 128 * 8 + 127 * 8);
    println!(
        "pipeline:  {} instructions in {} cycles (IPC {:.2}), checksum {got:#x}",
        stats.committed,
        stats.cycles,
        stats.ipc()
    );
    println!(
        "recycled {:.1}% of renamed instructions; {} paths forked, {:.0}% of mispredicts covered",
        stats.pct_recycled(),
        stats.forks,
        stats.pct_miss_covered()
    );
    assert_eq!(got, expected, "speculation must never change architecture");
    println!("checksums agree — speculation is architecturally invisible.");
}
