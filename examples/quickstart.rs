//! Quickstart: simulate one SPEC95-proxy benchmark on the paper's baseline
//! machine under the full recycling architecture, and print what happened.
//!
//! ```text
//! cargo run --release --example quickstart -p multipath-core
//! ```

use multipath_core::{Features, SimConfig, Simulator};
use multipath_workload::{kernels, Benchmark};

fn main() {
    // The paper's baseline: a 16-wide, 8-context SMT/TME processor
    // (big.2.16) with recycling, reuse, and re-spawning enabled.
    let config = SimConfig::big_2_16().with_features(Features::rec_rs_ru());

    // `compress` is the suite's best recycling candidate: a tight
    // dictionary loop full of short, data-dependent hammocks.
    let program = kernels::build(Benchmark::Compress, 42);

    let mut sim = Simulator::new(config, vec![program]);
    let stats = sim.run(50_000, 1_000_000);

    println!(
        "simulated {} cycles, committed {} instructions",
        stats.cycles, stats.committed
    );
    println!("IPC:                  {:.2}", stats.ipc());
    println!("branch accuracy:      {:.1}%", stats.branch_accuracy());
    println!(
        "instructions recycled:{:.1}% of renamed",
        stats.pct_recycled()
    );
    println!(
        "instructions reused:  {:.2}% of renamed",
        stats.pct_reused()
    );
    println!("paths forked:         {}", stats.forks);
    println!("  covered mispredicts:{:.1}%", stats.pct_miss_covered());
    println!(
        "  recycled at least once: {:.1}%",
        stats.pct_forks_recycled()
    );
    println!(
        "  re-spawned at least once: {:.1}%",
        stats.pct_forks_respawned()
    );
    println!(
        "merges: {} ({:.1}% backward-branch)",
        stats.merges,
        stats.pct_back_merges()
    );
}
