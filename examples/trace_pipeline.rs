//! Watch the pipeline work: a per-cycle timeline of every hardware
//! context, showing forks appearing (`A`), branches resolving (`a`),
//! displaced primaries draining (`D`), inactive traces (`I`), and recycle
//! streams (`+sN`) feeding rename.
//!
//! ```text
//! cargo run --release --example trace_pipeline -p multipath-core
//! ```

use multipath_core::trace::{render_timeline, sample_window};
use multipath_core::{Features, SimConfig, Simulator};
use multipath_workload::{kernels, Benchmark};

fn main() {
    let config = SimConfig::big_2_16().with_features(Features::rec_rs_ru());
    let mut sim = Simulator::new(config, vec![kernels::build(Benchmark::Go, 7)]);
    // Warm the predictors and caches, then watch 400 cycles.
    sim.run(5_000, 500_000);
    let samples = sample_window(&mut sim, 400);
    print!("{}", render_timeline(&samples, 10));
    println!(
        "\nlegend: P primary, A alternate, a resolved alternate, D draining, \
         I inactive trace, . idle; 'n+sM' = n live entries, stream of M remaining"
    );
}
