//! Start a `multipath serve` instance on an ephemeral port, drive it over
//! HTTP, and measure what the content-addressed result cache buys.
//!
//! The example submits the same six-cell sweep twice. The first pass
//! simulates every cell cold; the second is answered entirely from the
//! cache, so the latency ratio printed at the end is the cache's
//! speedup on this machine. A final `/metrics` fetch shows the hit/miss
//! counters reconciling with the requests just made.
//!
//! ```text
//! cargo run --release --example serve_client -p multipath-serve
//! ```

use multipath_serve::{ServeConfig, Server};
use multipath_testkit::{http, Json};
use std::time::Instant;

fn main() {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_owned(), // ephemeral port: no collisions
        ..ServeConfig::default()
    };
    let server = Server::bind(&config).expect("bind loopback");
    let handle = server.start();
    let addr = handle.addr();
    println!("serving on http://{addr}");

    // One stats document through POST /v1/run.
    let run_body = r#"{"benches": ["compress"], "features": "rec-rs-ru", "commits": 2000}"#;
    let reply = http::post_json(addr, "/v1/run", run_body).expect("POST /v1/run");
    let doc = Json::parse(&reply.text()).expect("stats document parses");
    println!(
        "run: {} -> {} ({} bytes, cache {})",
        doc.get("label").and_then(Json::as_str).unwrap_or("?"),
        doc.get("schema").and_then(Json::as_str).unwrap_or("?"),
        reply.body.len(),
        reply.header("x-multipath-cache").unwrap_or("?"),
    );

    // The same sweep twice: cold, then fully cached.
    let sweep_body = r#"{
        "cells": [
            {"benches": ["compress"], "features": "smt",       "commits": 2000},
            {"benches": ["compress"], "features": "tme",       "commits": 2000},
            {"benches": ["compress"], "features": "rec",       "commits": 2000},
            {"benches": ["go"],       "features": "rec",       "commits": 2000},
            {"benches": ["go"],       "features": "rec-rs",    "commits": 2000},
            {"benches": ["go"],       "features": "rec-rs-ru", "commits": 2000}
        ]
    }"#;
    let mut latencies = Vec::new();
    for pass in ["cold", "cached"] {
        let started = Instant::now();
        let reply = http::post_json(addr, "/v1/sweep", sweep_body).expect("POST /v1/sweep");
        let elapsed = started.elapsed();
        latencies.push(elapsed.as_secs_f64());
        assert_eq!(reply.status, 200, "{}", reply.text());
        println!(
            "\nsweep ({pass} pass, {:.1} ms):",
            elapsed.as_secs_f64() * 1e3
        );
        for line in reply.text().lines() {
            let cell = Json::parse(line).expect("NDJSON cell parses");
            println!(
                "  {:9} {:9} ipc {:.2}  recycled {:5.1}%  cached={}",
                cell.get("label").and_then(Json::as_str).unwrap_or("?"),
                cell.get("features").and_then(Json::as_str).unwrap_or("?"),
                cell.get("ipc").and_then(Json::as_f64).unwrap_or(0.0),
                cell.get("pct_recycled")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0),
                cell.get("cached")
                    .map(|c| c == &Json::Bool(true))
                    .unwrap_or(false),
            );
        }
    }
    println!(
        "\ncold {:.1} ms, cached {:.1} ms -> cache speedup {:.0}x",
        latencies[0] * 1e3,
        latencies[1] * 1e3,
        latencies[0] / latencies[1].max(1e-9),
    );

    let metrics = http::get(addr, "/metrics").expect("GET /metrics");
    let m = Json::parse(&metrics.text()).expect("metrics parse");
    let cache = m.get("cache").expect("cache section");
    println!(
        "cache: {} hits, {} misses, {} coalesced over {} stored bytes",
        cache.get("hits").and_then(Json::as_u64).unwrap_or(0),
        cache.get("misses").and_then(Json::as_u64).unwrap_or(0),
        cache.get("coalesced").and_then(Json::as_u64).unwrap_or(0),
        cache.get("bytes").and_then(Json::as_u64).unwrap_or(0),
    );

    handle.shutdown();
    println!("drained and shut down cleanly");
}
