//! The paper's headline scenario: with multiple programs sharing the
//! processor, fetch bandwidth becomes the scarce resource. TME's alternate
//! paths then starve — and recycling, which conserves fetch bandwidth,
//! restores the multipath benefit (Section 5.1: +12% over TME with four
//! programs).
//!
//! ```text
//! cargo run --release --example multiprogram -p multipath-core
//! ```

use multipath_core::{Features, SimConfig, Simulator};
use multipath_workload::mix;

fn main() {
    println!(
        "{:10} {:>10} {:>10} {:>12}   (avg over {} permutations)",
        "programs", "SMT", "TME", "REC/RS/RU", 4
    );
    for n in [1usize, 2, 4] {
        let mut ipc = [0.0f64; 3];
        for (i, features) in [Features::smt(), Features::tme(), Features::rec_rs_ru()]
            .into_iter()
            .enumerate()
        {
            // Average the paper's evenly-weighted benchmark rotations
            // (use four of the eight to keep the example quick).
            let mixes: Vec<_> = mix::rotations(n).into_iter().take(4).collect();
            let count = mixes.len();
            for workload in mixes {
                let programs = mix::programs(&workload, 1);
                let config = SimConfig::big_2_16().with_features(features);
                let mut sim = Simulator::new(config, programs);
                let stats = sim.run(15_000 * n as u64, 2_000_000);
                ipc[i] += stats.ipc() / count as f64;
            }
        }
        let rec_vs_tme = 100.0 * (ipc[2] / ipc[1] - 1.0);
        println!(
            "{:10} {:>10.2} {:>10.2} {:>12.2}   (REC/RS/RU vs TME: {:+.1}%)",
            n, ipc[0], ipc[1], ipc[2], rec_vs_tme
        );
    }
}
