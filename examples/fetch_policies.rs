//! Sweep the alternate-path fetch-limit policies of Section 5.2 on a
//! single hard-to-predict benchmark.
//!
//! `stop-N` freezes an alternate the moment its branch resolves; `fetch-N`
//! keeps building the recycle trace without executing; `nostop-N` keeps
//! executing. The paper (and this reproduction) finds the conservative
//! `stop-8` to perform very well: deep alternate execution floods the
//! machine with wrong-path work.
//!
//! ```text
//! cargo run --release --example fetch_policies -p multipath-core
//! ```

use multipath_core::{AltPolicy, Features, SimConfig, Simulator};
use multipath_workload::{kernels, Benchmark};

fn main() {
    let bench = Benchmark::Go;
    println!(
        "{:12} {:>8} {:>10} {:>10} {:>8}",
        "policy", "IPC", "recycled%", "coverage%", "forks"
    );
    for policy in AltPolicy::figure5_sweep() {
        let config = SimConfig::big_2_16()
            .with_features(Features::rec_rs_ru())
            .with_alt_policy(policy);
        let mut sim = Simulator::new(config, vec![kernels::build(bench, 7)]);
        let stats = sim.run(30_000, 1_000_000);
        println!(
            "{:12} {:>8.2} {:>10.1} {:>10.1} {:>8}",
            policy.label(),
            stats.ipc(),
            stats.pct_recycled(),
            stats.pct_miss_covered(),
            stats.forks
        );
    }
}
