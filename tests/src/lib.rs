//! Shared helpers for the workspace integration tests.
//!
//! The centrepiece is [`random_program`]: a generator of small, always-
//! terminating programs with data-dependent hammocks, nested loops, calls,
//! and memory traffic. Integration tests run these through the full
//! speculative pipeline and require bit-identical architectural results
//! against the in-order reference emulator — a differential test that has
//! historically caught every speculation-recovery bug in the simulator.

use multipath_isa::regs::*;
use multipath_isa::IntReg;
use multipath_workload::{Assembler, DataBuilder, Program, SplitMix64};

/// Base address of the scratch data segment used by generated programs.
pub const SCRATCH_BASE: u64 = 0x10_0000;
/// Number of u64 slots in the scratch array.
pub const SCRATCH_SLOTS: usize = 256;

/// Generates a small random program that always halts.
///
/// Structure: an outer loop of `outer` iterations; each iteration runs a
/// random straight-line body sprinkled with data-dependent hammocks, a
/// call to one of two tiny leaf functions, and masked loads/stores into a
/// scratch array. Register `r9` accumulates a checksum which is stored to
/// the last scratch slot before `halt`.
pub fn random_program(seed: u64, body_blocks: usize, outer: i16) -> Program {
    let mut rng = SplitMix64::new(seed);
    let mut data = DataBuilder::new(SCRATCH_BASE);
    data.u64_array("scratch", (0..SCRATCH_SLOTS).map(|_| rng.next_u64() >> 8));
    let scratch = data.address_of("scratch") as i32;

    // Scratch registers the generator draws from (avoids r16/r17/r30/r26
    // which hold bases, the stack, and return addresses).
    const TEMPS: [IntReg; 6] = [R4, R5, R6, R7, R8, R12];

    let mut a = Assembler::new();
    a.li(R16, scratch);
    a.li(R30, 0x7f_0000);
    a.li(R9, 0);
    a.li(R2, 0);
    a.br("main");

    // Two leaf functions with internal branches.
    a.label("leaf_a");
    a.andi(R13, R9, 3);
    a.beq(R13, "leaf_a_zero");
    a.muli(R13, R13, 7);
    a.add(R9, R9, R13);
    a.ret();
    a.label("leaf_a_zero");
    a.addi(R9, R9, 11);
    a.ret();

    a.label("leaf_b");
    a.srli(R13, R9, 2);
    a.xor(R9, R9, R13);
    a.ret();

    a.label("main");
    a.li(R3, i32::from(outer));
    a.label("outer");

    for block in 0..body_blocks {
        let t = |i: usize| TEMPS[i % TEMPS.len()];
        // A masked load feeding a hammock.
        let base = t(rng.next_below(6) as usize);
        a.andi(base, R2, (SCRATCH_SLOTS - 1) as i16);
        a.slli(base, base, 3);
        a.add(base, R16, base);
        let v = t(rng.next_below(6) as usize);
        a.ldq(v, 0, base);
        // Random arithmetic on the loaded value.
        for _ in 0..rng.next_below(4) {
            let d = t(rng.next_below(6) as usize);
            let s = t(rng.next_below(6) as usize);
            match rng.next_below(6) {
                0 => a.add(d, d, s),
                1 => a.sub(d, s, d),
                2 => a.xor(d, d, s),
                3 => a.slli(d, s, (rng.next_below(5) + 1) as i16),
                4 => a.srli(d, s, (rng.next_below(5) + 1) as i16),
                _ => a.andi(d, s, 0x7ff),
            }
        }
        // Data-dependent hammock (taken probability set by a mask).
        let bit = 1 << rng.next_below(4);
        let then_label = format!("b{block}_then");
        let join_label = format!("b{block}_join");
        a.andi(R14, v, bit as i16);
        a.beq(R14, &then_label);
        a.add(R9, R9, v);
        match rng.next_below(3) {
            0 => a.jsr("leaf_a"),
            1 => a.jsr("leaf_b"),
            _ => a.xori(R9, R9, 0x35),
        }
        a.br(&join_label);
        a.label(&then_label);
        a.sub(R9, R9, v);
        a.addi(R9, R9, 3);
        a.label(&join_label);
        // Occasionally spill the checksum.
        if rng.chance(0.5) {
            a.andi(R14, R2, (SCRATCH_SLOTS - 2) as i16);
            a.slli(R14, R14, 3);
            a.add(R14, R16, R14);
            a.stq(R9, 0, R14);
        }
        a.addi(R2, R2, 1);
    }

    a.subi(R3, R3, 1);
    a.bne(R3, "outer");
    a.stq(R9, ((SCRATCH_SLOTS - 1) * 8) as i16, R16);
    a.halt();

    Program {
        name: format!("random-{seed}"),
        text_base: 0x1_0000,
        text: a.assemble(0x1_0000).expect("generated program assembles"),
        data: vec![data.build()],
        entry: 0x1_0000,
        initial_sp: 0x7f_0000,
    }
}

/// FNV-1a 64 digest of a committed-instruction log, order-sensitive.
///
/// Each committed `(pc, destination value)` pair feeds the hash: the pc,
/// then a presence tag, then the value. The golden-trace suite stores one
/// digest per kernel/configuration; any change to what commits, in what
/// order, or with what result moves the digest.
pub fn commit_digest(log: &[(u64, Option<u64>)]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    for &(pc, value) in log {
        eat(pc);
        match value {
            Some(v) => {
                eat(1);
                eat(v);
            }
            None => eat(0),
        }
    }
    h
}

/// Reads the final scratch segment (including the checksum slot).
pub fn scratch_dump(memory: &multipath_mem::Memory) -> Vec<u64> {
    (0..SCRATCH_SLOTS as u64)
        .map(|i| memory.read_u64(SCRATCH_BASE + i * 8))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_digest_is_order_and_value_sensitive() {
        let log_a = vec![(0x1000u64, Some(1u64)), (0x1004, None)];
        let log_b = vec![(0x1004u64, None), (0x1000, Some(1u64))];
        let log_c = vec![(0x1000u64, Some(2u64)), (0x1004, None)];
        assert_ne!(commit_digest(&log_a), commit_digest(&log_b));
        assert_ne!(commit_digest(&log_a), commit_digest(&log_c));
        assert_eq!(commit_digest(&log_a), commit_digest(&log_a.clone()));
    }

    #[test]
    fn commit_digest_distinguishes_none_from_zero() {
        let none = vec![(0x1000u64, None)];
        let zero = vec![(0x1000u64, Some(0u64))];
        assert_ne!(commit_digest(&none), commit_digest(&zero));
    }

    #[test]
    fn generated_programs_assemble_and_halt_on_reference() {
        for seed in 0..8 {
            let p = random_program(seed, 4, 6);
            let mut emu = multipath_core::emulator::Emulator::new(&p);
            let mut steps = 0u64;
            while !emu.halted() {
                emu.step();
                steps += 1;
                assert!(steps < 200_000, "seed {seed}: runaway program");
            }
        }
    }
}
