//! Explain-layer reconciliation suite: the attribution tables produced by
//! the `multipath explain` sinks must account for the aggregate `Stats`
//! counters *exactly* — no event lost, none double-counted — for every
//! kernel, feature configuration, and seed.
//!
//! This is the contract that makes the explain output trustworthy: a
//! "why wasn't this reused" table whose buckets did not sum to
//! `recycled - reused` would be a story, not a measurement.

use multipath_core::{
    AttributionSink, EventFilter, Features, PathTreeSink, ProbeConfig, RefuseReason, SimConfig,
    Simulator, Stats,
};
use multipath_testkit::{prop_assert, prop_test, TestRng};
use multipath_workload::{kernels, Benchmark};

/// Feature configurations spanning every gate in the pipeline.
fn all_features() -> [Features; 6] {
    [
        Features::smt(),
        Features::tme(),
        Features::rec(),
        Features::rec_ru(),
        Features::rec_rs(),
        Features::rec_rs_ru(),
    ]
}

fn run_explained(
    bench: Benchmark,
    features: Features,
    seed: u64,
    commits: u64,
) -> (Stats, AttributionSink, PathTreeSink) {
    let program = kernels::build(bench, seed);
    let mut sim = Simulator::new(SimConfig::big_2_16().with_features(features), vec![program]);
    sim.enable_probes(ProbeConfig {
        ring: None,
        interval: None,
        spans: false,
        explain: true,
        filter: EventFilter::all(),
    });
    sim.run(commits, commits * 200);
    sim.finish_probes();
    let stats = sim.stats().clone();
    let probes = sim.take_probes().expect("probes enabled");
    (
        stats,
        probes.attribution.expect("attribution sink on"),
        probes.tree.expect("path-tree sink on"),
    )
}

/// Checks every attribution/Stats reconciliation identity on one run.
fn check_reconciliation(stats: &Stats, attr: &AttributionSink, tree: &PathTreeSink, label: &str) {
    // 1. The reuse-denial taxonomy covers every recycled-not-reused
    //    rename: exactly one cause per denial.
    assert_eq!(
        attr.reuse_denied_total(),
        stats.recycled - stats.reused,
        "{label}: denial buckets must sum to recycled - reused"
    );
    // ... and its per-class split re-sums to the per-cause buckets.
    for (ci, cause) in multipath_core::ReuseDeny::ALL.iter().enumerate() {
        let by_class: u64 = attr.reuse_denied_by_class.iter().map(|row| row[ci]).sum();
        assert_eq!(
            by_class,
            attr.reuse_denied[ci],
            "{label}: class split of cause `{}` disagrees with its bucket",
            cause.name()
        );
    }

    // 2. Per-class histograms partition the aggregate counters.
    let sums = [
        (
            attr.renamed_by_class.iter().sum::<u64>(),
            stats.renamed,
            "renamed",
        ),
        (
            attr.recycled_by_class.iter().sum(),
            stats.recycled,
            "recycled",
        ),
        (attr.reused_by_class.iter().sum(), stats.reused, "reused"),
        (
            attr.committed_by_class.iter().sum(),
            stats.committed,
            "committed",
        ),
    ];
    for (got, want, name) in sums {
        assert_eq!(got, want, "{label}: per-class `{name}` does not partition");
    }

    // 3. Fork-refusal causes line up bucket-for-bucket with the three
    //    aggregate refusal counters.
    assert_eq!(
        attr.fork_refused[RefuseReason::CycleCap.index()],
        stats.fork_refused_cap,
        "{label}: cycle-cap refusals"
    );
    assert_eq!(
        attr.fork_refused[RefuseReason::NoSpare.index()],
        stats.fork_refused_nospare,
        "{label}: no-spare refusals"
    );
    assert_eq!(
        attr.fork_refused[RefuseReason::DuplicatePath.index()],
        stats.forks_suppressed,
        "{label}: duplicate-path refusals"
    );
    assert_eq!(attr.fork_refused_total(), stats.fork_refused(), "{label}");

    // 4. The per-static-branch table re-sums to the branch counters.
    let sum =
        |f: fn(&multipath_core::BranchRow) -> u64| -> u64 { attr.branches.values().map(f).sum() };
    assert_eq!(sum(|r| r.resolves), stats.branches, "{label}: resolves");
    assert_eq!(
        sum(|r| r.mispredicts),
        stats.mispredicts,
        "{label}: mispredicts"
    );
    assert_eq!(
        sum(|r| r.covered),
        stats.mispredicts_covered,
        "{label}: covered"
    );
    assert_eq!(
        sum(|r| r.forks),
        stats.forks - stats.respawns,
        "{label}: per-PC forks"
    );
    assert_eq!(
        sum(|r| r.respawns),
        stats.respawns,
        "{label}: per-PC respawns"
    );
    for (ri, reason) in RefuseReason::ALL.iter().enumerate() {
        assert_eq!(
            attr.branches.values().map(|r| r.refused[ri]).sum::<u64>(),
            attr.fork_refused[ri],
            "{label}: per-PC `{}` refusals",
            reason.name()
        );
    }

    // 5. Squash cost, stall, and promotion accounting are exact.
    assert_eq!(attr.squashed_total(), stats.squashed, "{label}: squashed");
    assert_eq!(
        attr.preg_stalls, stats.preg_stall_cycles,
        "{label}: preg stalls"
    );
    assert_eq!(
        attr.promotes, stats.mispredicts_covered,
        "{label}: promotions are exactly the covered mispredicts"
    );

    // 6. The reconstructed path DAG carries the same totals, as long as
    //    the node cap was not hit (beyond it counts are declaredly
    //    partial).
    if !tree.saturated() {
        let (_roots, forks, respawns, promoted) = tree.kind_counts();
        assert_eq!(forks, stats.forks - stats.respawns, "{label}: fork nodes");
        assert_eq!(respawns, stats.respawns, "{label}: respawn nodes");
        assert!(
            promoted <= attr.promotes,
            "{label}: more promoted nodes than promote events"
        );
        assert_eq!(
            tree.edges().len() as u64,
            stats.merges - stats.back_merges,
            "{label}: merge edges"
        );
        let node_sum =
            |f: fn(&multipath_core::PathNode) -> u64| -> u64 { tree.nodes().iter().map(f).sum() };
        assert_eq!(
            node_sum(|n| n.renamed),
            stats.renamed,
            "{label}: tree renamed"
        );
        assert_eq!(
            node_sum(|n| n.recycled),
            stats.recycled,
            "{label}: tree recycled"
        );
        assert_eq!(node_sum(|n| n.reused), stats.reused, "{label}: tree reused");
        assert_eq!(
            node_sum(|n| n.squashed),
            stats.squashed,
            "{label}: tree squashed"
        );
        assert_eq!(
            node_sum(|n| n.back_merges),
            stats.back_merges,
            "{label}: tree back-merges"
        );
    }
}

#[test]
fn attribution_reconciles_for_every_kernel_and_config() {
    for bench in Benchmark::ALL {
        for features in all_features() {
            let (stats, attr, tree) = run_explained(bench, features, 1, 2_000);
            let label = format!("{} {}", bench.name(), features.label());
            check_reconciliation(&stats, &attr, &tree, &label);
        }
    }
}

prop_test! {
    /// The identities are not artefacts of seed 1: they hold across
    /// random seeds, kernels, configurations, and commit budgets.
    fn attribution_reconciles_under_random_runs(
        case in |rng: &mut TestRng| {
            (rng.below(8), rng.below(6), rng.below(1 << 20), 300 + rng.below(900))
        },
        cases = 18
    ) {
        let (bench_ix, feat_ix, seed, commits) = case;
        let bench = Benchmark::ALL[bench_ix as usize];
        let features = all_features()[feat_ix as usize];
        let (stats, attr, tree) = run_explained(bench, features, seed, commits);
        let label = format!("{} {} seed={seed}", bench.name(), features.label());
        check_reconciliation(&stats, &attr, &tree, &label);
        prop_assert!(stats.committed > 0, "{label}: nothing committed");
    }
}

#[test]
fn explain_document_reports_every_identity_as_exact() {
    // The JSON document's own reconciliation block must agree with what
    // the checks above prove — it is the user-facing statement of them.
    let (stats, attr, tree) = run_explained(Benchmark::Gcc, Features::rec_rs_ru(), 1, 2_000);
    let doc = multipath_core::explain_json("gcc", "rec/rs/ru", &stats, &attr, &tree, 10);
    let parsed = multipath_testkit::Json::parse(&doc).expect("explain document parses");
    let recon = parsed.get("reconciliation").expect("reconciliation block");
    let multipath_testkit::Json::Obj(entries) = recon else {
        panic!("reconciliation is not an object");
    };
    assert!(!entries.is_empty());
    for (name, entry) in entries {
        assert_eq!(
            entry.get("exact"),
            Some(&multipath_testkit::Json::Bool(true)),
            "identity `{name}` not exact: {entry:?}"
        );
    }
}
