//! Differential testing: the speculative pipeline must be architecturally
//! identical to the in-order reference emulator on randomly generated
//! programs, under every feature configuration and machine model.

use multipath_core::emulator::Emulator;
use multipath_core::{Features, ProgId, SimConfig, Simulator};
use multipath_testkit::{prop_assert, prop_assert_eq, prop_test, TestRng};
use multipath_tests::{random_program, scratch_dump};

fn reference_dump(p: &multipath_workload::Program) -> Vec<u64> {
    let mut emu = Emulator::new(p);
    while !emu.halted() {
        emu.step();
    }
    scratch_dump(emu.memory())
}

fn pipeline_dump(p: multipath_workload::Program, config: SimConfig) -> Vec<u64> {
    let mut sim = Simulator::new(config, vec![p]);
    sim.run(u64::MAX, 3_000_000);
    assert!(
        sim.program_finished(ProgId(0)),
        "pipeline starved at cycle {}",
        sim.cycle()
    );
    scratch_dump(sim.program_memory(ProgId(0)))
}

#[test]
fn fixed_seeds_all_features() {
    for seed in 0..6u64 {
        let p = random_program(seed, 5, 8);
        let expected = reference_dump(&p);
        for features in Features::all_six() {
            let got = pipeline_dump(p.clone(), SimConfig::big_2_16().with_features(features));
            assert_eq!(got, expected, "seed {seed} features {}", features.label());
        }
    }
}

#[test]
fn fixed_seeds_all_machines() {
    for seed in 10..14u64 {
        let p = random_program(seed, 4, 8);
        let expected = reference_dump(&p);
        for (name, config) in [
            ("big.2.16", SimConfig::big_2_16()),
            ("big.1.8", SimConfig::big_1_8()),
            ("small.2.8", SimConfig::small_2_8()),
            ("small.1.8", SimConfig::small_1_8()),
        ] {
            let got = pipeline_dump(p.clone(), config.with_features(Features::rec_rs_ru()));
            assert_eq!(got, expected, "seed {seed} machine {name}");
        }
    }
}

#[test]
fn lockstep_random_programs() {
    // Stronger than end-state comparison: every committed instruction is
    // validated against the reference as the simulation runs.
    for seed in 20..24u64 {
        let p = random_program(seed, 6, 10);
        let mut sim = Simulator::new(
            SimConfig::big_2_16().with_features(Features::rec_rs_ru()),
            vec![p],
        );
        sim.attach_reference(ProgId(0));
        sim.run(u64::MAX, 3_000_000);
        assert!(sim.program_finished(ProgId(0)));
    }
}

prop_test! {
    /// Randomized differential test over generator parameters.
    fn random_programs_match_reference(
        params in |rng: &mut TestRng| {
            (rng.below(10_000), rng.len_in(2..7), rng.in_irange(3..10) as i16)
        },
        cases = 12,
    ) {
        let (seed, blocks, outer) = params;
        let p = random_program(seed, blocks, outer);
        let expected = reference_dump(&p);
        let got = pipeline_dump(
            p,
            SimConfig::big_2_16().with_features(Features::rec_rs_ru()),
        );
        prop_assert_eq!(got, expected);
    }

    /// Lockstep property with shrinking: the reference emulator is
    /// attached to the pipeline, so *every committed instruction* is
    /// checked for PC and value as the simulation runs — across random
    /// programs, feature sets, and machine models. A divergence panics at
    /// the exact retire, and the failing generator parameters shrink to a
    /// minimal reproduction.
    fn lockstep_commit_stream_matches_reference(
        params in |rng: &mut TestRng| {
            (
                rng.below(50_000),
                rng.len_in(2..7),
                rng.in_irange(3..10) as i16,
                rng.below(6) as usize,
                rng.below(4) as usize,
            )
        },
        cases = 10,
    ) {
        let (seed, blocks, outer, feat, machine) = params;
        let features = Features::all_six()[feat];
        let config = [
            SimConfig::big_2_16(),
            SimConfig::big_1_8(),
            SimConfig::small_2_8(),
            SimConfig::small_1_8(),
        ][machine]
        .clone()
        .with_features(features);
        let p = random_program(seed, blocks, outer);
        let mut sim = Simulator::new(config, vec![p]);
        sim.attach_reference(ProgId(0));
        sim.run(u64::MAX, 3_000_000);
        prop_assert!(sim.program_finished(ProgId(0)));
    }

    /// Co-scheduled random programs are each architecturally identical to
    /// their stand-alone reference runs.
    fn random_pairs_are_isolated(
        seeds in |rng: &mut TestRng| (rng.below(5_000), rng.in_range(5_000..10_000)),
        cases = 6,
    ) {
        let (seed_a, seed_b) = seeds;
        let pa = random_program(seed_a, 4, 6);
        let pb = random_program(seed_b, 3, 7);
        let ea = reference_dump(&pa);
        let eb = reference_dump(&pb);
        let mut sim = Simulator::new(
            SimConfig::big_2_16().with_features(Features::rec_rs_ru()),
            vec![pa, pb],
        );
        sim.run(u64::MAX, 4_000_000);
        prop_assert!(sim.program_finished(ProgId(0)) && sim.program_finished(ProgId(1)));
        prop_assert_eq!(scratch_dump(sim.program_memory(ProgId(0))), ea);
        prop_assert_eq!(scratch_dump(sim.program_memory(ProgId(1))), eb);
    }
}
