//! Explain-drift gate: the full `multipath-explain/v1` document for two
//! representative kernels (one integer-heavy, one list-chasing) under the
//! quick budget, checked into `tests/golden/explain_quick/<kernel>.json`
//! byte-for-byte.
//!
//! Where `stats_drift.rs` pins the measured counters, this suite pins the
//! *attribution* of them — which denial causes, which branch PCs, which
//! squash sites. A pipeline change that shifts blame between causes shows
//! up here as a readable JSON diff even when the aggregate counters
//! happen to balance out.
//!
//! Regenerate after an intentional change with:
//!
//! ```text
//! MP_UPDATE_GOLDEN=1 cargo test -p multipath-tests --test explain_drift
//! ```

use multipath_core::{explain_json, EventFilter, Features, ProbeConfig, SimConfig, Simulator};
use multipath_testkit::Json;
use multipath_workload::{kernels, Benchmark};

/// The quick budget (`Budget::quick()` in `multipath-bench`), restated
/// because the golden documents are only meaningful at this exact size.
const COMMITS: u64 = 4_000;
const MAX_CYCLES: u64 = 400_000;
const SEED: u64 = 1;

/// Attribution-table depth in the golden documents.
const TOP_N: usize = 10;

/// The pinned kernels: `compress` (arithmetic/branchy) and `li`
/// (pointer-chasing) exercise distinct denial-cause mixes.
const KERNELS: [Benchmark; 2] = [Benchmark::Compress, Benchmark::Li];

fn golden_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("golden")
        .join("explain_quick")
}

/// Runs one kernel under the pinned configuration and renders its explain
/// document exactly as `multipath explain` would.
fn explain_doc(bench: Benchmark) -> String {
    let features = Features::rec_rs_ru();
    let program = kernels::build(bench, SEED);
    let mut sim = Simulator::new(SimConfig::big_2_16().with_features(features), vec![program]);
    sim.enable_probes(ProbeConfig {
        ring: None,
        interval: None,
        spans: false,
        explain: true,
        filter: EventFilter::all(),
    });
    sim.run(COMMITS, MAX_CYCLES);
    sim.finish_probes();
    let probes = sim.take_probes().expect("probes enabled");
    explain_json(
        bench.name(),
        features.label(),
        sim.stats(),
        probes.attribution.as_ref().expect("attribution sink on"),
        probes.tree.as_ref().expect("path-tree sink on"),
        TOP_N,
    )
}

#[test]
fn explain_documents_match_golden() {
    let dir = golden_dir();
    let update = std::env::var("MP_UPDATE_GOLDEN").is_ok();
    if update {
        std::fs::create_dir_all(&dir).expect("mkdir golden/explain_quick");
    }
    let mut drifted = Vec::new();
    for bench in KERNELS {
        let doc = explain_doc(bench);
        let path = dir.join(format!("{}.json", bench.name()));
        if update {
            std::fs::write(&path, &doc).expect("write golden explain doc");
            continue;
        }
        let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "read {} ({e}); regenerate with MP_UPDATE_GOLDEN=1",
                path.display()
            )
        });
        if golden != doc {
            let diff = golden
                .lines()
                .zip(doc.lines())
                .enumerate()
                .find(|(_, (g, n))| g != n)
                .map(|(i, (g, n))| format!("line {}: golden `{g}` vs new `{n}`", i + 1))
                .unwrap_or_else(|| "documents differ in length".to_owned());
            drifted.push(format!("{}: {diff}", bench.name()));
        }
    }
    if update {
        eprintln!(
            "golden explain documents regenerated under {}",
            dir.display()
        );
        return;
    }
    assert!(
        drifted.is_empty(),
        "explain drift on {} kernel(s) — if intentional, regenerate with \
         MP_UPDATE_GOLDEN=1:\n  {}",
        drifted.len(),
        drifted.join("\n  ")
    );
}

#[test]
fn golden_explain_documents_are_valid_and_exact() {
    // Independent of drift: every checked-in document must parse, carry
    // the versioned schema, have denial counts that sum to
    // `recycled - reused`, and declare every reconciliation identity
    // exact.
    for bench in KERNELS {
        let path = golden_dir().join(format!("{}.json", bench.name()));
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "read {} ({e}); regenerate with MP_UPDATE_GOLDEN=1",
                path.display()
            )
        });
        let doc =
            Json::parse(&text).unwrap_or_else(|e| panic!("{}: invalid JSON: {e}", path.display()));
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("multipath-explain/v1"),
            "{}: wrong schema tag",
            bench.name()
        );

        let totals = doc.get("totals").expect("totals block");
        let total = |k: &str| -> u64 {
            totals
                .get(k)
                .and_then(Json::as_u64)
                .unwrap_or_else(|| panic!("missing total `{k}`"))
        };
        let denied: u64 = doc
            .get("reuse_denied")
            .and_then(|d| d.get("counts"))
            .and_then(Json::as_arr)
            .expect("denial counts")
            .iter()
            .map(|v| v.as_u64().expect("integer count"))
            .sum();
        assert_eq!(
            denied,
            total("recycled_not_reused"),
            "{}: checked-in denial taxonomy does not cover recycled - reused",
            bench.name()
        );

        let recon = doc.get("reconciliation").expect("reconciliation block");
        let Json::Obj(entries) = recon else {
            panic!("{}: reconciliation is not an object", bench.name());
        };
        assert!(!entries.is_empty());
        for (name, entry) in entries {
            assert_eq!(
                entry.get("exact"),
                Some(&Json::Bool(true)),
                "{}: identity `{name}` not exact",
                bench.name()
            );
        }
    }
}
