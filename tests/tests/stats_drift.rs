//! Stats-drift gate: the full machine-readable stats document
//! (`multipath-stats/v1`, counters + derived metrics + interval time
//! series) for every kernel under the quick budget, checked into
//! `tests/golden/stats_quick/<kernel>.json` byte-for-byte.
//!
//! Where `golden_trace.rs` pins *which instructions commit*, this suite
//! pins the *measured numbers* the paper reproduction reports — IPC,
//! recycle/reuse rates, fork coverage, occupancy histograms. Any change
//! that shifts a statistic shows up here as a JSON diff a reviewer can
//! read, instead of as an opaque digest mismatch.
//!
//! Regenerate after an intentional change with:
//!
//! ```text
//! MP_UPDATE_GOLDEN=1 cargo test -p multipath-tests --test stats_drift
//! ```

use multipath_core::{stats_json, Features, ProbeConfig, SimConfig, Simulator};
use multipath_testkit::Json;
use multipath_workload::{kernels, Benchmark};

/// The quick budget (`Budget::quick()` in `multipath-bench`), restated
/// because the golden documents are only meaningful at this exact size.
const COMMITS: u64 = 4_000;
const MAX_CYCLES: u64 = 400_000;
const SEED: u64 = 1;

/// Interval width for the golden time series: wide enough to keep the
/// documents reviewable, narrow enough that drift localises to a phase.
const INTERVAL: u64 = 5_000;

fn golden_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("golden")
        .join("stats_quick")
}

/// Runs one kernel under the pinned configuration and renders its stats
/// document exactly as `multipath trace` would.
fn stats_doc(bench: Benchmark) -> String {
    let features = Features::rec_rs_ru();
    let program = kernels::build(bench, SEED);
    let mut sim = Simulator::new(SimConfig::big_2_16().with_features(features), vec![program]);
    sim.enable_probes(ProbeConfig {
        interval: Some(INTERVAL),
        ..ProbeConfig::default()
    });
    sim.run(COMMITS, MAX_CYCLES);
    sim.finish_probes();
    let probes = sim.take_probes().expect("probes enabled");
    stats_json(
        bench.name(),
        features.label(),
        sim.stats(),
        probes.interval.as_ref(),
    )
}

#[test]
fn stats_documents_match_golden_for_every_kernel() {
    let dir = golden_dir();
    let update = std::env::var("MP_UPDATE_GOLDEN").is_ok();
    if update {
        std::fs::create_dir_all(&dir).expect("mkdir golden/stats_quick");
    }
    let mut drifted = Vec::new();
    for bench in Benchmark::ALL {
        let doc = stats_doc(bench);
        let path = dir.join(format!("{}.json", bench.name()));
        if update {
            std::fs::write(&path, &doc).expect("write golden stats");
            continue;
        }
        let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "read {} ({e}); regenerate with MP_UPDATE_GOLDEN=1",
                path.display()
            )
        });
        if golden != doc {
            // Report the first differing line so the drift is readable in
            // CI logs without downloading artifacts.
            let diff = golden
                .lines()
                .zip(doc.lines())
                .enumerate()
                .find(|(_, (g, n))| g != n)
                .map(|(i, (g, n))| format!("line {}: golden `{g}` vs new `{n}`", i + 1))
                .unwrap_or_else(|| "documents differ in length".to_owned());
            drifted.push(format!("{}: {diff}", bench.name()));
        }
    }
    if update {
        eprintln!("golden stats regenerated under {}", dir.display());
        return;
    }
    assert!(
        drifted.is_empty(),
        "stats drift on {} kernel(s) — if intentional, regenerate with \
         MP_UPDATE_GOLDEN=1:\n  {}",
        drifted.len(),
        drifted.join("\n  ")
    );
}

#[test]
fn golden_stats_documents_are_valid_and_self_consistent() {
    // Independent of drift: every checked-in document must parse, carry
    // the versioned schema, and have interval sums equal to its own
    // aggregate counters (the exporter's core guarantee).
    for bench in Benchmark::ALL {
        let path = golden_dir().join(format!("{}.json", bench.name()));
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "read {} ({e}); regenerate with MP_UPDATE_GOLDEN=1",
                path.display()
            )
        });
        let doc =
            Json::parse(&text).unwrap_or_else(|e| panic!("{}: invalid JSON: {e}", path.display()));
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("multipath-stats/v1"),
            "{}: wrong schema tag",
            bench.name()
        );
        let counters: Vec<u64> = doc
            .get("counters")
            .and_then(Json::as_arr)
            .expect("counters array")
            .iter()
            .map(|v| v.as_u64().expect("integer counter"))
            .collect();
        let per_interval = doc
            .get("intervals")
            .and_then(|iv| iv.get("counters"))
            .and_then(Json::as_arr)
            .expect("interval counters");
        let mut sums = vec![0u64; counters.len()];
        for row in per_interval {
            for (s, v) in sums.iter_mut().zip(row.as_arr().expect("row").iter()) {
                *s += v.as_u64().expect("integer delta");
            }
        }
        assert_eq!(
            sums,
            counters,
            "{}: checked-in interval series does not reconstruct its own \
             aggregate counters",
            bench.name()
        );
    }
}
