//! Golden-trace regression suite: committed-instruction digests for every
//! workload kernel under the quick budget, checked into
//! `tests/golden/kernels_quick.txt`.
//!
//! The digests pin the simulator's *architectural* behaviour — which
//! instructions commit, in what order, with what destination values — so
//! any silent behaviour change (e.g. from a hot-path rewrite) fails loudly
//! here even when end-state differential tests still pass.
//!
//! Regenerate after an *intentional* behaviour change with:
//!
//! ```text
//! MP_UPDATE_GOLDEN=1 cargo test -p multipath-tests --test golden_trace
//! ```

use multipath_core::{Features, SimConfig, Simulator};
use multipath_tests::commit_digest;
use multipath_workload::{kernels, Benchmark};
use std::fmt::Write as _;

/// The quick budget (`Budget::quick()` in `multipath-bench`), restated
/// here because the golden digests are only meaningful at this exact size.
const COMMITS: u64 = 4_000;
const MAX_CYCLES: u64 = 400_000;
const SEED: u64 = 1;

/// The configurations each kernel is pinned under: the plain superscalar
/// datapath and the full recycling machine (both sides of every feature
/// gate in the pipeline).
fn golden_configs() -> [Features; 2] {
    [Features::smt(), Features::rec_rs_ru()]
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("golden")
        .join("kernels_quick.txt")
}

/// Runs one kernel under one configuration and digests its commit log.
fn run_one(bench: Benchmark, features: Features) -> (usize, u64) {
    let program = kernels::build(bench, SEED);
    let mut sim = Simulator::new(SimConfig::big_2_16().with_features(features), vec![program]);
    sim.enable_commit_log();
    sim.run(COMMITS, MAX_CYCLES);
    let log = sim.commit_log().expect("enabled above");
    (log.len(), commit_digest(log))
}

fn compute_all() -> Vec<(String, usize, u64)> {
    let mut rows = Vec::new();
    for bench in Benchmark::ALL {
        for features in golden_configs() {
            let (count, digest) = run_one(bench, features);
            rows.push((
                format!("{} {}", bench.name(), features.label()),
                count,
                digest,
            ));
        }
    }
    rows
}

fn render(rows: &[(String, usize, u64)]) -> String {
    let mut out = String::from(
        "# kernel config committed digest — regenerate with MP_UPDATE_GOLDEN=1 (see golden_trace.rs)\n",
    );
    for (key, count, digest) in rows {
        let _ = writeln!(out, "{key} {count} {digest:016x}");
    }
    out
}

#[test]
fn golden_traces_match_all_kernels() {
    let rows = compute_all();
    let rendered = render(&rows);
    let path = golden_path();
    if std::env::var("MP_UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, &rendered).expect("write golden file");
        eprintln!("golden traces regenerated at {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "read {} ({e}); regenerate with MP_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    for (line, (key, count, digest)) in golden
        .lines()
        .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
        .zip(&rows)
    {
        let expect = format!("{key} {count} {digest:016x}");
        assert_eq!(
            line, expect,
            "golden trace mismatch for `{key}`: the simulator's committed \
             instruction stream changed (checked-in `{line}`, recomputed `{expect}`)"
        );
    }
    assert_eq!(
        golden
            .lines()
            .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
            .count(),
        rows.len(),
        "golden file row count differs from computed sweep"
    );
}

#[test]
fn golden_file_covers_every_kernel_and_config() {
    let golden = std::fs::read_to_string(golden_path()).expect("golden file checked in");
    for bench in Benchmark::ALL {
        for features in golden_configs() {
            let key = format!("{} {} ", bench.name(), features.label());
            assert!(
                golden.lines().any(|l| l.starts_with(&key)),
                "golden file missing row for `{key}`"
            );
        }
    }
}

#[test]
fn golden_runs_commit_the_full_quick_budget() {
    // The digests only pin behaviour if the runs actually reach the
    // budget rather than stalling out at the cycle cap.
    let (count, _) = run_one(Benchmark::Compress, Features::rec_rs_ru());
    assert!(
        count as u64 >= COMMITS,
        "quick-budget run committed only {count} instructions"
    );
}

#[test]
fn commit_log_records_architectural_values() {
    // The first committed instructions of the compress kernel must carry
    // destination values (it starts with immediate loads), and the log
    // must be exactly as long as the committed-instruction count.
    let program = kernels::build(Benchmark::Compress, SEED);
    let mut sim = Simulator::new(
        SimConfig::big_2_16().with_features(Features::rec_rs_ru()),
        vec![program],
    );
    sim.enable_commit_log();
    sim.run(200, MAX_CYCLES);
    let log = sim.commit_log().expect("enabled above");
    assert_eq!(log.len() as u64, sim.stats().committed);
    assert!(log.iter().any(|(_, v)| v.is_some()));
}
