//! The paper's qualitative claims, asserted as tests.
//!
//! These encode the *shape* of the results (Section 5), with generous
//! margins: our workloads are synthetic proxies, so we assert orderings
//! and directions, not absolute numbers (see EXPERIMENTS.md).

use multipath_core::{Features, SimConfig, Simulator};
use multipath_workload::{kernels, mix, Benchmark};

fn ipc(features: Features, workload: &[Benchmark], commits: u64) -> f64 {
    let programs = mix::programs(workload, 1);
    let config = SimConfig::big_2_16().with_features(features);
    let mut sim = Simulator::new(config, programs);
    sim.run(commits * workload.len() as u64, 4_000_000).ipc()
}

#[test]
fn tme_beats_smt_on_hard_branch_single_programs() {
    // Section 2: TME achieves speedups when a single low-branch-accuracy
    // program is running.
    for bench in [Benchmark::Go, Benchmark::Gcc, Benchmark::Compress] {
        let smt = ipc(Features::smt(), &[bench], 20_000);
        let tme = ipc(Features::tme(), &[bench], 20_000);
        assert!(
            tme > smt * 1.02,
            "{bench}: TME ({tme:.2}) should beat SMT ({smt:.2}) by >2%"
        );
    }
}

#[test]
fn tme_does_not_hurt_predictable_programs() {
    // Section 2: confidence gating keeps TME from degrading programs with
    // high branch prediction accuracy.
    let smt = ipc(Features::smt(), &[Benchmark::Tomcatv], 20_000);
    let tme = ipc(Features::tme(), &[Benchmark::Tomcatv], 20_000);
    assert!(
        tme > smt * 0.97,
        "tomcatv: TME ({tme:.2}) must not degrade SMT ({smt:.2})"
    );
}

#[test]
fn recycling_recovers_tme_losses_with_four_programs() {
    // Section 5.1: with multiple programs, fetch contention renders TME
    // ineffective, and recycling restores the advantage (+12% over TME in
    // the paper). We assert the direction with margin.
    let mut tme_sum = 0.0;
    let mut rec_sum = 0.0;
    for workload in mix::rotations(4).into_iter().take(4) {
        tme_sum += ipc(Features::tme(), &workload, 15_000);
        rec_sum += ipc(Features::rec_rs_ru(), &workload, 15_000);
    }
    assert!(
        rec_sum > tme_sum * 1.02,
        "4 programs: REC/RS/RU ({:.2}) should beat TME ({:.2}) by >2%",
        rec_sum / 4.0,
        tme_sum / 4.0
    );
}

#[test]
fn recycling_is_substantial_on_loopy_code() {
    // Table 1: a large fraction of instructions enter via recycling.
    let programs = mix::programs(&[Benchmark::Tomcatv], 1);
    let config = SimConfig::big_2_16().with_features(Features::rec_rs_ru());
    let mut sim = Simulator::new(config, programs);
    let stats = sim.run(20_000, 1_000_000);
    assert!(
        stats.pct_recycled() > 15.0,
        "tomcatv should recycle heavily, got {:.1}%",
        stats.pct_recycled()
    );
}

#[test]
fn respawning_creates_paths_without_fetching_them() {
    // Section 3.1: re-spawning re-creates alternate paths through the
    // recycle datapath. Compared with plain TME (which must fetch every
    // alternate from the cache), REC/RS covers branches while fetching
    // fewer instructions per commit.
    let run = |features: Features| {
        let programs = mix::programs(&[Benchmark::Compress], 1);
        let config = SimConfig::big_2_16().with_features(features);
        let mut sim = Simulator::new(config, programs);
        let s = sim.run(20_000, 1_000_000);
        (s.fetched as f64 / s.committed as f64, s.respawns, s.forks)
    };
    let (tme_fetch, tme_respawns, tme_forks) = run(Features::tme());
    let (rs_fetch, rs_respawns, rs_forks) = run(Features::rec_rs());
    assert_eq!(tme_respawns, 0);
    assert!(rs_respawns > 0, "re-spawning should trigger on compress");
    assert!(tme_forks > 0 && rs_forks > 0);
    assert!(
        rs_fetch < tme_fetch,
        "REC/RS fetch-per-commit ({rs_fetch:.2}) should undercut TME ({tme_fetch:.2})"
    );
}

#[test]
fn confidence_gating_limits_fork_rate_on_predictable_code() {
    // Measure steady-state fork rates: the confidence tables need a
    // warm-up streak before predictable branches are recognised, so the
    // first chunk of each run is discarded.
    let run = |bench| {
        let config = SimConfig::big_2_16().with_features(Features::tme());
        let mut sim = Simulator::new(config, mix::programs(&[bench], 1));
        let warm = sim.run(20_000, 1_000_000).clone();
        let total = sim.run(60_000, 4_000_000).clone();
        (total.forks - warm.forks) as f64 / (total.branches - warm.branches) as f64
    };
    let hard = run(Benchmark::Go);
    let easy = run(Benchmark::Tomcatv);
    assert!(
        easy < hard * 0.5,
        "predictable code should fork far less: tomcatv {easy:.3} vs go {hard:.3}"
    );
}

#[test]
fn stats_are_internally_coherent() {
    let config = SimConfig::big_2_16().with_features(Features::rec_rs_ru());
    let mut sim = Simulator::new(config, mix::programs(&[Benchmark::Gcc, Benchmark::Go], 2));
    let s = sim.run(30_000, 2_000_000).clone();
    assert!(s.recycled <= s.renamed);
    assert!(s.reused <= s.recycled);
    assert!(s.mispredicts <= s.branches);
    assert!(s.mispredicts_covered <= s.mispredicts);
    assert!(s.forks_used_tme <= s.forks);
    assert!(s.forks_recycled <= s.forks);
    assert!(s.forks_respawned <= s.forks);
    assert!(s.back_merges <= s.merges);
    assert!(s.committed <= s.renamed, "everything committed was renamed");
    assert_eq!(
        s.committed,
        s.committed_per_program.iter().sum::<u64>(),
        "per-program commits must sum to the total"
    );
}

#[test]
fn kernels_build() {
    // Cross-crate sanity: every proxy kernel assembles and its image loads.
    for b in Benchmark::ALL {
        let p = kernels::build(b, 11);
        let mut mem = multipath_mem::Memory::new();
        p.load_into(&mut mem);
        assert_eq!(mem.read_u32(p.entry), p.text[0]);
    }
}
