//! The documentation gate: every checked-in markdown file is parsed and
//! its machine-checkable claims are verified against the code.
//!
//! * Relative links resolve to real files, and `#anchor` fragments to
//!   real headings (GitHub slugification).
//! * Every `$ multipath …` invocation inside a fenced `console`/`text`
//!   block parses through the real CLI parser
//!   (`multipath_cli::parse_invocation`) — documented commands cannot
//!   rot silently.
//! * Every fenced ```json excerpt is valid JSON per the workspace's own
//!   parser, and any `schema` tag it carries is one the code emits.
//! * `CHANGES.md` PR entries are in strictly increasing order, so the
//!   change log reads chronologically.

use multipath_testkit::Json;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Workspace root (this crate lives at `<root>/tests`).
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("tests crate sits inside the workspace")
        .to_path_buf()
}

/// Every *.md tracked by git, relative to the repo root.
fn checked_in_markdown() -> Vec<PathBuf> {
    let root = repo_root();
    let out = std::process::Command::new("git")
        .args(["ls-files", "-z", "*.md"])
        .current_dir(&root)
        .output()
        .expect("git ls-files");
    assert!(out.status.success(), "git ls-files failed");
    let mut files: Vec<PathBuf> = String::from_utf8(out.stdout)
        .unwrap()
        .split('\0')
        .filter(|p| !p.is_empty())
        .map(PathBuf::from)
        .collect();
    files.sort();
    assert!(
        files.iter().any(|p| p.ends_with("docs/serving.md")),
        "docs/serving.md must be checked in"
    );
    files
}

/// One fenced code block: the info string after ``` and the body lines.
struct Fence {
    info: String,
    lines: Vec<String>,
}

/// Split a markdown document into prose lines and fenced code blocks.
fn split_fences(text: &str) -> (Vec<String>, Vec<Fence>) {
    let mut prose = Vec::new();
    let mut fences = Vec::new();
    let mut current: Option<Fence> = None;
    for line in text.lines() {
        let trimmed = line.trim_start();
        if let Some(rest) = trimmed.strip_prefix("```") {
            match current.take() {
                Some(fence) => fences.push(fence),
                None => {
                    current = Some(Fence {
                        info: rest.trim().to_owned(),
                        lines: Vec::new(),
                    })
                }
            }
        } else if let Some(fence) = current.as_mut() {
            fence.lines.push(line.to_owned());
        } else {
            prose.push(line.to_owned());
        }
    }
    assert!(current.is_none(), "unterminated code fence");
    (prose, fences)
}

/// GitHub heading slug: lowercase, drop punctuation, spaces to hyphens;
/// duplicate headings get `-1`, `-2`, … suffixes.
fn heading_slugs(prose: &[String]) -> Vec<String> {
    let mut seen: BTreeMap<String, usize> = BTreeMap::new();
    let mut slugs = Vec::new();
    for line in prose {
        let Some(heading) = line.trim_start().strip_prefix('#') else {
            continue;
        };
        let title = heading.trim_start_matches('#').trim();
        let mut slug = String::new();
        for ch in title.chars() {
            match ch {
                'A'..='Z' => slug.push(ch.to_ascii_lowercase()),
                'a'..='z' | '0'..='9' | '_' | '-' => slug.push(ch),
                ' ' => slug.push('-'),
                _ => {}
            }
        }
        let n = seen.entry(slug.clone()).or_insert(0);
        if *n > 0 {
            slug = format!("{slug}-{n}");
        }
        *n += 1;
        slugs.push(slug);
    }
    slugs
}

/// Extract `[text](target)` link targets from one prose line, skipping
/// image links and inline code spans.
fn link_targets(line: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let bytes = line.as_bytes();
    let mut in_code = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'`' => in_code = !in_code,
            b'[' if !in_code => {
                if let Some(close) = line[i..].find("](") {
                    let start = i + close + 2;
                    if let Some(end) = line[start..].find(')') {
                        targets.push(line[start..start + end].to_owned());
                        i = start + end;
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    targets
}

#[test]
fn relative_links_and_anchors_resolve() {
    let root = repo_root();
    let files = checked_in_markdown();
    // Pre-compute every file's heading slugs so cross-file anchors can
    // be checked in one pass.
    let mut slugs: BTreeMap<PathBuf, Vec<String>> = BTreeMap::new();
    for file in &files {
        let text = std::fs::read_to_string(root.join(file)).unwrap();
        let (prose, _) = split_fences(&text);
        slugs.insert(file.clone(), heading_slugs(&prose));
    }
    let mut broken = Vec::new();
    for file in &files {
        let text = std::fs::read_to_string(root.join(file)).unwrap();
        let (prose, _) = split_fences(&text);
        for line in &prose {
            for target in link_targets(line) {
                if target.starts_with("http://")
                    || target.starts_with("https://")
                    || target.starts_with("mailto:")
                {
                    continue;
                }
                let (path_part, anchor) = match target.split_once('#') {
                    Some((p, a)) => (p, Some(a)),
                    None => (target.as_str(), None),
                };
                // Resolve relative to the linking file's directory.
                let resolved = if path_part.is_empty() {
                    file.clone()
                } else {
                    let joined = file.parent().unwrap_or(Path::new("")).join(path_part);
                    let mut clean = PathBuf::new();
                    for part in joined.components() {
                        match part {
                            std::path::Component::ParentDir => {
                                clean.pop();
                            }
                            std::path::Component::CurDir => {}
                            other => clean.push(other),
                        }
                    }
                    clean
                };
                if !root.join(&resolved).exists() {
                    broken.push(format!("{}: broken link {target}", file.display()));
                    continue;
                }
                if let Some(anchor) = anchor {
                    let ok = slugs
                        .get(&resolved)
                        .is_some_and(|s| s.iter().any(|slug| slug == anchor));
                    if !ok {
                        broken.push(format!(
                            "{}: link {target} names a heading that does not exist",
                            file.display()
                        ));
                    }
                }
            }
        }
    }
    assert!(broken.is_empty(), "broken links:\n{}", broken.join("\n"));
}

#[test]
fn documented_cli_invocations_parse() {
    let root = repo_root();
    let mut checked = 0usize;
    for file in checked_in_markdown() {
        let text = std::fs::read_to_string(root.join(&file)).unwrap();
        let (_, fences) = split_fences(&text);
        for fence in fences {
            if fence.info != "console" && fence.info != "text" {
                continue;
            }
            for line in &fence.lines {
                let Some(cmd) = line.trim().strip_prefix("$ ") else {
                    continue;
                };
                let Some(rest) = cmd.strip_prefix("multipath ") else {
                    continue;
                };
                // Validate up to the first shell operator: docs may
                // pipe or redirect the output.
                let args: Vec<String> = rest
                    .split_whitespace()
                    .take_while(|tok| !matches!(*tok, "|" | ">" | ">>" | "2>" | "&&" | "&" | "<"))
                    .map(str::to_owned)
                    .collect();
                if let Err(msg) = multipath_cli::parse_invocation(&args) {
                    panic!(
                        "{}: documented command does not parse:\n  $ multipath {rest}\n  error: {msg}",
                        file.display()
                    );
                }
                checked += 1;
            }
        }
    }
    assert!(
        checked >= 8,
        "expected at least 8 documented `$ multipath` invocations, found {checked}"
    );
}

#[test]
fn json_excerpts_are_valid_and_carry_known_schemas() {
    const KNOWN_SCHEMAS: [&str; 7] = [
        "multipath-stats/v1",
        "multipath-explain/v1",
        "multipath-serve-error/v1",
        "multipath-serve-health/v1",
        "multipath-serve-metrics/v1",
        "multipath-serve-cell/v1",
        "multipath-serve-sweep/v1",
    ];
    let root = repo_root();
    let mut excerpts = 0usize;
    let mut validated_files = Vec::new();
    for file in checked_in_markdown() {
        let text = std::fs::read_to_string(root.join(&file)).unwrap();
        let (_, fences) = split_fences(&text);
        let mut any = false;
        for fence in fences {
            if fence.info != "json" {
                continue;
            }
            let body = fence.lines.join("\n");
            let doc = Json::parse(&body).unwrap_or_else(|err| {
                panic!("{}: invalid json excerpt: {err}\n{body}", file.display())
            });
            if let Some(schema) = doc.get("schema").and_then(Json::as_str) {
                assert!(
                    KNOWN_SCHEMAS.contains(&schema),
                    "{}: excerpt claims unknown schema {schema:?}",
                    file.display()
                );
            }
            excerpts += 1;
            any = true;
        }
        if any {
            validated_files.push(file);
        }
    }
    // The two documents whose wire formats the docs spell out must keep
    // their excerpts machine-valid.
    for required in ["docs/observability.md", "docs/serving.md"] {
        assert!(
            validated_files.iter().any(|f| f.ends_with(required)),
            "{required} must contain at least one ```json excerpt (found {excerpts} total)"
        );
    }
}

#[test]
fn changelog_entries_are_in_order() {
    let text = std::fs::read_to_string(repo_root().join("CHANGES.md")).unwrap();
    let mut prs = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.strip_prefix("- PR ") else {
            continue;
        };
        let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
        let n: u64 = digits
            .parse()
            .unwrap_or_else(|_| panic!("malformed changelog entry: {line}"));
        prs.push(n);
    }
    assert!(!prs.is_empty(), "CHANGES.md has no PR entries");
    for pair in prs.windows(2) {
        assert!(
            pair[0] < pair[1],
            "CHANGES.md entries out of order: PR {} appears before PR {}",
            pair[0],
            pair[1]
        );
    }
}
