//! Multi-program integration: co-scheduled programs must be isolated
//! (identical architectural results to running alone), all must make
//! progress, and determinism must hold.

use multipath_core::emulator::Emulator;
use multipath_core::{Features, ProgId, SimConfig, Simulator};
use multipath_tests::{random_program, scratch_dump};
use multipath_workload::{kernels, mix, Benchmark};

#[test]
fn co_scheduling_is_architecturally_invisible() {
    // Two halting random programs sharing the machine must each produce
    // exactly what they produce on the reference emulator, despite cache
    // contention, shared queues, and interleaved commit.
    let pa = random_program(100, 5, 8);
    let pb = random_program(200, 4, 9);
    let expect_a = {
        let mut emu = Emulator::new(&pa);
        while !emu.halted() {
            emu.step();
        }
        scratch_dump(emu.memory())
    };
    let expect_b = {
        let mut emu = Emulator::new(&pb);
        while !emu.halted() {
            emu.step();
        }
        scratch_dump(emu.memory())
    };

    let config = SimConfig::big_2_16().with_features(Features::rec_rs_ru());
    let mut sim = Simulator::new(config, vec![pa, pb]);
    sim.run(u64::MAX, 4_000_000);
    assert!(sim.program_finished(ProgId(0)) && sim.program_finished(ProgId(1)));
    assert_eq!(scratch_dump(sim.program_memory(ProgId(0))), expect_a);
    assert_eq!(scratch_dump(sim.program_memory(ProgId(1))), expect_b);
}

#[test]
fn four_programs_all_progress() {
    let workload = [
        Benchmark::Compress,
        Benchmark::Go,
        Benchmark::Perl,
        Benchmark::Vortex,
    ];
    let programs = mix::programs(&workload, 3);
    let config = SimConfig::big_2_16().with_features(Features::rec_rs_ru());
    let mut sim = Simulator::new(config, programs);
    let stats = sim.run(40_000, 2_000_000);
    assert!(stats.committed >= 40_000);
    for (i, &c) in stats.committed_per_program.iter().enumerate() {
        assert!(
            c > 2_000,
            "program {i} starved: {c} committed (ICOUNT fairness violated)"
        );
    }
}

#[test]
fn simulation_is_deterministic() {
    let run = || {
        let programs = mix::programs(&[Benchmark::Gcc, Benchmark::Li], 9);
        let config = SimConfig::big_2_16().with_features(Features::rec_rs_ru());
        let mut sim = Simulator::new(config, programs);
        let s = sim.run(20_000, 1_000_000);
        (
            s.cycles,
            s.committed,
            s.renamed,
            s.recycled,
            s.reused,
            s.forks,
            s.merges,
        )
    };
    assert_eq!(
        run(),
        run(),
        "identical inputs must give identical simulations"
    );
}

#[test]
fn eight_programs_fill_every_context() {
    // One program per context: TME has no spares, so recycling can only
    // come from each thread's own trace (backward-branch merges).
    let programs = mix::programs(&Benchmark::ALL, 5);
    let config = SimConfig::big_2_16().with_features(Features::rec_rs_ru());
    let mut sim = Simulator::new(config, programs);
    let stats = sim.run(40_000, 2_000_000);
    assert!(stats.committed >= 40_000);
    assert_eq!(stats.forks, 0, "no spare contexts, no forks");
    assert_eq!(stats.respawns, 0, "nothing to re-spawn without forks");
    // All merges must come from each thread's own trace (backward-branch
    // or retained-squashed-path merges) — never from forked paths.
    assert_eq!(stats.forks_recycled, 0);
}

#[test]
fn kernels_run_on_the_smallest_machine() {
    for bench in [Benchmark::Compress, Benchmark::Tomcatv] {
        let config = SimConfig::small_1_8().with_features(Features::rec_rs_ru());
        let mut sim = Simulator::new(config, vec![kernels::build(bench, 2)]);
        let stats = sim.run(8_000, 1_000_000);
        assert!(stats.committed >= 8_000, "{bench} starved on small.1.8");
    }
}
