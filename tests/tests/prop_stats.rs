//! Stats-invariant property suite: structural relations between the
//! pipeline counters that must hold for *every* workload, configuration,
//! and seed — plus the interval time-series reconstruction guarantee the
//! observability layer is built on.
//!
//! The aggregate `Stats` block is the repo's primary scientific output;
//! these tests pin the arithmetic relationships between its counters so a
//! pipeline change that, say, starts double-counting recycled
//! instructions fails here rather than silently skewing every figure.

use multipath_core::{Features, ProbeConfig, SimConfig, Simulator, Stats};
use multipath_testkit::{prop_assert, prop_test, TestRng};
use multipath_workload::{kernels, Benchmark};

/// Feature configurations spanning every gate in the pipeline.
fn all_features() -> [Features; 6] {
    [
        Features::smt(),
        Features::tme(),
        Features::rec(),
        Features::rec_ru(),
        Features::rec_rs(),
        Features::rec_rs_ru(),
    ]
}

fn run(bench: Benchmark, features: Features, seed: u64, commits: u64) -> Simulator {
    let program = kernels::build(bench, seed);
    let mut sim = Simulator::new(SimConfig::big_2_16().with_features(features), vec![program]);
    sim.run(commits, commits * 200);
    sim
}

/// Checks every cross-counter invariant on one finished run.
fn check_invariants(stats: &Stats, label: &str) {
    // Reuse is a subset of recycling, which is a subset of renaming.
    assert!(
        stats.reused <= stats.recycled && stats.recycled <= stats.renamed,
        "{label}: reuse/recycle/rename hierarchy violated: \
         reused={} recycled={} renamed={}",
        stats.reused,
        stats.recycled,
        stats.renamed
    );
    // Every renamed instruction either commits, is squashed, or is still
    // in flight when the run stops — never more than one of these.
    assert!(
        stats.committed + stats.squashed <= stats.renamed,
        "{label}: committed={} + squashed={} exceeds renamed={}",
        stats.committed,
        stats.squashed,
        stats.renamed
    );
    // A covered misprediction is still a misprediction; `mispredicts`
    // counts conditional-branch *and* jump-target misses, but resolved
    // conditional branches dominate, so the total stays bounded by the
    // branch count plus the (rare) jump misses folded into recoveries.
    assert!(
        stats.mispredicts_covered <= stats.mispredicts,
        "{label}: covered={} exceeds mispredicts={}",
        stats.mispredicts_covered,
        stats.mispredicts
    );
    assert!(
        stats.mispredicts <= stats.branches,
        "{label}: mispredicts={} exceeds resolved branches={}",
        stats.mispredicts,
        stats.branches
    );
    // Every covered misprediction swaps or recovers, never both.
    assert!(
        stats.mispredicts_covered + stats.recoveries <= stats.mispredicts,
        "{label}: covered={} + recoveries={} exceeds mispredicts={}",
        stats.mispredicts_covered,
        stats.recoveries,
        stats.mispredicts
    );
    // Back-merges are one kind of merge.
    assert!(
        stats.back_merges <= stats.merges,
        "{label}: back_merges={} exceeds merges={}",
        stats.back_merges,
        stats.merges
    );
    // Recycled-instruction sub-counters never exceed their parents.
    assert!(
        stats.branches_recycled <= stats.branches,
        "{label}: branches_recycled={} exceeds branches={}",
        stats.branches_recycled,
        stats.branches
    );
    assert!(
        stats.mispredicts_recycled <= stats.mispredicts,
        "{label}: mispredicts_recycled={} exceeds mispredicts={}",
        stats.mispredicts_recycled,
        stats.mispredicts
    );
    // Fork accounting: every taken fork came from a candidate, and the
    // refusal reasons only fire when candidates were considered.
    assert!(
        stats.forks <= stats.fork_candidates,
        "{label}: forks={} exceeds fork_candidates={}",
        stats.forks,
        stats.fork_candidates
    );
    assert!(
        stats.forks_used_tme + stats.forks_recycled <= stats.forks,
        "{label}: fork source split exceeds total forks"
    );
    // Nothing fetches, renames, or commits without burning cycles.
    if stats.committed > 0 {
        assert!(stats.cycles > 0, "{label}: committed work in zero cycles");
    }
}

#[test]
fn counter_invariants_hold_for_every_kernel_and_config() {
    for bench in Benchmark::ALL {
        for features in all_features() {
            let sim = run(bench, features, 1, 2_000);
            let label = format!("{} {}", bench.name(), features.label());
            check_invariants(sim.stats(), &label);
        }
    }
}

prop_test! {
    /// The invariants are not artefacts of seed 1: they hold across random
    /// seeds, kernels, and commit budgets.
    fn counter_invariants_hold_under_random_runs(
        case in |rng: &mut TestRng| {
            (rng.below(8), rng.below(3), rng.below(1 << 20), 300 + rng.below(900))
        },
        cases = 24
    ) {
        let (bench_ix, feat_ix, seed, commits) = case;
        let bench = Benchmark::ALL[bench_ix as usize];
        let features =
            [Features::smt(), Features::tme(), Features::rec_rs_ru()][feat_ix as usize];
        let sim = run(bench, features, seed, commits);
        let label = format!("{} {} seed={seed}", bench.name(), features.label());
        check_invariants(sim.stats(), &label);
        prop_assert!(sim.stats().committed > 0, "{label}: nothing committed");
    }
}

prop_test! {
    /// Interval time series are lossless: for any interval width, the
    /// per-interval counter deltas sum back to the final aggregate Stats
    /// vector exactly — including counters bumped by post-run finalization.
    fn interval_series_reconstructs_final_stats(
        case in |rng: &mut TestRng| {
            (rng.below(8), rng.below(4), 1 + rng.below(1000))
        },
        cases = 12
    ) {
        let (bench_ix, width_ix, seed) = case;
        let bench = Benchmark::ALL[bench_ix as usize];
        // Widths from pathological (1 cycle) to wider than the run.
        let width: u64 = [1, 7, 100, 1 << 30][width_ix as usize];
        let program = kernels::build(bench, seed);
        let mut sim = Simulator::new(
            SimConfig::big_2_16().with_features(Features::rec_rs_ru()),
            vec![program],
        );
        sim.enable_probes(ProbeConfig {
            interval: Some(width),
            ..ProbeConfig::default()
        });
        sim.run(800, 80_000);
        sim.finish_probes();
        let probes = sim.take_probes().expect("probes enabled");
        let series = probes.interval.as_ref().expect("interval sink on");
        let sums = series.counter_sums();
        let finals = sim.stats().counters();
        for (i, (s, f)) in sums.iter().zip(finals.iter()).enumerate() {
            prop_assert!(
                s == f,
                "{} width={width}: counter `{}` sums to {s}, final is {f}",
                bench.name(),
                Stats::COUNTER_NAMES[i]
            );
        }
        // Interval boundaries tile the run with no gaps. Only the trailing
        // interval may be zero-width: it holds counters bumped by post-run
        // finalization after the last cycle boundary.
        let mut prev_end = None;
        let n = series.intervals().len();
        for (i, iv) in series.intervals().iter().enumerate() {
            if i + 1 < n {
                prop_assert!(iv.start_cycle < iv.end_cycle, "empty interior interval");
            } else {
                prop_assert!(iv.start_cycle <= iv.end_cycle, "interval runs backwards");
            }
            if let Some(p) = prev_end {
                prop_assert!(iv.start_cycle == p, "gap between intervals");
            }
            prev_end = Some(iv.end_cycle);
        }
    }
}

#[test]
fn role_occupancy_accounts_for_every_context_cycle() {
    // Each cycle contributes exactly `contexts` role samples, so the role
    // histogram summed over all intervals equals cycles x contexts.
    let program = kernels::build(Benchmark::Go, 1);
    let config = SimConfig::big_2_16().with_features(Features::rec_rs_ru());
    let contexts = config.contexts as u64;
    let mut sim = Simulator::new(config, vec![program]);
    sim.enable_probes(ProbeConfig {
        interval: Some(64),
        ..ProbeConfig::default()
    });
    sim.run(1_500, 150_000);
    sim.finish_probes();
    let probes = sim.take_probes().expect("probes enabled");
    let series = probes.interval.as_ref().expect("interval sink on");
    let role_total: u64 = series
        .intervals()
        .iter()
        .flat_map(|iv| iv.role_cycles.iter())
        .sum();
    assert_eq!(role_total, sim.stats().cycles * contexts);
}
